"""Unit tests for validity oracles."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import LedgerError
from repro.ledger.transaction import make_signed_transaction
from repro.ledger.validation import CountingOracle, GroundTruthOracle, RuleOracle

KEY = SigningKey(owner="p0", secret=b"\x0f" * 32)


def tx(payload="x", nonce=0):
    return make_signed_transaction(KEY, payload, 1.0, nonce=nonce)


class TestGroundTruthOracle:
    def test_assign_and_validate(self):
        oracle = GroundTruthOracle()
        t = tx()
        oracle.assign(t, True)
        assert oracle.validate(t)
        assert oracle.knows(t)
        assert len(oracle) == 1

    def test_unknown_tx_invalid(self):
        # Unknown = forged: never generated through the workload.
        assert not GroundTruthOracle().validate(tx())

    def test_reassign_same_value_ok(self):
        oracle = GroundTruthOracle()
        t = tx()
        oracle.assign(t, False)
        oracle.assign(t, False)
        assert not oracle.validate(t)

    def test_conflicting_assignment_rejected(self):
        oracle = GroundTruthOracle()
        t = tx()
        oracle.assign(t, True)
        with pytest.raises(LedgerError):
            oracle.assign(t, False)


class TestRuleOracle:
    def test_predicate_applied(self):
        oracle = RuleOracle(predicate=lambda t: t.body.payload == "good")
        assert oracle.validate(tx("good"))
        assert not oracle.validate(tx("bad", nonce=1))

    def test_truthiness_coerced(self):
        oracle = RuleOracle(predicate=lambda t: 1)
        assert oracle.validate(tx()) is True


class TestCountingOracle:
    def test_counts_calls(self):
        inner = GroundTruthOracle()
        t = tx()
        inner.assign(t, True)
        counting = CountingOracle(inner=inner)
        assert counting.calls == 0
        counting.validate(t)
        counting.validate(t)
        assert counting.calls == 2

    def test_delegates_result(self):
        inner = GroundTruthOracle()
        t_good, t_bad = tx("a"), tx("b", nonce=1)
        inner.assign(t_good, True)
        inner.assign(t_bad, False)
        counting = CountingOracle(inner=inner)
        assert counting.validate(t_good)
        assert not counting.validate(t_bad)

    def test_cost_model(self):
        counting = CountingOracle(inner=GroundTruthOracle(), cost_per_call=2.5)
        counting.validate(tx())
        counting.validate(tx("y", nonce=1))
        assert counting.total_cost == pytest.approx(5.0)

    def test_reset(self):
        counting = CountingOracle(inner=GroundTruthOracle())
        counting.validate(tx())
        counting.reset()
        assert counting.calls == 0
