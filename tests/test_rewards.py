"""Unit tests for the reputation-linked reward distribution."""

from __future__ import annotations

import math

import pytest

from repro.core.params import ProtocolParams
from repro.core.reputation import ReputationBook
from repro.core.rewards import distribute_rewards, log_score, reputation_score
from repro.exceptions import ConfigurationError


def make_book(n=3, providers=("p0", "p1")) -> ReputationBook:
    book = ReputationBook(governor="g0", initial=1.0)
    for i in range(n):
        book.register_collector(f"c{i}", providers)
    return book


class TestScores:
    def test_fresh_collector_score_is_one(self):
        params = ProtocolParams()
        book = make_book()
        assert reputation_score(params, book, "c0") == pytest.approx(1.0)
        assert log_score(params, book, "c0") == pytest.approx(0.0)

    def test_score_formula(self):
        params = ProtocolParams(mu=2.0, nu=4.0)
        book = make_book()
        vec = book.vector("c0")
        vec.provider_weights["p0"] = 0.5
        vec.misreport = 3
        vec.forge = -1
        expected = 0.5 * 1.0 * (2.0**3) * (4.0**-1)
        assert reputation_score(params, book, "c0") == pytest.approx(expected)

    def test_misreport_increases_score_when_positive(self):
        params = ProtocolParams(mu=2.0)
        book = make_book()
        book.record_checked("c0", labeled_correctly=True)
        assert reputation_score(params, book, "c0") > reputation_score(
            params, book, "c1"
        )

    def test_forge_penalty_is_severe(self):
        params = ProtocolParams(nu=4.0)
        book = make_book()
        book.record_forge("c0")
        ratio = reputation_score(params, book, "c0") / reputation_score(
            params, book, "c1"
        )
        assert ratio == pytest.approx(0.25)

    def test_log_score_avoids_underflow(self):
        params = ProtocolParams()
        book = make_book()
        # Crush a weight far below float-min by repeated discounting.
        for _ in range(5000):
            book.vector("c0").scale("p0", 0.5)
        ls = log_score(params, book, "c0")
        assert math.isfinite(ls)
        assert ls < -100


class TestDistribution:
    def test_sums_to_pool(self):
        params = ProtocolParams(reward_pool_per_block=100.0)
        book = make_book()
        rewards = distribute_rewards(params, book)
        assert sum(rewards.values()) == pytest.approx(100.0)

    def test_equal_scores_equal_shares(self):
        params = ProtocolParams()
        rewards = distribute_rewards(params, make_book(n=4), pool=80.0)
        assert all(v == pytest.approx(20.0) for v in rewards.values())

    def test_misbehaving_collector_earns_less(self):
        params = ProtocolParams()
        book = make_book()
        book.vector("c0").provider_weights["p0"] = 0.2
        book.vector("c0").misreport = -3
        rewards = distribute_rewards(params, book, pool=100.0)
        assert rewards["c0"] < rewards["c1"]
        assert rewards["c1"] == pytest.approx(rewards["c2"])

    def test_monotone_in_misbehaviour(self):
        """The paper's incentive claim: more unreliable => less profit."""
        params = ProtocolParams()
        book = make_book(n=4)
        for i, penalty in enumerate([0, 1, 2, 3]):
            for _ in range(penalty):
                book.vector(f"c{i}").scale("p0", 0.855)
        rewards = distribute_rewards(params, book, pool=100.0)
        values = [rewards[f"c{i}"] for i in range(4)]
        assert values == sorted(values, reverse=True)

    def test_negative_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            distribute_rewards(ProtocolParams(), make_book(), pool=-1.0)

    def test_empty_book(self):
        book = ReputationBook(governor="g0")
        assert distribute_rewards(ProtocolParams(), book) == {}

    def test_extreme_imbalance_no_nan(self):
        params = ProtocolParams()
        book = make_book()
        for _ in range(4000):
            book.vector("c0").scale("p0", 0.5)
        rewards = distribute_rewards(params, book, pool=100.0)
        assert all(math.isfinite(v) for v in rewards.values())
        assert sum(rewards.values()) == pytest.approx(100.0)
        assert rewards["c0"] == pytest.approx(0.0, abs=1e-6)


class TestPoolFromBlock:
    def _block(self, labels):
        from repro.crypto.signatures import SigningKey
        from repro.ledger.block import GENESIS_PREV_HASH, Block
        from repro.ledger.transaction import (
            CheckStatus,
            Label,
            TxRecord,
            make_signed_transaction,
        )

        key = SigningKey(owner="p0", secret=b"\x18" * 32)
        records = []
        for i, label in enumerate(labels):
            tx = make_signed_transaction(key, f"t{i}", 1.0, nonce=i)
            status = (
                CheckStatus.CHECKED if label is Label.VALID else CheckStatus.UNCHECKED
            )
            records.append(TxRecord(tx=tx, label=label, status=status))
        return Block(
            serial=1, tx_list=tuple(records), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )

    def test_counts_only_valid_records(self):
        from repro.core.rewards import pool_from_block
        from repro.ledger.transaction import Label

        block = self._block([Label.VALID, Label.VALID, Label.INVALID])
        assert pool_from_block(block, fee_per_valid_tx=10.0) == pytest.approx(10.0)

    def test_share_scales_pool(self):
        from repro.core.rewards import pool_from_block
        from repro.ledger.transaction import Label

        block = self._block([Label.VALID] * 4)
        assert pool_from_block(block, 5.0, collector_share=1.0) == pytest.approx(20.0)
        assert pool_from_block(block, 5.0, collector_share=0.25) == pytest.approx(5.0)

    def test_empty_block_zero_pool(self):
        from repro.core.rewards import pool_from_block

        assert pool_from_block(self._block([]), 5.0) == 0.0

    def test_invalid_inputs(self):
        from repro.core.rewards import pool_from_block
        from repro.ledger.transaction import Label

        block = self._block([Label.VALID])
        with pytest.raises(ConfigurationError):
            pool_from_block(block, 0.0)
        with pytest.raises(ConfigurationError):
            pool_from_block(block, 1.0, collector_share=1.5)
