"""Streaming subsystem: sparse reputation, virtual universe, sessions.

The load-bearing claims, each locked by a test class here:

* ``SparseWeightMap`` is a drop-in ``MutableMapping`` row store whose
  iteration order (canonical registration order) makes every float
  reduction bit-identical to the dense ``_VersionedDict`` path;
* ``CollectorMembers`` answers membership queries for the circulant
  topology in O(1) memory, agreeing exactly with ``Topology.regular``;
* ``ProtocolEngine(sparse_reputation=True)`` commits bit-identical
  ledgers and books to the dense engine for every seeded small-N
  scenario (the ISSUE's equivalence suite);
* ``StreamingWorkload`` with round-robin selection emits the identical
  ``TxSpec`` stream as the materialized generators for N <= 64 across
  all three validity models (satellite property test);
* ``StreamingSession`` instantiates on arrival, retires on idleness,
  and keeps signing continuity across retire/re-arrive cycles;
* durable checkpoints carry the sparse book payload, so a restarted
  engine resumes with equal books (satellite 1);
* the flash-sale chaos soak holds tip parity through socket chaos
  (satellite 6; ``chaos``+``realnet`` marked, wall-clock budgeted).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.behaviors import ConcealBehavior, MisreportBehavior
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.core.reputation import ReputationBook, SparseWeightMap
from repro.exceptions import ConfigurationError, TopologyError
from repro.ledger.properties import check_all_properties
from repro.network.topology import Topology, provider_id
from repro.obs import MetricsRegistry
from repro.streaming import (
    CollectorMembers,
    StreamingSession,
    StreamingWorkload,
    VirtualUniverse,
    derived_rates,
)
from repro.streaming.scenarios import (
    STREAM_SCENARIOS,
    build_streaming_session,
    stream_scenario_names,
)
from repro.streaming.universe import parse_provider_index
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.generator import (
    BernoulliWorkload,
    BurstyWorkload,
    PerProviderWorkload,
    TxSpec,
)

# ---------------------------------------------------------------------------
# SparseWeightMap


class TestSparseWeightMap:
    def _map(self, members=("p0", "p1", "p2"), default=1.0):
        return SparseWeightMap(list(members), default)

    def test_default_readback_and_len(self):
        m = self._map()
        assert len(m) == 3
        assert m["p1"] == 1.0
        assert m.touched == 0

    def test_override_and_reset(self):
        m = self._map()
        m["p1"] = 0.25
        assert m["p1"] == 0.25
        assert m.touched == 1
        del m["p1"]  # resets to the default row, stays a member
        assert m["p1"] == 1.0
        assert m.touched == 0
        assert "p1" in m

    def test_unknown_member_raises(self):
        m = self._map()
        with pytest.raises(KeyError):
            m["p99"]

    def test_iteration_is_registration_order(self):
        members = ["p4", "p0", "p2"]
        m = SparseWeightMap(members, 1.0)
        m["p2"] = 0.5
        assert list(m) == members
        assert list(m.values()) == [1.0, 1.0, 0.5]

    def test_mass_counts_default_and_overrides(self):
        m = self._map()
        m["p0"] = 0.5
        assert m.mass() == pytest.approx(0.5 + 2 * 1.0)

    def test_nonpositive_default_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseWeightMap(["p0"], 0.0)

    def test_mutation_bumps_owner_version(self):
        book = ReputationBook(governor="g0", initial=1.0)
        book.register_collector_sparse("c0", ["p0", "p1"])
        vec = book.vector("c0")
        before = vec._version
        vec.provider_weights["p0"] = 0.5
        assert vec._version > before

    def test_export_restore_roundtrip_sparse(self):
        book = ReputationBook(governor="g0", initial=1.0)
        book.register_collector_sparse("c0", ["p0", "p1", "p2"])
        book.vector("c0").provider_weights["p2"] = 0.125
        state = book.export_state()
        assert state["collectors"]["c0"]["overrides"] == {"p2": 0.125}
        other = ReputationBook(governor="g0", initial=1.0)
        other.register_collector_sparse("c0", ["p0", "p1", "p2"])
        other.restore_state(state)
        assert dict(other.vector("c0").provider_weights) == {
            "p0": 1.0, "p1": 1.0, "p2": 0.125,
        }

    def test_export_restore_roundtrip_dense(self):
        book = ReputationBook(governor="g0", initial=1.0)
        book.register_collector("c0", ["p0", "p1"])
        book.vector("c0").provider_weights["p1"] = 0.75
        state = book.export_state()
        other = ReputationBook(governor="g0", initial=1.0)
        other.register_collector("c0", ["p0", "p1"])
        other.restore_state(state)
        assert dict(other.vector("c0").provider_weights) == {
            "p0": 1.0, "p1": 0.75,
        }


# ---------------------------------------------------------------------------
# CollectorMembers / VirtualUniverse vs the materialized circulant


class TestCollectorMembers:
    @pytest.mark.parametrize("l,n,r", [(8, 4, 2), (12, 4, 2), (16, 8, 4),
                                       (24, 6, 3), (64, 8, 4)])
    def test_agrees_with_topology_regular(self, l, n, r):
        topo = Topology.regular(l=l, n=n, m=3, r=r)
        universe = VirtualUniverse(universe=l, n=n, m=3, r=r)
        for i, cid in enumerate(topo.collectors):
            dense = topo.providers_of(cid)
            members = universe.members_of(cid)
            assert isinstance(members, CollectorMembers)
            assert len(members) == len(dense)
            assert list(members) == list(dense)
            assert all(pid in members for pid in dense)
            absent = [provider_id(k) for k in range(l)
                      if provider_id(k) not in dense]
            assert not any(pid in members for pid in absent)
            for j in range(len(members)):
                assert members[j] == dense[j]
        for pid in topo.providers:
            assert universe.collectors_of(pid) == topo.collectors_of(pid)

    def test_contains_rejects_noncanonical_ids(self):
        universe = VirtualUniverse(universe=8, n=4, m=2, r=2)
        members = universe.members_of("c0")
        assert "p007" not in members
        assert "x3" not in members
        assert "p999999" not in members

    def test_parse_provider_index_strict(self):
        assert parse_provider_index("p0") == 0
        assert parse_provider_index("p41") == 41
        assert parse_provider_index("p007") is None
        assert parse_provider_index("c3") is None
        assert parse_provider_index("p") is None

    def test_degree_equation_enforced(self):
        with pytest.raises(TopologyError):
            VirtualUniverse(universe=10, n=4, m=2, r=3)  # 3*10 % 4 != 0

    def test_index_out_of_range(self):
        universe = VirtualUniverse(universe=8, n=4, m=2, r=2)
        members = universe.members_of("c0")
        with pytest.raises(IndexError):
            members[len(members)]

    def test_million_scale_is_lazy(self):
        universe = VirtualUniverse(universe=1_000_000, n=8, m=4, r=4)
        members = universe.members_of("c3")
        assert len(members) == 500_000  # r/n of the universe
        assert members[0] in members
        assert universe.contains_provider("p999999")
        assert not universe.contains_provider("p1000000")


# ---------------------------------------------------------------------------
# Sparse/dense engine equivalence (the ISSUE's acceptance criterion)


def _run_engine(sparse: bool, seed: int, behaviors_for, rounds: int = 8):
    topo = Topology.regular(l=12, n=4, m=3, r=2)
    engine = ProtocolEngine(
        topo,
        ProtocolParams(f=0.5, b_limit=16),
        seed=seed,
        behaviors=behaviors_for(topo),
        sparse_reputation=sparse,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=seed)
    for _ in range(rounds):
        engine.run_round(workload.take(10))
    engine.run_round([])  # flush argued re-evaluations into a final block
    engine.finalize()
    tips = [g.ledger.tip_hash() for g in engine.governors.values()]
    books = {
        gid: {
            cid: (
                dict(gov.book.vector(cid).provider_weights),
                gov.book.vector(cid).misreport,
                gov.book.vector(cid).forge,
            )
            for cid in topo.collectors
        }
        for gid, gov in engine.governors.items()
    }
    return engine, tips, books


MIXES = {
    "honest": lambda topo: {},
    "misreport": lambda topo: {topo.collectors[0]: MisreportBehavior(0.8)},
    "conceal": lambda topo: {topo.collectors[1]: ConcealBehavior(0.6)},
    "hostile": lambda topo: {
        topo.collectors[0]: MisreportBehavior(0.5),
        topo.collectors[2]: ConcealBehavior(0.5),
    },
}


class TestSparseDenseEquivalence:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_bit_identical_ledgers_and_books(self, mix, seed):
        dense_eng, dense_tips, dense_books = _run_engine(
            False, seed, MIXES[mix]
        )
        sparse_eng, sparse_tips, sparse_books = _run_engine(
            True, seed, MIXES[mix]
        )
        assert dense_tips == sparse_tips
        assert dense_books == sparse_books
        report = check_all_properties(
            sparse_eng.ledgers(), sparse_eng.transcript
        )
        assert report.all_hold

    def test_sparse_rejects_partial_visibility(self):
        from repro.network.visibility import VisibilityMap

        topo = Topology.regular(l=8, n=4, m=2, r=2)
        visibility = VisibilityMap.random_partial(topo, keep_fraction=0.5, seed=0)
        with pytest.raises(ConfigurationError):
            ProtocolEngine(
                topo,
                ProtocolParams(f=0.5),
                seed=0,
                visibility=visibility,
                sparse_reputation=True,
            )


# ---------------------------------------------------------------------------
# Satellite 3: streaming vs materialized workload equivalence


def _materialized(model: str, providers, seed: int):
    if model == "bernoulli":
        return BernoulliWorkload(providers, p_valid=0.5, seed=seed)
    if model == "per_provider":
        return PerProviderWorkload(
            providers, seed=seed, rates=derived_rates(providers, seed)
        )
    return BurstyWorkload(providers, seed=seed)


class TestStreamingWorkloadEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        n_providers=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        model=st.sampled_from(["bernoulli", "per_provider", "bursty"]),
        count=st.integers(min_value=1, max_value=200),
    )
    def test_round_robin_stream_matches_materialized(
        self, n_providers, seed, model, count
    ):
        providers = [provider_id(k) for k in range(n_providers)]
        universe = VirtualUniverse(
            universe=n_providers, n=n_providers, m=1, r=n_providers
        )
        streaming = StreamingWorkload(
            universe, validity=model, selection="round_robin", seed=seed
        )
        materialized = _materialized(model, providers, seed)
        assert streaming.take(count) == materialized.take(count)

    def test_uniform_selection_leaves_validity_stream_alone(self):
        # Selection draws come from a tagged side stream: the validity
        # outcomes as a sequence must match round_robin's exactly.
        universe = VirtualUniverse(universe=16, n=4, m=2, r=2)
        rr = StreamingWorkload(universe, selection="round_robin", seed=9)
        uni = StreamingWorkload(universe, selection="uniform", seed=9)
        assert [s.is_valid for s in rr.take(64)] == [
            s.is_valid for s in uni.take(64)
        ]

    def test_unknown_model_rejected(self):
        universe = VirtualUniverse(universe=8, n=4, m=2, r=2)
        with pytest.raises(ConfigurationError):
            StreamingWorkload(universe, validity="weird")
        with pytest.raises(ConfigurationError):
            StreamingWorkload(universe, selection="weird")

    def test_for_round_requires_arrivals(self):
        universe = VirtualUniverse(universe=8, n=4, m=2, r=2)
        workload = StreamingWorkload(universe)
        with pytest.raises(ConfigurationError):
            workload.for_round(1)


# ---------------------------------------------------------------------------
# StreamingSession lifecycle


def _session(universe=64, retirement_rounds=2, seed=0, **kwargs):
    virtual = VirtualUniverse(universe=universe, n=4, m=2, r=2)
    return virtual, StreamingSession(
        virtual,
        ProtocolParams(f=0.5, b_limit=8),
        seed=seed,
        retirement_rounds=retirement_rounds,
        **kwargs,
    )


def _specs(*pids, valid=True):
    return [
        TxSpec(provider=pid, payload={"seq": i, "from": pid}, is_valid=valid)
        for i, pid in enumerate(pids)
    ]


class TestStreamingSession:
    def test_instantiation_on_first_arrival(self):
        _, session = _session()
        assert session.active_providers == 0
        session.run_round(_specs("p0", "p5"))
        assert session.active_providers == 2
        assert session.metrics.instantiations == 2
        assert session.metrics.reinstantiations == 0

    def test_retirement_after_idle_window(self):
        _, session = _session(retirement_rounds=2)
        session.run_round(_specs("p0"))
        session.run_round(_specs("p1"))
        session.run_round(_specs("p1"))  # p0 idle for 2 rounds -> retired
        assert session.active_providers == 1
        assert session.metrics.retirements == 1

    def test_rearrival_restores_signing_continuity(self):
        _, session = _session(retirement_rounds=1)
        session.run_round(_specs("p0"))
        nonce_before = session.providers["p0"]._nonce
        session.run_round(_specs("p1"))
        session.run_round(_specs("p1"))
        assert "p0" not in session.providers  # retired
        block = session.run_round(_specs("p0"))  # re-arrival
        assert session.metrics.reinstantiations == 1
        assert session.providers["p0"]._nonce > nonce_before
        # The re-arrived provider's transaction committed, i.e. its
        # signature verified against the original enrolment key.
        assert any(
            rec.tx.body.provider == "p0" for rec in block.tx_list
        )

    def test_backlog_spills_and_drains(self):
        _, session = _session(retirement_rounds=None)
        burst = _specs(*[f"p{k}" for k in range(20)])
        session.run_round(burst)  # b_limit=8
        assert session.backlog_depth == 12
        session.run_round()
        session.run_round()
        assert session.backlog_depth == 0
        assert session.metrics.transactions == 20
        assert session.metrics.peak_backlog == 20

    def test_outside_universe_arrival_rejected(self):
        _, session = _session(universe=8)
        with pytest.raises(ConfigurationError):
            session.run_round(_specs("p8"))

    def test_full_run_audits_clean_and_properties_hold(self):
        virtual = VirtualUniverse(universe=128, n=4, m=2, r=2)
        workload = StreamingWorkload(
            virtual,
            arrivals=PoissonArrivals(6.0, seed=3),
            selection="uniform",
            seed=3,
            p_valid=0.8,
        )
        session = StreamingSession(
            virtual, ProtocolParams(f=0.5, b_limit=16),
            workload=workload, seed=3, retirement_rounds=3,
        )
        session.run(10)
        session.finalize()
        assert session.audit_report is not None
        assert not session.audit_report.violations
        report = check_all_properties(session.ledgers(), session.transcript)
        assert report.all_hold

    def test_metrics_registry_mirrors_counters(self):
        reg = MetricsRegistry()
        _, session = _session(obs=reg)
        session.run_round(_specs("p0", "p1"))
        names = set(reg.names())
        assert {"stream_active_providers", "stream_instantiations_total",
                "stream_retirements_total", "stream_backlog",
                "stream_tx_total", "stream_peak_rss_bytes"} <= names

    def test_behaviors_for_unknown_collector_rejected(self):
        virtual = VirtualUniverse(universe=8, n=4, m=2, r=2)
        with pytest.raises(ConfigurationError):
            StreamingSession(
                virtual, ProtocolParams(f=0.5),
                behaviors={"c9": MisreportBehavior(0.5)},
            )


# ---------------------------------------------------------------------------
# Scenario registry + domain oracles


class TestStreamScenarios:
    def test_registry_names(self):
        assert stream_scenario_names() == sorted(STREAM_SCENARIOS)
        assert {"stream-smoke", "supply-chain", "energy-trading",
                "flash-sale"} <= set(stream_scenario_names())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            build_streaming_session("nope")

    @pytest.mark.parametrize("name", sorted(STREAM_SCENARIOS))
    def test_preset_smoke(self, name):
        runner, scenario = build_streaming_session(
            name, seed=2, universe=2_000
        )
        runner.run(4)
        report = runner.report()
        audit_clean = (
            report["audit_clean"] if isinstance(report, dict)
            else report.audit_clean
        )
        assert audit_clean
        assert runner.session.round_number >= 4

    def test_supply_chain_counterparties_cross_linked(self):
        from repro.apps.supplychain import SupplyChainProvenance

        market = SupplyChainProvenance(universe=2_000, seed=5)
        market.run(6)
        report = market.report()
        assert report.shipments_committed > 0
        assert report.mean_chain_hops >= 2.0

    def test_energy_flows_are_bidirectional(self):
        from repro.apps.energy import EnergyMarket

        market = EnergyMarket(universe=2_000, seed=5)
        market.run(12)
        report = market.report()
        assert report.exported_kwh > 0
        assert report.imported_kwh > 0

    def test_flash_sale_cartel_fires(self):
        from repro.apps.ticketing import FlashSaleTicketing

        sale = FlashSaleTicketing(universe=5_000, seed=5)
        sale.run(8)
        report = sale.report()
        assert report.cartel_suppressions > 0
        assert report.peak_backlog > 0
        assert report.audit_clean


# ---------------------------------------------------------------------------
# Satellite 1: books ride durable checkpoints across restarts


class TestBookCheckpointRestart:
    def _build(self, directory, seed=7):
        from repro.core.netengine import NetworkedProtocolEngine
        from repro.storage.durable import StorageConfig

        topo = Topology.regular(l=12, n=4, m=3, r=2)
        engine = NetworkedProtocolEngine(
            topo,
            ProtocolParams(f=0.5, delta=0.2, b_limit=16),
            seed=seed,
            behaviors={topo.collectors[0]: MisreportBehavior(0.8)},
            storage=StorageConfig(directory=str(directory), checkpoint_interval=4),
        )
        return topo, engine

    def _books(self, topo, engine):
        return {
            gid: {
                cid: dict(gov.book.vector(cid).provider_weights)
                for cid in topo.collectors
            }
            for gid, gov in engine.governors.items()
        }

    def test_restart_restores_equal_books(self, tmp_path):
        topo, engine = self._build(tmp_path)
        workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=7)
        for _ in range(8):  # height 8 = 2 checkpoint intervals
            engine.run_round(workload.take(10))
        books_before = self._books(topo, engine)
        touched = sum(
            1 for g in books_before.values() for row in g.values()
            for w in row.values() if w != 1.0
        )
        assert touched > 0  # the misreporter was actually penalised
        assert engine.store.last_checkpoint_serial == engine.store.height

        topo2, restarted = self._build(tmp_path)
        assert restarted.store.height == engine.store.height
        # The guaranteed invariant: restored books match the digest the
        # checkpoint pinned at block-append time.  (Argue penalties that
        # land later in the same round drift live books past the pin;
        # this seed has none in the tail window, so full equality with
        # the live books also holds.)
        from repro.storage.checkpoints import reputation_digest

        ckpt = restarted.recovery_report.checkpoint
        restored_digest = reputation_digest(
            {gid: gov.book for gid, gov in restarted.governors.items()}
        )
        assert restored_digest == ckpt.book_digest
        assert self._books(topo2, restarted) == books_before

    def test_tampered_book_state_falls_back_to_initial(self, tmp_path):
        import json

        topo, engine = self._build(tmp_path)
        workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=7)
        for _ in range(8):
            engine.run_round(workload.take(10))

        # Corrupt one restored weight while keeping the file's CRC valid:
        # the digest check must reject the payload wholesale.
        import zlib

        ckpts = sorted(tmp_path.glob("checkpoint-*.json"))
        doc = json.loads(ckpts[-1].read_text())
        body = doc["checkpoint"]
        gid = next(iter(body["book_state"]))
        cid = next(iter(body["book_state"][gid]["collectors"]))
        body["book_state"][gid]["collectors"][cid]["overrides"] = {"p0": 0.001}
        encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
        doc["crc"] = zlib.crc32(encoded.encode())
        ckpts[-1].write_text(json.dumps(doc, sort_keys=True))

        topo2, restarted = self._build(tmp_path)
        books = self._books(topo2, restarted)
        assert all(
            w == 1.0
            for g in books.values() for row in g.values() for w in row.values()
        )

    def test_old_checkpoints_without_book_state_still_load(self, tmp_path):
        # Backwards compatibility: a checkpoint written before the
        # payload existed (book_state absent) must restore chain state
        # and leave the books at their initial values.
        import json

        topo, engine = self._build(tmp_path)
        workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=7)
        for _ in range(8):
            engine.run_round(workload.take(10))
        for path in sorted(tmp_path.glob("checkpoint-*.json")):
            import zlib

            doc = json.loads(path.read_text())
            body = doc["checkpoint"]
            body.pop("book_state", None)
            encoded = json.dumps(body, sort_keys=True, separators=(",", ":"))
            doc["crc"] = zlib.crc32(encoded.encode())
            path.write_text(json.dumps(doc, sort_keys=True))

        topo2, restarted = self._build(tmp_path)
        assert restarted.store.height == engine.store.height
        assert restarted.recovery_report.checkpoint.book_state is None


# ---------------------------------------------------------------------------
# Satellite 6: flash-sale chaos soak (nightly; tiny default budget here)


@pytest.mark.chaos
@pytest.mark.realnet
def test_flash_sale_chaos_soak_holds_tip_parity():
    from repro.streaming.soak import chaos_soak

    budget = float(os.environ.get("STREAM_SOAK_BUDGET_S", "5"))
    report = chaos_soak(budget_s=budget, seed=3)
    assert report.iterations >= 1
    assert report.tips_matched == report.iterations
    assert report.audits_clean == report.iterations
    assert report.all_ok
