"""Unit tests for the argue manager and the burial window U."""

from __future__ import annotations

import pytest

from repro.core.arguing import ArgueManager
from repro.exceptions import ProtocolViolationError


class TestRecording:
    def test_positions_sequential(self):
        mgr = ArgueManager(window=4)
        assert mgr.record_unchecked("t0") == 0
        assert mgr.record_unchecked("t1") == 1

    def test_double_record_rejected(self):
        mgr = ArgueManager(window=4)
        mgr.record_unchecked("t0")
        with pytest.raises(ProtocolViolationError):
            mgr.record_unchecked("t0")

    def test_window_must_be_positive(self):
        with pytest.raises(ProtocolViolationError):
            ArgueManager(window=0)

    def test_burial_depth(self):
        mgr = ArgueManager(window=4)
        mgr.record_unchecked("t0")
        assert mgr.burial_depth("t0") == 0
        mgr.record_unchecked("t1")
        mgr.record_unchecked("t2")
        assert mgr.burial_depth("t0") == 2
        assert mgr.burial_depth("t2") == 0

    def test_burial_depth_unknown_tx(self):
        with pytest.raises(ProtocolViolationError):
            ArgueManager(window=4).burial_depth("ghost")


class TestArguing:
    def test_timely_argue_admitted(self):
        mgr = ArgueManager(window=2)
        mgr.record_unchecked("t0")
        mgr.record_unchecked("t1")
        outcome = mgr.argue("t0")
        assert outcome.accepted

    def test_argue_at_exact_window_admitted(self):
        mgr = ArgueManager(window=2)
        mgr.record_unchecked("t0")
        mgr.record_unchecked("t1")
        mgr.record_unchecked("t2")  # depth of t0 is now exactly 2
        assert mgr.argue("t0").accepted

    def test_buried_argue_rejected(self):
        mgr = ArgueManager(window=2)
        for i in range(4):
            mgr.record_unchecked(f"t{i}")  # depth of t0 is 3 > 2
        outcome = mgr.argue("t0")
        assert not outcome.accepted
        assert "buried" in outcome.reason

    def test_duplicate_argue_rejected(self):
        mgr = ArgueManager(window=4)
        mgr.record_unchecked("t0")
        assert mgr.argue("t0").accepted
        assert not mgr.argue("t0").accepted

    def test_never_unchecked_rejected(self):
        assert not ArgueManager(window=4).argue("ghost").accepted

    def test_is_arguable(self):
        mgr = ArgueManager(window=1)
        mgr.record_unchecked("t0")
        assert mgr.is_arguable("t0")
        mgr.record_unchecked("t1")
        mgr.record_unchecked("t2")
        assert not mgr.is_arguable("t0")
        assert not mgr.is_arguable("ghost")

    def test_resolve_silently_blocks_later_argue(self):
        mgr = ArgueManager(window=4)
        mgr.record_unchecked("t0")
        mgr.resolve_silently("t0")
        assert not mgr.argue("t0").accepted

    def test_resolve_silently_unknown_is_noop(self):
        ArgueManager(window=4).resolve_silently("ghost")


class TestBookkeeping:
    def test_expired_unresolved(self):
        mgr = ArgueManager(window=1)
        mgr.record_unchecked("old")
        mgr.record_unchecked("mid")
        mgr.record_unchecked("new")
        assert mgr.expired_unresolved() == ["old"]

    def test_pending_count(self):
        mgr = ArgueManager(window=1)
        mgr.record_unchecked("a")
        mgr.record_unchecked("b")
        assert mgr.pending_count == 2
        mgr.record_unchecked("c")  # buries "a"
        assert mgr.pending_count == 2
        mgr.argue("b")
        assert mgr.pending_count == 1
