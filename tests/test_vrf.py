"""Unit tests for the simulated VRF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.signatures import SigningKey
from repro.crypto.vrf import (
    VRFOutput,
    vrf_evaluate,
    vrf_output_to_unit_interval,
    vrf_verify,
)
from repro.exceptions import VRFError


@pytest.fixture
def key() -> SigningKey:
    return SigningKey(owner="g0", secret=b"\x05" * 32)


class TestEvaluation:
    def test_deterministic(self, key):
        a = vrf_evaluate(key, 1, 0, 1)
        b = vrf_evaluate(key, 1, 0, 1)
        assert a.value == b.value and a.proof == b.proof

    def test_distinct_inputs_distinct_outputs(self, key):
        base = vrf_evaluate(key, 1, 0, 1)
        assert vrf_evaluate(key, 2, 0, 1).value != base.value
        assert vrf_evaluate(key, 1, 1, 1).value != base.value
        assert vrf_evaluate(key, 1, 0, 2).value != base.value

    def test_distinct_keys_distinct_outputs(self, key):
        other = SigningKey(owner="g1", secret=b"\x06" * 32)
        assert vrf_evaluate(key, 1, 0, 1).value != vrf_evaluate(other, 1, 0, 1).value

    def test_negative_inputs_rejected(self, key):
        with pytest.raises(VRFError):
            vrf_evaluate(key, -1, 0, 1)
        with pytest.raises(VRFError):
            vrf_evaluate(key, 0, -1, 1)
        with pytest.raises(VRFError):
            vrf_evaluate(key, 0, 0, -1)

    def test_as_int_matches_bytes(self, key):
        out = vrf_evaluate(key, 3, 1, 2)
        assert out.as_int() == int.from_bytes(out.value, "big")


class TestVerification:
    def test_honest_output_verifies(self, key):
        out = vrf_evaluate(key, 5, 2, 3)
        assert vrf_verify(key, out)

    def test_tampered_value_rejected(self, key):
        out = vrf_evaluate(key, 5, 2, 3)
        bad = VRFOutput(owner=out.owner, alpha=out.alpha, value=bytes(32), proof=out.proof)
        assert not vrf_verify(key, bad)

    def test_tampered_proof_rejected(self, key):
        out = vrf_evaluate(key, 5, 2, 3)
        bad = VRFOutput(owner=out.owner, alpha=out.alpha, value=out.value, proof=bytes(32))
        assert not vrf_verify(key, bad)

    def test_wrong_owner_rejected(self, key):
        out = vrf_evaluate(key, 5, 2, 3)
        imposter = VRFOutput(owner="g9", alpha=out.alpha, value=out.value, proof=out.proof)
        assert not vrf_verify(key, imposter)

    def test_grinding_a_better_alpha_rejected(self, key):
        # A governor cannot claim an output computed for different (r, j, u).
        out = vrf_evaluate(key, 5, 2, 3)
        other = vrf_evaluate(key, 6, 2, 3)
        spliced = VRFOutput(
            owner=out.owner, alpha=out.alpha, value=other.value, proof=other.proof
        )
        assert not vrf_verify(key, spliced)


class TestDistribution:
    def test_unit_interval_range(self, key):
        xs = [
            vrf_output_to_unit_interval(vrf_evaluate(key, r, 0, 1)) for r in range(200)
        ]
        assert all(0.0 <= x < 1.0 for x in xs)

    def test_rough_uniformity(self, key):
        # Mean of 2000 draws should be near 0.5 (pseudorandomness check).
        xs = np.array(
            [vrf_output_to_unit_interval(vrf_evaluate(key, r, 0, 1)) for r in range(2000)]
        )
        assert abs(float(xs.mean()) - 0.5) < 0.03
        # And spread across quartiles.
        hist, _ = np.histogram(xs, bins=4, range=(0, 1))
        assert hist.min() > 2000 / 4 * 0.8
