"""Tests for the governor wire-message dataclasses."""

from __future__ import annotations

import pytest

from repro.consensus.messages import (
    BlockProposal,
    ExpelEvidence,
    NewStateProposal,
    StateAck,
    StateCommit,
    VRFAnnouncement,
)
from repro.crypto.signatures import SigningKey, sign
from repro.crypto.vrf import vrf_evaluate
from repro.ledger.block import GENESIS_PREV_HASH, Block

KEY = SigningKey(owner="g0", secret=b"\x19" * 32)


def make_block():
    return Block(
        serial=1, tx_list=(), prev_hash=GENESIS_PREV_HASH,
        proposer="g0", round_number=1,
    )


class TestKindTags:
    """Every wire message carries the kind tag the network stats bucket on."""

    def test_vrf_announcement(self):
        out = vrf_evaluate(KEY, 1, 0, 1)
        msg = VRFAnnouncement(round_number=1, governor="g0", outputs=(out,))
        assert msg.kind == "vrf-announce"

    def test_block_proposal(self):
        msg = BlockProposal(round_number=1, block=make_block(), leader="g0")
        assert msg.kind == "block-proposal"

    def test_state_messages(self):
        sig = sign(KEY, ("x",))
        proposal = NewStateProposal(
            round_number=1, leader="g0", new_state={"g0": 1},
            transfers_digest=bytes(32), signature=sig,
        )
        ack = StateAck(
            round_number=1, governor="g1", proposal_digest=bytes(32), signature=sig
        )
        commit = StateCommit(
            round_number=1, leader="g0", new_state={"g0": 1}, acks=(ack,)
        )
        evidence = ExpelEvidence(
            round_number=1, accuser="g1", reason="r", proposal=proposal
        )
        assert proposal.kind == "new-state"
        assert ack.kind == "state-ack"
        assert commit.kind == "state-commit"
        assert evidence.kind == "expel-evidence"


class TestSignedShapes:
    def test_proposal_signed_message_covers_state(self):
        sig = sign(KEY, ("x",))
        a = NewStateProposal(
            round_number=1, leader="g0", new_state={"g0": 1},
            transfers_digest=bytes(32), signature=sig,
        )
        b = NewStateProposal(
            round_number=1, leader="g0", new_state={"g0": 2},
            transfers_digest=bytes(32), signature=sig,
        )
        assert a.signed_message() != b.signed_message()

    def test_proposal_signed_message_covers_round(self):
        sig = sign(KEY, ("x",))
        a = NewStateProposal(
            round_number=1, leader="g0", new_state={"g0": 1},
            transfers_digest=bytes(32), signature=sig,
        )
        b = NewStateProposal(
            round_number=2, leader="g0", new_state={"g0": 1},
            transfers_digest=bytes(32), signature=sig,
        )
        assert a.signed_message() != b.signed_message()

    def test_ack_signed_message_covers_digest(self):
        sig = sign(KEY, ("x",))
        a = StateAck(round_number=1, governor="g1",
                     proposal_digest=bytes(32), signature=sig)
        b = StateAck(round_number=1, governor="g1",
                     proposal_digest=b"\x01" * 32, signature=sig)
        assert a.signed_message() != b.signed_message()

    def test_messages_are_immutable(self):
        msg = BlockProposal(round_number=1, block=make_block(), leader="g0")
        with pytest.raises(AttributeError):
            msg.leader = "g1"
