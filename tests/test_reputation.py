"""Unit and property tests for reputation vectors and books."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.reputation import ReputationBook, ReputationVector
from repro.exceptions import ConfigurationError, ProtocolViolationError


def make_book() -> ReputationBook:
    book = ReputationBook(governor="g0", initial=1.0)
    book.register_collector("c0", ["p0", "p1"])
    book.register_collector("c1", ["p0", "p1"])
    return book


class TestReputationVector:
    def test_fresh_initialisation(self):
        vec = ReputationVector.fresh(["p0", "p1", "p2"], initial=2.0)
        assert vec.s == 3
        assert vec.weight("p1") == 2.0
        assert vec.misreport == 0
        assert vec.forge == 0

    def test_fresh_requires_positive_initial(self):
        with pytest.raises(ConfigurationError):
            ReputationVector.fresh(["p0"], initial=0.0)

    def test_unknown_provider_raises(self):
        vec = ReputationVector.fresh(["p0"])
        with pytest.raises(ProtocolViolationError):
            vec.weight("p9")

    def test_scale(self):
        vec = ReputationVector.fresh(["p0"])
        vec.scale("p0", 0.5)
        assert vec.weight("p0") == 0.5

    def test_scale_requires_positive_factor(self):
        vec = ReputationVector.fresh(["p0"])
        with pytest.raises(ConfigurationError):
            vec.scale("p0", 0.0)

    def test_scale_floors_at_tiny_value(self):
        vec = ReputationVector.fresh(["p0"])
        for _ in range(100_000):
            vec.provider_weights["p0"] *= 0.5
            if vec.provider_weights["p0"] == 0.0:
                break
        vec.provider_weights["p0"] = 1.0
        for _ in range(3000):
            vec.scale("p0", 0.5)
        assert vec.weight("p0") > 0.0  # never collapses to exact zero

    def test_as_tuple_layout(self):
        vec = ReputationVector.fresh(["pb", "pa"], initial=1.0)
        vec.misreport = 3
        vec.forge = -1
        assert vec.as_tuple() == (1.0, 1.0, 3, -1)
        assert len(vec.as_tuple()) == vec.s + 2  # the paper's (s+2)-vector


class TestReputationBook:
    def test_register_and_lookup(self):
        book = make_book()
        assert book.weight("c0", "p0") == 1.0
        assert set(book.collectors()) == {"c0", "c1"}

    def test_duplicate_registration_rejected(self):
        book = make_book()
        with pytest.raises(ProtocolViolationError):
            book.register_collector("c0", ["p0"])

    def test_unknown_collector_rejected(self):
        with pytest.raises(ProtocolViolationError):
            make_book().vector("cX")

    def test_record_forge(self):
        book = make_book()
        book.record_forge("c0")
        book.record_forge("c0")
        assert book.vector("c0").forge == -2

    def test_record_checked(self):
        book = make_book()
        book.record_checked("c0", labeled_correctly=True)
        book.record_checked("c0", labeled_correctly=False)
        book.record_checked("c0", labeled_correctly=False)
        assert book.vector("c0").misreport == -1

    def test_apply_revealed_truth(self):
        book = make_book()
        book.apply_revealed_truth(
            "p0",
            {"c0": "wrong", "c1": "missed"},
            beta=0.9,
            gamma=0.855,
        )
        assert book.weight("c0", "p0") == pytest.approx(0.855)
        assert book.weight("c1", "p0") == pytest.approx(0.9)
        # Other provider entries untouched.
        assert book.weight("c0", "p1") == 1.0

    def test_apply_revealed_truth_correct_unchanged(self):
        book = make_book()
        book.apply_revealed_truth("p0", {"c0": "correct"}, beta=0.9, gamma=0.855)
        assert book.weight("c0", "p0") == 1.0

    def test_unknown_outcome_rejected(self):
        book = make_book()
        with pytest.raises(ProtocolViolationError):
            book.apply_revealed_truth("p0", {"c0": "confused"}, beta=0.9, gamma=0.8)

    def test_weights_for_and_total(self):
        book = make_book()
        book.apply_revealed_truth("p0", {"c0": "wrong"}, beta=0.9, gamma=0.5)
        weights = book.weights_for("p0", ["c0", "c1"])
        assert weights == {"c0": 0.5, "c1": 1.0}
        assert book.total_weight("p0", ["c0", "c1"]) == pytest.approx(1.5)


@given(
    st.lists(
        st.sampled_from(["correct", "wrong", "missed"]), min_size=1, max_size=20
    ),
    st.floats(min_value=0.1, max_value=0.9),
)
def test_property_weights_monotone_nonincreasing(outcomes, beta):
    """Weights never increase: the update is purely multiplicative by <= 1."""
    book = ReputationBook(governor="g", initial=1.0)
    book.register_collector("c", ["p"])
    gamma = beta * beta  # the most aggressive legal gamma
    prev = 1.0
    for outcome in outcomes:
        book.apply_revealed_truth("p", {"c": outcome}, beta=beta, gamma=gamma)
        current = book.weight("c", "p")
        assert current <= prev + 1e-15
        assert current > 0
        prev = current


@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
def test_property_wrong_hurts_more_than_missed(n_wrong, n_missed):
    """gamma <= beta: being wrong n times never beats missing n times."""
    beta = 0.9
    gamma = 0.855
    book = ReputationBook(governor="g", initial=1.0)
    book.register_collector("wrongful", ["p"])
    book.register_collector("silent", ["p"])
    for _ in range(n_wrong):
        book.apply_revealed_truth("p", {"wrongful": "wrong"}, beta=beta, gamma=gamma)
    for _ in range(n_wrong):
        book.apply_revealed_truth("p", {"silent": "missed"}, beta=beta, gamma=gamma)
    assert book.weight("wrongful", "p") <= book.weight("silent", "p") + 1e-15
