"""Unit tests for the deterministic event queue."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.events import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        while q:
            q.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for name in "abcde":
            q.schedule(1.0, lambda n=name: fired.append(n))
        while q:
            q.pop().callback()
        assert fired == list("abcde")

    def test_len_tracks_live_events(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)

    def test_nan_and_inf_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            q.schedule(float("inf"), lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, lambda: fired.append("x"))
        q.schedule(2.0, lambda: fired.append("y"))
        q.cancel(ev)
        while q:
            q.pop().callback()
        assert fired == ["y"]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(5.0, lambda: None)
        q.cancel(ev)
        assert q.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        ev = q.schedule(1.0, lambda: None)
        assert q
        q.cancel(ev)
        assert not q
