"""The perf layer's contract: caches change speed, never semantics.

Three guarantees, each enforced here:

* the :mod:`repro.perf` switchboard actually flips/restores knobs;
* cached verification agrees with uncached verification on random
  payload/tamper pairs (property test);
* seeded end-to-end runs are bit-identical with every cache enabled
  vs. force-disabled, for both engines.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import ProtocolEngine, ProtocolParams, Topology, perf
from repro.agents.behaviors import ConcealBehavior, MisreportBehavior
from repro.core.netengine import NetworkedProtocolEngine
from repro.crypto.hashing import hash_many, hash_value
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import Signature, sign
from repro.ledger.codec import dump_chain
from repro.obs import MetricsRegistry
from repro.workloads.generator import BernoulliWorkload


class TestPerfConfig:
    def test_all_knobs_default_on(self):
        cfg = perf.PerfConfig()
        assert all(
            getattr(cfg, knob)
            for knob in (
                "encode_cache",
                "signature_cache",
                "reputation_cache",
                "batched_delays",
                "codec_fast_path",
            )
        )

    def test_overridden_flips_and_restores(self):
        prior = perf.get_config()
        with perf.overridden(signature_cache=False) as cfg:
            assert cfg.signature_cache is False
            assert cfg.encode_cache is prior.encode_cache
            assert perf.ACTIVE is cfg
        assert perf.get_config() == prior

    def test_all_disabled_turns_everything_off(self):
        prior = perf.get_config()
        with perf.all_disabled() as cfg:
            assert not any(
                (
                    cfg.encode_cache,
                    cfg.signature_cache,
                    cfg.reputation_cache,
                    cfg.batched_delays,
                    cfg.codec_fast_path,
                )
            )
        assert perf.get_config() == prior

    def test_configure_flips_one_knob_globally(self):
        prior = perf.get_config()
        try:
            cfg = perf.configure(reputation_cache=False)
            assert perf.get_config() is cfg
            assert cfg.reputation_cache is False
            assert cfg.encode_cache is prior.encode_cache
        finally:
            perf.set_config(prior)


class TestHashManyStreaming:
    def test_matches_tuple_hash(self):
        values = ["a", 1, 2.5, b"\x00\xff", ("nested", True), None]
        assert hash_many(values) == hash_value(tuple(values))

    def test_generator_input(self):
        assert hash_many(str(i) for i in range(100)) == hash_value(
            tuple(str(i) for i in range(100))
        )

    def test_empty(self):
        assert hash_many([]) == hash_value(())

    def test_order_sensitivity(self):
        assert hash_many(["a", "b"]) != hash_many(["b", "a"])


def _random_message(rng: random.Random):
    """A random sign/verify message: raw bytes or a canonical tuple."""
    kind = rng.randrange(3)
    if kind == 0:
        return rng.randbytes(rng.randrange(1, 64))
    if kind == 1:
        return ("tx", rng.randbytes(32), rng.random())
    return (
        "upload",
        {"amount": rng.randrange(10_000), "memo": "x" * rng.randrange(8)},
        rng.randrange(1 << 30),
    )


def _tampered(rng: random.Random, message, signature: Signature):
    """One random tamper: flip the tag, the claimed signer, or the message."""
    kind = rng.randrange(3)
    if kind == 0:
        i = rng.randrange(len(signature.tag))
        tag = bytearray(signature.tag)
        tag[i] ^= 1 << rng.randrange(8)
        return message, Signature(signer=signature.signer, tag=bytes(tag))
    if kind == 1:
        return message, Signature(signer="p_other", tag=signature.tag)
    mutated = (
        message + b"\x00" if isinstance(message, bytes) else (*message, "extra")
    )
    return mutated, signature


class TestVerifyCacheEquivalence:
    """Property: cached verify == uncached verify, verdict for verdict."""

    def test_random_payload_and_tamper_pairs(self):
        rng = random.Random(0xC0FFEE)
        im = IdentityManager(seed=1)
        key = im.enroll("p0", Role.PROVIDER)
        im.enroll("p_other", Role.PROVIDER)
        for _ in range(200):
            message = _random_message(rng)
            signature = sign(key, message)
            cases = [("p0", message, signature)]
            cases.append(("p0", *_tampered(rng, message, signature)))
            # Honest signature presented for the wrong sender id.
            cases.append(("p_other", message, signature))
            cases.append(("nobody", message, signature))
            for sender, msg, sig in cases:
                cached = im.verify(sender, msg, sig)
                # Ask twice so the second cached call exercises a hit.
                assert im.verify(sender, msg, sig) == cached
                with perf.overridden(signature_cache=False):
                    assert im.verify(sender, msg, sig) == cached

    def test_hit_and_miss_counters(self):
        obs = MetricsRegistry()
        im = IdentityManager(seed=2, obs=obs)
        key = im.enroll("p0", Role.PROVIDER)
        message = b"payload"
        signature = sign(key, message)
        hits = obs.counter("crypto_sig_cache_hits", "")
        misses = obs.counter("crypto_sig_cache_misses", "")
        assert im.verify("p0", message, signature)
        assert (misses.value, hits.value) == (1, 0)
        assert im.verify("p0", message, signature)
        assert (misses.value, hits.value) == (1, 1)
        with perf.overridden(signature_cache=False):
            assert im.verify("p0", message, signature)
        assert (misses.value, hits.value) == (1, 1)

    def test_lru_eviction_bound(self):
        im = IdentityManager(seed=3)
        key = im.enroll("p0", Role.PROVIDER)
        im.VERIFY_CACHE_SIZE = 8
        for i in range(32):
            message = i.to_bytes(4, "big")
            assert im.verify("p0", message, sign(key, message))
        assert len(im._verify_cache) <= 8


def _inprocess_tip_and_chain(rounds: int = 3, per_round: int = 8):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = ProtocolEngine(
        topo,
        ProtocolParams(f=0.5, b_limit=256),
        behaviors={"c0": MisreportBehavior(0.4), "c1": ConcealBehavior(0.4)},
        seed=7,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=8)
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))
    engine.finalize()
    ledger = next(iter(engine.governors.values())).ledger
    return ledger.tip_hash(), dump_chain(ledger)


def _networked_tip_and_chain(rounds: int = 3, per_round: int = 4):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = NetworkedProtocolEngine(topo, ProtocolParams(f=0.5, delta=0.2), seed=3)
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=4)
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))
    ledger = next(iter(engine.governors.values())).ledger
    return ledger.tip_hash(), dump_chain(ledger)


class TestSeededRunsBitIdentical:
    """The headline determinism contract from PERFORMANCE.md."""

    @pytest.mark.parametrize(
        "runner",
        [_inprocess_tip_and_chain, _networked_tip_and_chain],
        ids=["inprocess", "networked"],
    )
    def test_caches_on_vs_off(self, runner):
        tip_on, chain_on = runner()
        with perf.all_disabled():
            tip_off, chain_off = runner()
        assert tip_on == tip_off
        assert chain_on == chain_off

    def test_single_knob_off_matches_too(self):
        # batched_delays is the subtlest knob (vectorized RNG draws must
        # reproduce the sequential stream exactly) — check it alone.
        tip_on, _ = _networked_tip_and_chain()
        with perf.overridden(batched_delays=False):
            tip_off, _ = _networked_tip_and_chain()
        assert tip_on == tip_off
