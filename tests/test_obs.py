"""Unit tests for the repro.obs metrics registry and exporters."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    snapshot,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)


class TestCounters:
    def test_unlabelled_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", labels=("node",))
        c.labels(node="a").inc()
        c.labels(node="b").inc(4)
        assert c.value_of(node="a") == 1
        assert c.value_of(node="b") == 4

    def test_unknown_label_name_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", labels=("node",))
        with pytest.raises(ConfigurationError):
            c.labels(zone="a")

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits")
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestRegistration:
    def test_idempotent_same_schema(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", labels=("k",))
        b = reg.counter("x_total", "x", labels=("k",))
        assert a is b

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total", "x")

    def test_label_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", labels=("k",))
        with pytest.raises(ConfigurationError):
            reg.counter("x_total", "x", labels=("j",))


class TestGaugesAndHistograms:
    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "queue depth")
        g.set(7)
        g.inc(-2)
        assert g.value == 5

    def test_histogram_buckets_fill(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        ((_labels, state),) = h.samples()
        assert state.bucket_counts == [1, 1]  # 0.05 <= 0.1, 0.5 <= 1.0
        assert state.count == 3
        assert state.sum == pytest.approx(5.55)

    def test_histogram_buckets_must_ascend(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("lat", "latency", buckets=(1.0, 0.5))


class TestReset:
    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits", labels=("k",))
        c.labels(k="a").inc(3)
        with reg.span("phase"):
            pass
        reg.reset()
        assert reg.get("hits_total") is c
        assert c.value_of(k="a") == 0
        assert reg.spans == []

    def test_series_survive_reset_at_zero(self):
        # A bound child from before the reset keeps working.
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "hits", labels=("k",))
        bound = c.labels(k="a")
        bound.inc(3)
        reg.reset()
        bound.inc()
        assert c.value_of(k="a") == 1


class TestSpans:
    def test_span_context_uses_bound_clock(self):
        reg = MetricsRegistry()
        now = {"t": 1.0}
        reg.bind_clock(lambda: now["t"])
        with reg.span("work", node="a"):
            now["t"] = 3.5
        (span,) = reg.spans_of("work")
        assert span.start == 1.0 and span.end == 3.5
        assert span.duration == 2.5
        assert span.labels == {"node": "a"}

    def test_record_span_coerces_labels(self):
        reg = MetricsRegistry()
        reg.record_span("round", 0.0, 1.0, round=3)
        (span,) = reg.spans_of("round")
        assert span.labels == {"round": "3"}


class TestDisabledRegistry:
    def test_null_registry_is_noop(self):
        c = NULL_REGISTRY.counter("x_total", "x", labels=("k",))
        c.inc()
        c.labels(k="a").inc(5)
        NULL_REGISTRY.gauge("g", "g").set(1)
        NULL_REGISTRY.histogram("h", "h").observe(1)
        NULL_REGISTRY.record_span("s", 0.0, 1.0)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.spans == []

    def test_disabled_registry_exports_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("x_total", "x").inc()
        assert to_prometheus(reg) == ""
        assert snapshot(reg) == {"metrics": {}, "spans": []}


class TestExportDeterminism:
    @staticmethod
    def _populated():
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", labels=("node",))
        # Insertion order b-then-a must not leak into the export.
        c.labels(node="b").inc(2)
        c.labels(node="a").inc(1)
        reg.gauge("depth", "queue depth").set(4)
        reg.histogram("lat", "latency", buckets=(0.1, 1.0)).observe(0.5)
        reg.record_span("phase", 0.0, 2.0, node="a")
        return reg

    def test_prometheus_sorted_and_cumulative(self):
        text = to_prometheus(self._populated())
        lines = text.splitlines()
        assert lines[0] == "# HELP depth queue depth"
        a = lines.index('req_total{node="a"} 1')
        b = lines.index('req_total{node="b"} 2')
        assert a < b
        assert 'lat_bucket{le="0.1"} 0' in lines
        assert 'lat_bucket{le="1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_sum 0.5" in lines and "lat_count 1" in lines

    def test_equal_registries_export_equal_bytes(self):
        one, two = self._populated(), self._populated()
        assert to_prometheus(one) == to_prometheus(two)
        assert to_jsonl(one) == to_jsonl(two)
        assert json.dumps(snapshot(one), sort_keys=True) == json.dumps(
            snapshot(two), sort_keys=True
        )

    def test_jsonl_lines_parse_and_cover_spans(self):
        rows = [json.loads(line) for line in to_jsonl(self._populated()).splitlines()]
        metrics = [r for r in rows if "metric" in r]
        spans = [r for r in rows if "span" in r]
        assert {m["metric"] for m in metrics} == {"req_total", "depth", "lat"}
        assert spans == [
            {
                "span": "phase",
                "labels": {"node": "a"},
                "start": 0.0,
                "end": 2.0,
                "duration": 2.0,
            }
        ]

    def test_write_jsonl_accepts_file_and_path(self, tmp_path):
        reg = self._populated()
        buf = io.StringIO()
        n = write_jsonl(reg, buf)
        target = tmp_path / "m.jsonl"
        assert write_jsonl(reg, target) == n
        assert target.read_text() == buf.getvalue()

    def test_snapshot_roundtrips_through_json(self):
        snap = snapshot(self._populated())
        assert json.loads(json.dumps(snap)) == snap
