"""Chaos harness: the protocol under seeded fault plans (E12).

The acceptance bar for the fault subsystem: under per-link message
loss, duplication, reordering, a governor crash-recovery, and a
sequencer failover, a full multi-round networked run must complete with

* **agreement** — all live governors hold identical ledger prefixes
  (and, after recovery drains, identical heights);
* **Lemma 2 intact** — the measured unchecked rate stays <= f;
* **no stuck gaps** — zero messages left in broadcast gap buffers at
  finalize (every repairable gap was repaired).

One fast seeded smoke run stays in the tier-1 suite; the heavier
schedules carry the ``chaos`` marker.
"""

from __future__ import annotations

import pytest

from repro.agents.behaviors import ConcealBehavior, MisreportBehavior
from repro.core.netengine import (
    SEQUENCER_PRIMARY,
    NetworkedProtocolEngine,
)
from repro.core.params import ProtocolParams
from repro.faults import FaultPlan, LinkFaultSpec
from repro.ledger.chain import check_agreement
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def build_engine(seed=0, f=0.6, behaviors=None, resilience=True):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=f, delta=0.2),
        behaviors=behaviors,
        seed=seed,
        resilience=resilience,
    )
    return engine, topo


def lossy_plan(seed=0, loss=0.10):
    return FaultPlan(seed=seed).with_default_link(
        LinkFaultSpec(loss=loss, duplicate=0.05, reorder=0.05, reorder_delay=0.1)
    )


def run_rounds(engine, topo, rounds, per_round=8, p_valid=0.85, seed=1):
    workload = BernoulliWorkload(topo.providers, p_valid=p_valid, seed=seed)
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))


def assert_safety(engine, f):
    """The three chaos invariants (agreement, Lemma 2, no stuck gaps)."""
    live = [g for g in engine.governors.values() if g.governor_id not in engine.crashed_nodes]
    check_agreement([g.ledger for g in live])
    for gov in live:
        assert gov.ledger.height == engine.store.height, gov.governor_id
    screened = sum(g.metrics.transactions_screened for g in live)
    unchecked = sum(g.metrics.unchecked for g in live)
    assert screened > 0
    assert unchecked / screened <= f, f"unchecked rate {unchecked/screened} > f={f}"
    assert engine.broadcast.pending_gap_total() == 0


class TestChaosSmoke:
    """Fast seeded smoke run — stays in the tier-1 suite."""

    def test_lossy_run_completes_and_stays_safe(self):
        engine, topo = build_engine(seed=20)
        engine.install_faults(lossy_plan(seed=21))
        run_rounds(engine, topo, rounds=4, seed=22)
        engine.finalize()
        assert_safety(engine, f=0.6)
        assert engine.injector.stats.dropped > 0  # the plan actually bit
        assert engine.store.height == 4


@pytest.mark.chaos
class TestGovernorCrashRecovery:
    def test_crash_recover_rejoins_and_agrees(self):
        engine, topo = build_engine(seed=30)
        plan = lossy_plan(seed=31).with_crash("g1", at=0.5, recover_at=1.6)
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=6, seed=32)
        engine.finalize()
        assert engine.injector.stats.crashes == 1
        assert engine.injector.stats.recoveries == 1
        # The recovered governor synced its missed blocks from the store.
        synced = [n for (_t, kind, node, n) in engine.fault_log if kind == "recover"]
        assert synced and synced[0] >= 1
        assert "g1" not in engine.crashed_nodes
        assert_safety(engine, f=0.6)

    def test_crashed_leader_fails_over(self):
        engine, topo = build_engine(seed=40)
        # Crash every governor's turn will eventually hit the elected
        # leader; crash g0 across rounds 1-3 to force at least one
        # failover window, then recover it.
        plan = FaultPlan(seed=41).with_crash("g0", at=0.1, recover_at=1.3)
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=5, seed=42)
        engine.finalize()
        # No round may be packed by a governor that was crashed at pack
        # time; every block's proposer was live.
        for serial in range(1, engine.store.height + 1):
            assert engine.store.retrieve(serial).proposer in engine.governors
        assert engine.store.height == 5
        assert_safety(engine, f=0.6)


@pytest.mark.chaos
class TestSequencerFailover:
    def test_primary_sequencer_crash_repairs_via_backup(self):
        engine, topo = build_engine(seed=50)
        plan = lossy_plan(seed=51).with_crash(SEQUENCER_PRIMARY, at=0.3)
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=6, seed=52)
        engine.finalize()
        # Gaps opened by 10% loss still all closed with the primary dead.
        assert engine.broadcast.pending_gap_total() == 0
        assert_safety(engine, f=0.6)


@pytest.mark.chaos
class TestCollectorChurn:
    def test_collector_crash_is_retired_and_readmitted(self):
        behaviors = {"c0": MisreportBehavior(0.3), "c1": ConcealBehavior(0.3)}
        engine, topo = build_engine(seed=60, behaviors=behaviors)
        plan = lossy_plan(seed=61).with_crash("c2", at=0.5, recover_at=1.6)
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=6, seed=62)
        engine.finalize()
        # Re-admitted everywhere with a bootstrapped vector.
        for gov in engine.governors.values():
            assert gov.book.is_registered("c2")
        assert "c2" not in engine.crashed_nodes
        assert_safety(engine, f=0.6)

    def test_retired_collector_labels_are_scrubbed(self):
        engine, topo = build_engine(seed=70)
        engine.install_faults(FaultPlan(seed=71))  # clean links, manual crash
        workload = BernoulliWorkload(topo.providers, p_valid=0.9, seed=72)
        engine.run_round(workload.take(8))
        engine.crash_collector("c0")
        for gov in engine.governors.values():
            assert not gov.book.is_registered("c0")
            assert all("c0" not in linked for linked in gov._linked.values())
        engine.run_round(workload.take(8))  # screening must not blow up
        engine.recover_collector("c0")
        for gov in engine.governors.values():
            assert gov.book.is_registered("c0")
        engine.run_round(workload.take(8))
        engine.finalize()
        assert_safety(engine, f=0.6)


@pytest.mark.chaos
class TestAcceptanceScenario:
    """The ISSUE's combined bar: 10% loss + governor crash-recovery +
    sequencer failover in one seeded multi-round run."""

    def test_full_fault_plan_run(self):
        engine, topo = build_engine(seed=80, f=0.6)
        plan = (
            lossy_plan(seed=81, loss=0.10)
            .with_crash("g2", at=0.6, recover_at=1.8)
            .with_crash(SEQUENCER_PRIMARY, at=1.0)
        )
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=8, per_round=8, seed=82)
        engine.finalize()
        assert engine.store.height == 8
        assert engine.injector.stats.dropped > 0
        assert engine.injector.stats.crashes == 2
        assert engine.injector.stats.recoveries == 1
        assert_safety(engine, f=0.6)

    def test_seeded_chaos_is_deterministic(self):
        def tip_hashes(run_seed):
            engine, topo = build_engine(seed=run_seed)
            engine.install_faults(
                lossy_plan(seed=90).with_crash("g1", at=0.5, recover_at=1.5)
            )
            run_rounds(engine, topo, rounds=4, seed=91)
            engine.finalize()
            return [
                engine.store.retrieve(s).hash()
                for s in range(1, engine.store.height + 1)
            ]

        assert tip_hashes(7) == tip_hashes(7)


@pytest.mark.chaos
class TestFaultEdgeCases:
    """Compound fault-subsystem edge cases layered on the PR1 machinery."""

    def test_leader_crash_with_partition_during_commit(self):
        """The elected leader crashes while another governor is cut off
        by a partition spanning the pack/commit window: the failover
        leader packs, the partitioned governor repairs its gap on the
        next multicast, and everyone converges."""
        engine, topo = build_engine(seed=100)
        plan = (
            lossy_plan(seed=101, loss=0.05)
            .with_crash("g0", at=0.1, recover_at=1.4)
            .with_partition(("g1",), start=0.3, end=1.1)
        )
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=6, seed=102)
        engine.finalize()
        engine.drain_recovery()
        # Every block was packed by a live governor, never the crashed one
        # during its outage window.
        assert engine.store.height == 6
        assert engine.injector.stats.crashes == 1
        assert engine.injector.stats.recoveries == 1
        for gov in engine.governors.values():
            assert gov.ledger.height == engine.store.height, gov.governor_id
        assert_safety(engine, f=0.6)

    def test_sequencer_failover_with_repair_in_flight(self):
        """Heavy loss keeps gap-repair NACK traffic in flight when the
        primary sequencer crash-stops mid-run; the backup must answer
        from the same retained buffer and close every gap."""
        engine, topo = build_engine(seed=110)
        plan = FaultPlan(seed=111).with_default_link(
            LinkFaultSpec(loss=0.28, reorder=0.10, reorder_delay=0.1)
        ).with_crash(SEQUENCER_PRIMARY, at=0.5)
        engine.install_faults(plan)
        run_rounds(engine, topo, rounds=6, seed=112)
        engine.finalize()
        engine.drain_recovery()
        assert engine.injector.stats.dropped > 0
        assert engine.broadcast.pending_gap_total() == 0
        assert_safety(engine, f=0.6)


@pytest.mark.chaos
class TestByzantineAcceptance:
    """The ISSUE's Byzantine bar: one honest collector, every other
    collector Byzantine, an equivocating governor, and in-flight
    tampering — honest replicas stay safe, the Theorem-1 bound holds,
    and the equivocator is quarantined within two rounds."""

    EQUIVOCATE_AT = 3

    def build(self, seed=120):
        from repro.byzantine import (
            AdaptiveAttackerBehavior,
            CartelPlan,
            ColludingCollectorBehavior,
            MessageTamperer,
            TamperSpec,
            install_equivocation,
            reputation_probe,
        )

        plan = CartelPlan(target_provider="p0", mode="conceal")
        adaptive = AdaptiveAttackerBehavior(defect_above=0.8, p_defect=0.5)
        behaviors = {
            # c0 stays honest — the paper's "at least one well-behaved
            # collector" premise.
            "c1": ColludingCollectorBehavior(plan),
            "c2": ColludingCollectorBehavior(plan),
            "c3": adaptive,
        }
        engine, topo = build_engine(seed=seed, f=0.6, behaviors=behaviors)
        adaptive.bind_probe(reputation_probe(engine, "g0", "c3"))
        tamperer = MessageTamperer(
            TamperSpec(strip_signature=0.05, flip_label=0.05, replay=0.05,
                       corrupt_block=0.10),
            seed=seed + 1,
        )
        engine.install_faults(FaultPlan(seed=seed + 2), tamperer=tamperer)
        install_equivocation(engine, "g2", serial=self.EQUIVOCATE_AT)
        return engine, topo, tamperer

    def run_soak(self, seed=120):
        engine, topo, tamperer = self.build(seed)
        run_rounds(engine, topo, rounds=8, seed=seed + 3)
        engine.finalize()
        return engine, topo, tamperer

    def test_byzantine_majority_soak(self):
        from repro.core.regret import rwm_bound

        engine, topo, tamperer = self.run_soak()
        assert tamperer.stats.total > 0  # the adversary actually acted
        honest_govs = [
            gid for gid in topo.governors if gid not in engine.quarantined_nodes
        ]
        # 1. Zero safety violations on honest governors' replicas.
        for gid in honest_govs:
            assert not engine.auditors[gid].report.safety_violations(), gid
        assert not engine.harness_auditor.report.safety_violations()
        check_agreement([engine.governors[gid].ledger for gid in honest_govs])
        for gid in honest_govs:
            engine.governors[gid].ledger.verify_integrity()
        # 2. The equivocator — and only the equivocator — was provably
        # caught, within two rounds of the attack.
        assert engine.quarantined_nodes == {"g2"}
        _t, rnd, node, vtype = engine.quarantine_log[0]
        assert node == "g2" and vtype == "governor-equivocation"
        assert rnd <= self.EQUIVOCATE_AT + 2
        provable = [
            v
            for gid in honest_govs
            for v in engine.auditors[gid].report.provable()
        ]
        assert provable and {v.culprit for v in provable} == {"g2"}
        # 3. Honest governor loss stays under the Theorem-1 bound.
        bound = rwm_bound(s_min=0.0, r=topo.r, beta=engine.params.beta)
        worst = max(
            engine.governors[gid].metrics.expected_loss for gid in honest_govs
        )
        assert worst <= bound, f"loss {worst} exceeds rwm_bound {bound}"

    def test_byzantine_soak_is_deterministic(self):
        def fingerprint():
            engine, _topo, _tamperer = self.run_soak(seed=130)
            return (
                [
                    engine.store.retrieve(s).hash()
                    for s in range(1, engine.store.height + 1)
                ],
                list(engine.quarantine_log),
            )

        first, second = fingerprint(), fingerprint()
        assert first[0] == second[0]
        assert first[1] == second[1]
