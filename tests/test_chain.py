"""Unit tests for the ledger (chain) and the Agreement checker."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import (
    AgreementError,
    BlockNotFoundError,
    ChainIntegrityError,
    SkippedBlockError,
)
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.chain import Ledger, check_agreement
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    TxRecord,
    make_signed_transaction,
)

KEY = SigningKey(owner="p0", secret=b"\x0d" * 32)
_NONCE = iter(range(10_000))


def record(payload="x") -> TxRecord:
    tx = make_signed_transaction(KEY, payload, 1.0, nonce=next(_NONCE))
    return TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)


def extend(ledger: Ledger, n: int = 1, records=None) -> list[Block]:
    out = []
    for _ in range(n):
        block = Block(
            serial=ledger.height + 1,
            tx_list=tuple(records or (record(),)),
            prev_hash=ledger.tip_hash(),
            proposer="g0",
            round_number=ledger.height + 1,
        )
        ledger.append(block)
        out.append(block)
    return out


class TestAppend:
    def test_genesis_append(self):
        ledger = Ledger()
        extend(ledger)
        assert ledger.height == 1

    def test_serials_consecutive(self):
        ledger = Ledger()
        extend(ledger, 5)
        assert [b.serial for b in ledger.blocks()] == [1, 2, 3, 4, 5]

    def test_skipped_serial_rejected(self):
        ledger = Ledger()
        extend(ledger)
        bad = Block(
            serial=3, tx_list=(), prev_hash=ledger.tip_hash(),
            proposer="g0", round_number=3,
        )
        with pytest.raises(SkippedBlockError):
            ledger.append(bad)

    def test_wrong_prev_hash_rejected(self):
        ledger = Ledger()
        extend(ledger)
        bad = Block(
            serial=2, tx_list=(), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=2,
        )
        with pytest.raises(ChainIntegrityError):
            ledger.append(bad)

    def test_duplicate_serial_rejected(self):
        ledger = Ledger()
        blocks = extend(ledger)
        with pytest.raises(SkippedBlockError):
            ledger.append(blocks[0])


class TestRetrieve:
    def test_retrieve_returns_block(self):
        ledger = Ledger()
        blocks = extend(ledger, 3)
        assert ledger.retrieve(2) is blocks[1]

    def test_retrieve_missing_raises(self):
        ledger = Ledger()
        with pytest.raises(BlockNotFoundError):
            ledger.retrieve(1)
        extend(ledger, 2)
        with pytest.raises(BlockNotFoundError):
            ledger.retrieve(3)
        with pytest.raises(BlockNotFoundError):
            ledger.retrieve(0)

    def test_find_record(self):
        ledger = Ledger()
        rec = record("target")
        extend(ledger, 1, records=(rec,))
        found = ledger.find_record(rec.tx.tx_id)
        assert found is not None
        block, got = found
        assert block.serial == 1 and got.tx.tx_id == rec.tx.tx_id
        assert ledger.find_record("missing") is None

    def test_find_record_prefers_latest(self):
        ledger = Ledger()
        tx = make_signed_transaction(KEY, "re", 1.0, nonce=next(_NONCE))
        first = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        second = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.REEVALUATED)
        extend(ledger, 1, records=(first,))
        extend(ledger, 1, records=(second,))
        _block, got = ledger.find_record(tx.tx_id)
        assert got.status is CheckStatus.REEVALUATED

    def test_all_records(self):
        ledger = Ledger()
        extend(ledger, 3)
        assert len(list(ledger.all_records())) == 3


class TestIntegrity:
    def test_verify_integrity_ok(self):
        ledger = Ledger()
        extend(ledger, 4)
        ledger.verify_integrity()

    def test_verify_integrity_detects_tampering(self):
        ledger = Ledger()
        extend(ledger, 3)
        # Corrupt the middle block in place.
        tampered = Block(
            serial=2, tx_list=(record("evil"),),
            prev_hash=ledger.retrieve(1).hash(), proposer="g0", round_number=2,
        )
        ledger._blocks[1] = tampered
        with pytest.raises(ChainIntegrityError):
            ledger.verify_integrity()


class TestAgreement:
    def _twin_ledgers(self, n=3):
        a, b = Ledger(owner="a"), Ledger(owner="b")
        for _ in range(n):
            block = Block(
                serial=a.height + 1, tx_list=(record(),),
                prev_hash=a.tip_hash(), proposer="g0", round_number=a.height + 1,
            )
            a.append(block)
            b.append(block)
        return a, b

    def test_identical_replicas_agree(self):
        a, b = self._twin_ledgers()
        check_agreement([a, b])

    def test_lagging_replica_still_agrees(self):
        a, b = self._twin_ledgers()
        extend(a, 1)
        check_agreement([a, b])  # compares only the common prefix

    def test_divergent_replicas_detected(self):
        a, b = self._twin_ledgers(2)
        extend(a, 1)
        extend(b, 1)  # different block contents at serial 3
        with pytest.raises(AgreementError):
            check_agreement([a, b])

    def test_single_replica_trivially_agrees(self):
        ledger = Ledger()
        extend(ledger, 2)
        check_agreement([ledger])
