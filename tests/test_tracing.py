"""Tests for structured run tracing."""

from __future__ import annotations

import io

import pytest

from repro.agents.behaviors import MisreportBehavior
from repro.analysis.tracing import RunTracer
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


@pytest.fixture
def traced_run():
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = ProtocolEngine(
        topo, ProtocolParams(f=0.6),
        behaviors={"c0": MisreportBehavior(0.5)},
        seed=1, leader_rotation=True,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=2)
    tracer = RunTracer(watch_collectors=("c0", "c1"))
    for _ in range(5):
        result = engine.run_round(workload.take(8))
        tracer.observe_round(engine, result)
    return engine, tracer


class TestCapture:
    def test_round_events(self, traced_run):
        _engine, tracer = traced_run
        rounds = tracer.of_kind("round")
        assert len(rounds) == 5
        assert [e["round"] for e in rounds] == [1, 2, 3, 4, 5]
        assert all("leader" in e and "block_size" in e for e in rounds)

    def test_record_events_cover_blocks(self, traced_run):
        engine, tracer = traced_run
        records = tracer.of_kind("record")
        on_chain = sum(len(b.tx_list) for b in engine.governors["g0"].ledger.blocks())
        assert len(records) == on_chain

    def test_upload_events(self, traced_run):
        _engine, tracer = traced_run
        uploads = tracer.of_kind("upload")
        # 8 txs x r = 2 collectors per round x 5 rounds (all upload).
        assert len(uploads) == 8 * 2 * 5

    def test_uploads_can_be_disabled(self):
        topo = Topology.regular(l=4, n=4, m=3, r=2)
        engine = ProtocolEngine(topo, ProtocolParams(f=0.5), seed=3)
        workload = BernoulliWorkload(topo.providers, seed=4)
        tracer = RunTracer(include_uploads=False)
        tracer.observe_round(engine, engine.run_round(workload.take(4)))
        assert tracer.of_kind("upload") == []

    def test_reward_events_sum_to_pool(self, traced_run):
        _engine, tracer = traced_run
        per_round = {}
        for e in tracer.of_kind("reward"):
            per_round.setdefault(e["round"], 0.0)
            per_round[e["round"]] += e["amount"]
        assert all(abs(total - 100.0) < 1e-6 for total in per_round.values())

    def test_reputation_series_monotone_for_misreporter(self, traced_run):
        engine, tracer = traced_run
        provider = engine.topology.providers_of("c0")[0]
        series = tracer.reputation_series("c0", provider)
        assert len(series) == 5
        assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))

    def test_tx_history_links_upload_and_record(self, traced_run):
        _engine, tracer = traced_run
        some_record = tracer.of_kind("record")[0]
        history = tracer.tx_history(some_record["tx_id"])
        kinds = {e["kind"] for e in history}
        assert "record" in kinds
        assert "upload" in kinds


class TestSerialisation:
    def test_dump_load_roundtrip(self, traced_run):
        _engine, tracer = traced_run
        buffer = io.StringIO()
        count = tracer.dump(buffer)
        assert count == len(tracer.events)
        buffer.seek(0)
        loaded = RunTracer.load(buffer)
        assert loaded.events == tracer.events

    def test_load_skips_blank_lines(self):
        loaded = RunTracer.load(['{"kind": "round"}', "", '{"kind": "reward"}'])
        assert len(loaded.events) == 2

    def test_load_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            RunTracer.load(["not json"])

    def test_load_rejects_kindless_events(self):
        with pytest.raises(ConfigurationError):
            RunTracer.load(['{"round": 1}'])
