"""Unit and property tests for protocol parameters and the β/γ rules."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    DEFAULT_PARAMS,
    ProtocolParams,
    gamma_for,
    tuned_beta,
    validate_discounts,
)
from repro.exceptions import ConfigurationError


class TestGammaRule:
    def test_paper_example_beta_09(self):
        # With beta = 0.9 the floor branch is (0.81 + 0.9)/2 = 0.855.
        assert gamma_for(0.9, 0.0) == pytest.approx(0.855)

    def test_adaptive_branch_dominates_at_high_loss(self):
        beta = 0.9
        gamma = gamma_for(beta, 2.0)
        adaptive = (beta - 1) / 2.0 + (beta + 1) / 2.0
        assert gamma == pytest.approx(adaptive)

    def test_zero_loss_uses_floor(self):
        assert gamma_for(0.5, 0.0) == pytest.approx((0.25 + 0.5) / 2)

    def test_bad_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            gamma_for(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            gamma_for(1.0, 1.0)

    def test_bad_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            gamma_for(0.5, -0.1)
        with pytest.raises(ConfigurationError):
            gamma_for(0.5, 2.1)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=1e-6, max_value=2.0),
    )
    def test_property_paper_inequality_chain(self, beta, loss):
        """gamma_for always satisfies beta^2 <= gamma <= beta <= (gamma-1)L/2+1 <= 1."""
        gamma = gamma_for(beta, loss)
        validate_discounts(beta, gamma, loss)

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=1e-6, max_value=2.0),
    )
    def test_property_gamma_in_unit_interval(self, beta, loss):
        gamma = gamma_for(beta, loss)
        assert 0.0 < gamma < 1.0

    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=1e-6, max_value=2.0),
    )
    def test_property_proof_lower_bound(self, beta, loss):
        """gamma >= 2(beta-1)/L + 1, the inequality the potential proof uses."""
        gamma = gamma_for(beta, loss)
        assert gamma >= 2.0 * (beta - 1.0) / loss + 1.0 - 1e-12


class TestValidateDiscounts:
    def test_violation_detected_gamma_above_beta(self):
        with pytest.raises(ConfigurationError):
            validate_discounts(beta=0.5, gamma=0.6, loss=1.0)

    def test_violation_detected_gamma_below_beta_squared(self):
        with pytest.raises(ConfigurationError):
            validate_discounts(beta=0.9, gamma=0.5, loss=1.0)

    def test_violation_detected_beta_above_upper(self):
        # beta > (gamma-1)*L/2 + 1 for aggressive gamma and high loss.
        with pytest.raises(ConfigurationError):
            validate_discounts(beta=0.95, gamma=0.9025, loss=2.0)


class TestTunedBeta:
    def test_matches_formula(self):
        expected = 1 - 4 * math.sqrt(math.log2(8) / 4800)
        assert tuned_beta(8, 4800) == pytest.approx(expected)

    def test_paper_r8_t4800_is_exactly_09(self):
        # The paper: at r = 8, T <= 4800 keeps the unclamped value <= 0.9;
        # equality holds exactly at T = 4800 (log2(8) = 3).
        assert tuned_beta(8, 4800) == pytest.approx(0.9)
        assert tuned_beta(8, 4000) < 0.9

    def test_clamped_low(self):
        assert tuned_beta(8, 2) == 0.1

    def test_clamped_high(self):
        assert tuned_beta(2, 10**9) == 0.9

    def test_monotone_in_horizon(self):
        values = [tuned_beta(8, t) for t in (50, 200, 1000, 4000)]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            tuned_beta(1, 100)
        with pytest.raises(ConfigurationError):
            tuned_beta(8, 0)


class TestProtocolParams:
    def test_defaults_valid(self):
        assert 0 < DEFAULT_PARAMS.f < 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"f": 0.0},
            {"f": 1.0},
            {"beta": 0.0},
            {"beta": 1.0},
            {"mu": 1.0},
            {"nu": 0.5},
            {"argue_window": 0},
            {"b_limit": 0},
            {"delta": 0.0},
            {"initial_reputation": 0.0},
            {"reward_pool_per_block": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProtocolParams(**kwargs)

    def test_gamma_helper_uses_own_beta(self):
        params = ProtocolParams(beta=0.8)
        assert params.gamma(1.0) == gamma_for(0.8, 1.0)

    def test_with_tuned_beta(self):
        params = ProtocolParams(beta=0.5)
        tuned = params.with_tuned_beta(r=8, horizon=1000)
        assert tuned.beta == tuned_beta(8, 1000)
        assert tuned.f == params.f  # everything else preserved
        assert params.beta == 0.5  # original frozen
