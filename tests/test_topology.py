"""Unit and property tests for the hierarchical topology."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.network.topology import Topology


class TestRegular:
    def test_basic_shape(self):
        topo = Topology.regular(l=8, n=4, m=3, r=2)
        assert topo.l == 8 and topo.n == 4 and topo.m == 3
        assert topo.r == 2 and topo.s == 4

    def test_degree_equation(self):
        topo = Topology.regular(l=12, n=6, m=2, r=3)
        assert topo.r * topo.l == topo.s * topo.n

    def test_every_provider_has_r_distinct_collectors(self):
        topo = Topology.regular(l=10, n=5, m=2, r=3)
        for p in topo.providers:
            cs = topo.collectors_of(p)
            assert len(cs) == 3
            assert len(set(cs)) == 3

    def test_every_collector_has_s_providers(self):
        topo = Topology.regular(l=10, n=5, m=2, r=3)
        for c in topo.collectors:
            assert len(topo.providers_of(c)) == topo.s

    def test_links_are_symmetric(self):
        topo = Topology.regular(l=8, n=4, m=2, r=2)
        for p, c in topo.edges():
            assert p in topo.providers_of(c)
            assert c in topo.collectors_of(p)

    def test_indivisible_degrees_rejected(self):
        with pytest.raises(TopologyError):
            Topology.regular(l=7, n=4, m=2, r=2)  # 14 not divisible by 4

    def test_r_exceeding_n_rejected(self):
        with pytest.raises(TopologyError):
            Topology.regular(l=4, n=2, m=2, r=3)

    def test_zero_sizes_rejected(self):
        with pytest.raises(TopologyError):
            Topology.regular(l=0, n=2, m=2, r=1)

    def test_full_overlap_case(self):
        # r == n: every provider feeds every collector (paper's default
        # "governor connects to all collectors" analogue at tier 1).
        topo = Topology.regular(l=4, n=4, m=2, r=4)
        for p in topo.providers:
            assert set(topo.collectors_of(p)) == set(topo.collectors)

    def test_unknown_lookups_raise(self):
        topo = Topology.regular(l=4, n=2, m=2, r=1)
        with pytest.raises(TopologyError):
            topo.collectors_of("p99")
        with pytest.raises(TopologyError):
            topo.providers_of("c99")


class TestRandomRegular:
    def test_shape_and_degrees(self):
        topo = Topology.random_regular(l=12, n=6, m=3, r=3, seed=4)
        assert topo.r == 3 and topo.s == 6
        topo.validate()

    def test_deterministic_in_seed(self):
        t1 = Topology.random_regular(l=12, n=6, m=3, r=3, seed=4)
        t2 = Topology.random_regular(l=12, n=6, m=3, r=3, seed=4)
        assert t1.provider_links == t2.provider_links

    def test_different_seeds_differ(self):
        t1 = Topology.random_regular(l=24, n=12, m=3, r=3, seed=4)
        t2 = Topology.random_regular(l=24, n=12, m=3, r=3, seed=5)
        assert t1.provider_links != t2.provider_links

    def test_no_duplicate_links(self):
        topo = Topology.random_regular(l=20, n=10, m=2, r=4, seed=1)
        for p in topo.providers:
            cs = topo.collectors_of(p)
            assert len(set(cs)) == len(cs)


class TestValidation:
    def test_asymmetric_links_rejected(self):
        topo = Topology.regular(l=4, n=2, m=2, r=1)
        broken = Topology.__new__(Topology)
        object.__setattr__(broken, "providers", topo.providers)
        object.__setattr__(broken, "collectors", topo.collectors)
        object.__setattr__(broken, "governors", topo.governors)
        object.__setattr__(broken, "provider_links", dict(topo.provider_links))
        # Point p0 at c1 without mirroring.
        links = dict(topo.provider_links)
        links["p0"] = ("c1",) if links["p0"] == ("c0",) else ("c0",)
        object.__setattr__(broken, "provider_links", links)
        object.__setattr__(broken, "collector_links", dict(topo.collector_links))
        with pytest.raises(TopologyError):
            broken.validate()


@given(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda r: st.tuples(
            st.just(r),
            st.integers(min_value=r, max_value=10),  # n >= r
            st.integers(min_value=1, max_value=8),   # multiplier for l
            st.integers(min_value=1, max_value=5),   # m
        )
    )
)
def test_property_regular_topology_valid(args):
    """Every constructible regular topology satisfies its invariants."""
    r, n, mult, m = args
    l = n * mult  # guarantees r*l divisible by n
    topo = Topology.regular(l=l, n=n, m=m, r=r)
    topo.validate()
    assert topo.r * topo.l == topo.s * topo.n


class TestDuplicateIds:
    def _rebuild(self, topo, **overrides):
        broken = Topology.__new__(Topology)
        for name in ("providers", "collectors", "governors",
                     "provider_links", "collector_links"):
            object.__setattr__(broken, name, overrides.get(name, getattr(topo, name)))
        return broken

    def test_duplicate_within_role_rejected(self):
        topo = Topology.regular(l=4, n=2, m=2, r=1)
        broken = self._rebuild(topo, governors=("g0", "g0"))
        with pytest.raises(TopologyError, match="duplicate governor ids"):
            broken.validate()

    def test_id_reuse_across_roles_rejected(self):
        topo = Topology.regular(l=4, n=2, m=2, r=1)
        # A governor reusing a collector id would merge two identities.
        broken = self._rebuild(topo, governors=("c0", "g1"))
        with pytest.raises(TopologyError, match="reused across roles"):
            broken.validate()


class TestSharded:
    def test_shapes_and_global_ids(self):
        sharded = Topology.sharded(l=8, n=4, m=4, r=2, shards=2)
        assert sharded.num_shards == 2
        for topo in sharded.shards:
            assert (topo.l, topo.n, topo.m, topo.r) == (4, 2, 2, 2)
        all_providers = sorted(p for t in sharded.shards for p in t.providers)
        assert all_providers == sorted(f"p{k}" for k in range(8))

    def test_partition_is_disjoint_and_total(self):
        sharded = Topology.sharded(l=12, n=6, m=3, r=2, shards=3)
        assert sorted(sharded.provider_shard) == sorted(f"p{k}" for k in range(12))
        assert sorted(sharded.collector_shard) == sorted(f"c{i}" for i in range(6))
        assert sorted(sharded.governor_shard) == sorted(f"g{j}" for j in range(3))
        for node, shard in sharded.collector_shard.items():
            assert node in sharded.shards[shard].collectors
            assert sharded.shard_of(node) == shard

    def test_each_shard_satisfies_degree_equation(self):
        sharded = Topology.sharded(l=24, n=8, m=8, r=2, shards=4)
        for topo in sharded.shards:
            topo.validate()
            assert topo.r * topo.l == topo.s * topo.n

    def test_masses_balance_reputation(self):
        # One heavy collector per pair: LPT must split heavies apart.
        masses = {"c0": 10.0, "c1": 10.0, "c2": 1.0, "c3": 1.0}
        sharded = Topology.sharded(l=8, n=4, m=2, r=2, shards=2, masses=masses)
        totals = [
            sum(masses[c] for c in topo.collectors) for topo in sharded.shards
        ]
        assert totals[0] == totals[1] == 11.0

    def test_seeded_build_is_deterministic(self):
        a = Topology.sharded(l=8, n=4, m=4, r=2, shards=2, seed=5)
        b = Topology.sharded(l=8, n=4, m=4, r=2, shards=2, seed=5)
        assert [t.collectors for t in a.shards] == [t.collectors for t in b.shards]
        assert [t.provider_links for t in a.shards] == [
            t.provider_links for t in b.shards
        ]

    def test_indivisible_counts_rejected(self):
        with pytest.raises(TopologyError, match="divide by shards"):
            Topology.sharded(l=9, n=4, m=4, r=2, shards=2)

    def test_zero_shards_rejected(self):
        with pytest.raises(TopologyError, match="shard count"):
            Topology.sharded(l=8, n=4, m=4, r=2, shards=0)

    def test_single_shard_matches_flat_shape(self):
        sharded = Topology.sharded(l=8, n=4, m=3, r=2, shards=1)
        flat = Topology.regular(l=8, n=4, m=3, r=2)
        (only,) = sharded.shards
        assert only.providers == flat.providers
        assert only.provider_links == flat.provider_links


class TestBalancedGroups:
    def test_uneven_split_rejected(self):
        from repro.network.topology import balanced_groups

        with pytest.raises(TopologyError):
            balanced_groups(["a", "b", "c"], {}, 2)

    def test_equal_capacity_enforced(self):
        from repro.network.topology import balanced_groups

        # Even with one dominant mass, bins stay equal-size.
        groups = balanced_groups(
            ["a", "b", "c", "d"], {"a": 100.0}, 2
        )
        assert sorted(len(g) for g in groups) == [2, 2]
