"""Crash-recovery integration: partition, heal, resync, rejoin.

The paper's model has no governor crashes, but a deployable system needs
the recovery path: a governor that missed blocks (1) syncs the chain
from the store, (2) advances its broadcast cursor past the gap so
buffered later messages flow again, and (3) keeps agreeing with its
peers afterwards.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.broadcast import AtomicBroadcast
from repro.network.simnet import Simulator, SyncNetwork


def build_group(members=("a", "b", "c")):
    sim = Simulator(seed=0)
    net = SyncNetwork(sim, min_delay=0.0, max_delay=0.05, seed=2)
    ab = AtomicBroadcast(net)
    ab.create_group("G", list(members))
    delivered = {m: [] for m in members}
    for m in members:
        net.register(m, lambda msg, m=m: ab.on_message(m, msg))
        ab.register_handler("G", m, lambda s, body, m=m: delivered[m].append(body))
    return sim, net, ab, delivered


class TestSkipTo:
    def test_gap_blocks_delivery_until_skip(self):
        sim, net, ab, delivered = build_group()
        net.partition("c")
        ab.broadcast("G", "a", "missed-0")
        ab.broadcast("G", "a", "missed-1")
        sim.run()
        net.heal("c")
        ab.broadcast("G", "a", "late-2")
        sim.run()
        # c buffered seqno 2 but cannot deliver across the gap.
        assert delivered["c"] == []
        assert delivered["a"] == ["missed-0", "missed-1", "late-2"]

        # Recovery: c learns the missed content out-of-band, then skips.
        ab.skip_to("G", "c", 2)
        assert delivered["c"] == ["late-2"]

    def test_skip_backwards_is_noop(self):
        sim, _net, ab, delivered = build_group()
        ab.broadcast("G", "a", "x")
        sim.run()
        ab.skip_to("G", "b", 0)
        assert delivered["b"] == ["x"]  # nothing replayed, nothing lost

    def test_skip_for_unknown_member_rejected(self):
        _sim, _net, ab, _delivered = build_group()
        with pytest.raises(SimulationError):
            ab.skip_to("G", "zz", 1)

    def test_current_seqno(self):
        sim, _net, ab, _delivered = build_group()
        assert ab.current_seqno("G") == 0
        ab.broadcast("G", "a", "x")
        assert ab.current_seqno("G") == 1
        with pytest.raises(SimulationError):
            ab.current_seqno("nope")

    def test_recovered_member_stays_in_total_order(self):
        sim, net, ab, delivered = build_group()
        net.partition("c")
        for i in range(5):
            ab.broadcast("G", "a", f"m{i}")
        sim.run()
        net.heal("c")
        ab.skip_to("G", "c", ab.current_seqno("G"))
        for i in range(5, 10):
            ab.broadcast("G", "b", f"m{i}")
        sim.run()
        assert delivered["c"] == [f"m{i}" for i in range(5, 10)]
        # And the healthy members saw the full sequence, in order.
        assert delivered["a"] == [f"m{i}" for i in range(10)]


class TestEndToEndRecovery:
    def test_governor_catchup_via_store_and_skip(self):
        """Full story: a replica misses blocks during a partition, syncs
        from the store, skips the broadcast gap, and agrees thereafter."""
        from repro.core.netengine import NetworkedProtocolEngine
        from repro.core.params import ProtocolParams
        from repro.ledger.sync import sync_replica, verify_sync
        from repro.network.topology import Topology
        from repro.workloads.generator import BernoulliWorkload

        topo = Topology.regular(l=8, n=4, m=3, r=2)
        engine = NetworkedProtocolEngine(
            topo, ProtocolParams(f=0.5, delta=0.2), seed=5
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.9, seed=6)
        engine.run_round(workload.take(8))

        lagging = topo.governors[2]
        engine.network.partition(lagging)
        engine.run_round(workload.take(8))
        engine.run_round(workload.take(8))
        engine.network.heal(lagging)

        replica = engine.governors[lagging].ledger
        assert replica.height == 1  # missed two blocks

        # Recovery: blocks from the store, then skip the broadcast gaps.
        sync_replica(replica, engine.store)
        assert verify_sync(replica, engine.store)
        for group in ("uploads", "blocks"):
            engine.broadcast.skip_to(
                group, lagging, engine.broadcast.current_seqno(group)
            )

        engine.run_round(workload.take(8))
        assert replica.height == engine.store.height
        from repro.ledger.chain import check_agreement

        check_agreement(engine.ledgers())


class TestMidRoundPartitionRecovery:
    def test_partition_mid_round_heal_sync_and_converge(self):
        """Satellite coverage for the skip_to path: the partition opens
        *inside* a round (while uploads are in flight), so the governor
        loses part of one round and all of the next; after healing it
        syncs blocks from the store, skips the broadcast gaps, delivers
        subsequent broadcasts, and converges to the same ledger."""
        from repro.core.netengine import NetworkedProtocolEngine
        from repro.core.params import ProtocolParams
        from repro.ledger.chain import check_agreement
        from repro.ledger.sync import sync_replica, verify_sync
        from repro.network.topology import Topology
        from repro.workloads.generator import BernoulliWorkload

        topo = Topology.regular(l=8, n=4, m=3, r=2)
        engine = NetworkedProtocolEngine(
            topo, ProtocolParams(f=0.5, delta=0.2), seed=11
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.9, seed=12)
        engine.run_round(workload.take(8))

        victim = topo.governors[1]
        # Cut the governor in the middle of the upload window of round 2.
        engine.sim.schedule_after(
            engine.params.delta / 2, lambda: engine.network.partition(victim)
        )
        engine.run_round(workload.take(8))
        engine.run_round(workload.take(8))
        engine.network.heal(victim)

        replica = engine.governors[victim].ledger
        assert replica.height < engine.store.height  # it missed block(s)

        sync_replica(replica, engine.store)
        assert verify_sync(replica, engine.store)
        for group in ("uploads", "blocks"):
            engine.broadcast.skip_to(
                group, victim, engine.broadcast.current_seqno(group)
            )

        # It must deliver subsequent broadcasts again: the next block
        # arrives over the wire, not via sync.
        before = engine.broadcast.delivered_count("blocks", victim)
        engine.run_round(workload.take(8))
        assert engine.broadcast.delivered_count("blocks", victim) == before + 1
        assert replica.height == engine.store.height
        check_agreement(engine.ledgers())
