"""Engine-level observability: coverage, consistency, bit-identity."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import ConcealBehavior, ForgeBehavior, MisreportBehavior
from repro.core.netengine import NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.faults import FaultPlan, LinkFaultSpec
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.workloads.generator import BernoulliWorkload

ROUNDS = 5
PER_ROUND = 8


def _topo():
    return Topology.regular(l=8, n=4, m=3, r=2)


def _behaviors():
    return {"c0": MisreportBehavior(0.4), "c1": ForgeBehavior(0.4), "c2": ConcealBehavior(0.3)}


def _run_networked(obs=None, faults=False):
    topo = _topo()
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=0.6, delta=0.2),
        behaviors=_behaviors(),
        seed=11,
        max_delay=0.05,
        resilience=True,
        obs=obs,
    )
    if faults:
        engine.install_faults(
            FaultPlan(seed=12).with_default_link(LinkFaultSpec(loss=0.08))
        )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=13)
    for _ in range(ROUNDS):
        engine.run_round(workload.take(PER_ROUND))
    engine.finalize()
    engine.drain_recovery()
    return engine


def _run_abstract(obs=None):
    topo = _topo()
    engine = ProtocolEngine(
        topo, ProtocolParams(f=0.6), behaviors=_behaviors(), seed=11, obs=obs
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=13)
    for _ in range(ROUNDS):
        engine.run_round(workload.take(PER_ROUND))
    engine.finalize()
    return engine


def _fingerprint(engine):
    """Everything a run determines: the chain plus every RNG's position."""
    blocks = tuple(
        b.hash() for b in engine.governors["g0"].ledger.blocks()
    )
    draws = tuple(
        float(engine.governors[g].rng.random()) for g in sorted(engine.governors)
    )
    return blocks, draws, float(engine._master.random())


class TestInstrumentation:
    @pytest.fixture(scope="class")
    def run(self):
        obs = MetricsRegistry()
        engine = _run_networked(obs=obs, faults=True)
        return engine, obs

    def test_every_subsystem_exports(self, run):
        _engine, obs = run
        prefixes = {name.split("_")[0] for name in obs.names()}
        assert {"net", "abcast", "rel", "gov", "rep", "engine"} <= prefixes

    def test_engine_counters_match_run(self, run):
        engine, obs = run
        assert obs.get("engine_rounds_total").value == ROUNDS
        assert obs.get("engine_tx_offered_total").value == ROUNDS * PER_ROUND
        assert obs.get("engine_block_size").samples()[0][1].count == ROUNDS

    def test_governor_counters_match_metrics(self, run):
        engine, obs = run
        screened = obs.get("gov_screenings_total")
        for gid, gov in engine.governors.items():
            total = screened.value_of(governor=gid, outcome="checked") + screened.value_of(
                governor=gid, outcome="unchecked"
            )
            assert total == gov.metrics.transactions_screened
            assert (
                obs.get("gov_mistakes_total").value_of(governor=gid)
                == gov.metrics.mistakes
            )

    def test_reliable_channel_counters_match_stats(self, run):
        engine, obs = run
        stats = engine.channel.stats
        assert obs.get("rel_retransmits_total").value == stats.retransmits
        assert obs.get("rel_gave_up_total").value == stats.gave_up

    def test_fault_drops_match_injector(self, run):
        engine, obs = run
        assert (
            obs.get("net_messages_dropped_total").value_of(reason="fault")
            == engine.injector.stats.dropped
        )

    def test_spans_cover_rounds(self, run):
        _engine, obs = run
        rounds = obs.spans_of("round")
        assert len(rounds) == ROUNDS
        assert [s.labels["round"] for s in rounds] == [str(i + 1) for i in range(ROUNDS)]
        assert all(s.duration > 0 for s in rounds)
        assert len(obs.spans_of("argue_phase")) == ROUNDS
        # finalize() drains too, so the explicit call makes at least two.
        assert len(obs.spans_of("drain_recovery")) >= 1

    def test_argue_spans_nest_inside_rounds(self, run):
        _engine, obs = run
        for outer, inner in zip(obs.spans_of("round"), obs.spans_of("argue_phase")):
            assert outer.start <= inner.start <= inner.end <= outer.end

    def test_abstract_engine_exports_counters(self):
        obs = MetricsRegistry()
        _run_abstract(obs=obs)
        assert obs.get("engine_rounds_total").value == ROUNDS
        assert {"gov_screenings_total", "rep_updates_total"} <= set(obs.names())
        assert obs.spans == []  # no clock, no spans


class TestBitIdentical:
    def test_abstract_engine_unchanged_by_obs(self):
        with_obs = _fingerprint(_run_abstract(obs=MetricsRegistry()))
        without = _fingerprint(_run_abstract(obs=None))
        disabled = _fingerprint(_run_abstract(obs=MetricsRegistry(enabled=False)))
        assert with_obs == without == disabled

    def test_networked_engine_unchanged_by_obs_under_faults(self):
        with_obs = _fingerprint(_run_networked(obs=MetricsRegistry(), faults=True))
        without = _fingerprint(_run_networked(obs=None, faults=True))
        assert with_obs == without

    def test_store_heights_agree(self):
        engine = _run_networked(obs=MetricsRegistry())
        assert engine.store.height == ROUNDS
