"""End-to-end statistical validation of the paper's theorems.

These are the test-suite versions of experiments E1-E4 (the benches
print the full tables; here we assert the claims hold at fixed sizes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
)
from repro.analysis.stats import empirical_tail, loglog_slope
from repro.baselines.base import PolicySimulation, ReputationPolicy
from repro.core.game import ReputationGame
from repro.core.params import ProtocolParams
from repro.core.regret import hoeffding_tail, theorem4_bound
from repro.exceptions import ConfigurationError


def adversarial_mix():
    return [
        HonestBehavior(),
        HonestBehavior(),
        MisreportBehavior(0.4),
        ConcealBehavior(0.4),
        AlwaysInvertBehavior(),
        AlwaysInvertBehavior(),
        MisreportBehavior(0.8),
        ConcealBehavior(0.8),
    ]


class TestTheorem1Scaling:
    """E1: L_T - S_min grows like O(sqrt(T)), and under the bound."""

    def test_regret_scaling_exponent_at_most_half(self):
        horizons = [250, 1000, 4000]
        regrets = []
        for horizon in horizons:
            per_seed = [
                ReputationGame(adversarial_mix(), horizon=horizon, seed=s).run().regret
                for s in range(5)
            ]
            regrets.append(float(np.mean(per_seed)))
        slope = loglog_slope(horizons, regrets)
        assert slope <= 0.65  # sqrt growth with sampling noise margin

    def test_every_run_within_theorem1_bound(self):
        for seed in range(8):
            result = ReputationGame(adversarial_mix(), horizon=1000, seed=seed).run()
            assert result.expected_loss <= result.theorem1_rhs()

    def test_bound_requires_well_behaved_collector(self):
        """Without any honest collector S_min itself grows linearly, so
        the *absolute* loss can be linear — the theorem is relative."""
        all_bad = [MisreportBehavior(0.9) for _ in range(8)]
        result = ReputationGame(all_bad, horizon=1000, seed=1).run()
        # Still within the bound *relative to* S_min (which is now large).
        assert result.expected_loss <= result.theorem1_rhs()
        assert result.s_min > 100  # no good collector to compete with


class TestLemma2:
    """E2: P[tx unchecked] <= f under the paper's screening rule."""

    @pytest.mark.parametrize("f", [0.2, 0.5, 0.8])
    def test_unchecked_rate_below_f(self, f):
        params = ProtocolParams(f=f)
        sim = PolicySimulation(adversarial_mix(), horizon=3000, p_valid=0.5, seed=4)
        stats = sim.run(
            ReputationPolicy(params=params, collector_ids=[f"c{i}" for i in range(8)])
        )
        assert stats.unchecked / stats.transactions <= f + 0.03


class TestTheorem3:
    """E3: concentration of the unchecked count."""

    def test_tail_below_hoeffding_bound(self):
        f, n, delta = 0.5, 400, 0.05
        params = ProtocolParams(f=f)
        counts = []
        for seed in range(40):
            sim = PolicySimulation(
                adversarial_mix(), horizon=n, p_valid=0.5, seed=seed
            )
            stats = sim.run(
                ReputationPolicy(
                    params=params, collector_ids=[f"c{i}" for i in range(8)]
                ),
                policy_seed=seed + 1,
            )
            counts.append(stats.unchecked)
        threshold = (f + delta) * n
        tail = empirical_tail(counts, threshold)
        # Hoeffding at these sizes is ~0.13; the empirical tail is far
        # smaller because the true unchecked probability is << f.
        assert tail <= hoeffding_tail(n, delta) + 0.05


class TestTheorem4:
    """E4: the combined end-to-end bound on the governor's loss."""

    def test_loss_within_theorem4_bound(self):
        f, n, delta, r = 0.5, 2000, 0.05, 8
        game = ReputationGame(adversarial_mix(), horizon=n, seed=3)
        result = game.run()
        # The game reveals every transaction, the worst case for the
        # bound (all N effectively unchecked).
        bound = theorem4_bound(result.s_min, n, f, delta, r) / 1.0
        # theorem4 uses (f + delta) * N as the effective horizon; the
        # game's T = N is larger, so compare against theorem1 at N too:
        assert result.expected_loss <= result.theorem1_rhs()
        assert bound > result.s_min  # sanity: bound exceeds the baseline


class TestGammaAblation:
    """Violating the paper's gamma inequality destroys the guarantee's
    mechanism (the potential argument), observable as slower demotion."""

    def test_naive_gamma_slower_to_demote(self):
        behaviors = lambda: [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6
        paper = ReputationGame(behaviors(), horizon=600, seed=5, beta=0.9).run()
        # gamma = beta (the naive "same penalty for wrong and missing").
        naive = ReputationGame(
            behaviors(), horizon=600, seed=5, beta=0.9, gamma_override=0.9
        ).run()
        liar_weight_paper = max(paper.final_weights[f"c{i}"] for i in range(2, 8))
        liar_weight_naive = max(naive.final_weights[f"c{i}"] for i in range(2, 8))
        assert liar_weight_paper < liar_weight_naive

    def test_invalid_gamma_override_still_runs(self):
        # The override is an experiment hook, deliberately unvalidated.
        result = ReputationGame(
            adversarial_mix(), horizon=50, seed=1, beta=0.9, gamma_override=0.99
        ).run()
        assert result.expected_loss >= 0
