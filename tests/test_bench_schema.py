"""The benchmark harness's machine-readable BENCH_*.json twins."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.analysis.reporting import format_table
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def helpers():
    path = pathlib.Path(__file__).parent.parent / "benchmarks" / "_helpers.py"
    spec = importlib.util.spec_from_file_location("_bench_helpers", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestParseTables:
    def test_single_table_types(self, helpers):
        table = format_table(
            ["f", "agreement", "rate", "note"],
            [(0.5, True, 1234.5, "ok run"), (0.9, False, 2, "-")],
        )
        (parsed,) = helpers.parse_tables(table)
        assert parsed["caption"] is None
        assert parsed["columns"] == ["f", "agreement", "rate", "note"]
        assert parsed["rows"][0] == {
            "f": 0.5,
            "agreement": True,
            "rate": 1234.5,
            "note": "ok run",
        }
        assert parsed["rows"][1]["agreement"] is False
        assert parsed["rows"][1]["rate"] == 2

    def test_captioned_multi_table(self, helpers):
        one = format_table(["a"], [(1,)])
        two = format_table(["b"], [(2,)])
        text = f"-- first --\n{one}\n\n-- second --\n{two}"
        parsed = helpers.parse_tables(text)
        assert [t["caption"] for t in parsed] == ["-- first --", "-- second --"]
        assert parsed[0]["rows"] == [{"a": 1}]
        assert parsed[1]["rows"] == [{"b": 2}]

    def test_cells_with_single_spaces_survive(self, helpers):
        table = format_table(
            ["scenario", "latency (s)"],
            [("governor crash-recovery", 1.1), ("sequencer failover", 0.4)],
        )
        (parsed,) = helpers.parse_tables(table)
        assert parsed["rows"][0]["scenario"] == "governor crash-recovery"
        assert parsed["rows"][1]["latency (s)"] == 0.4

    def test_scientific_and_grouped_numbers(self, helpers):
        table = format_table(["x"], [(123456.789,), (0.0000123,)])
        (parsed,) = helpers.parse_tables(table)
        assert parsed["rows"][0]["x"] == pytest.approx(123456.789, rel=1e-3)
        assert parsed["rows"][1]["x"] == pytest.approx(1.23e-5, rel=1e-2)


class TestEmit:
    def test_writes_txt_and_schema_versioned_json(self, helpers, tmp_path, monkeypatch):
        monkeypatch.setattr(helpers, "RESULTS_DIR", tmp_path)
        table = format_table(["f", "ok"], [(0.5, True)])
        reg = MetricsRegistry()
        reg.counter("hits_total", "hits").inc(3)
        helpers.emit(
            "T1_demo",
            "demo experiment",
            table,
            metrics={"all_ok": True},
            registry=reg,
        )
        assert (tmp_path / "T1_demo.txt").read_text().startswith("demo experiment\n")
        doc = json.loads((tmp_path / "BENCH_T1_demo.json").read_text())
        assert doc["schema"] == helpers.BENCH_SCHEMA == "repro.bench.v1"
        assert doc["name"] == "T1_demo"
        assert doc["tables"][0]["rows"] == [{"f": 0.5, "ok": True}]
        assert doc["metrics"] == {"all_ok": True}
        assert doc["observability"]["metrics"]["hits_total"]["samples"][0]["value"] == 3

    def test_optional_fields_omitted(self, helpers, tmp_path, monkeypatch):
        monkeypatch.setattr(helpers, "RESULTS_DIR", tmp_path)
        helpers.emit("T2_demo", "demo", format_table(["x"], [(1,)]))
        doc = json.loads((tmp_path / "BENCH_T2_demo.json").read_text())
        assert "metrics" not in doc and "observability" not in doc

    def test_emit_is_deterministic_outside_meta(self, helpers, tmp_path, monkeypatch):
        monkeypatch.setattr(helpers, "RESULTS_DIR", tmp_path)
        table = format_table(["x"], [(1,)])
        helpers.emit("T3_demo", "demo", table)
        first = json.loads((tmp_path / "BENCH_T3_demo.json").read_text())
        helpers.emit("T3_demo", "demo", table)
        second = json.loads((tmp_path / "BENCH_T3_demo.json").read_text())
        # meta carries wall-clock duration, which legitimately differs
        # between reruns; everything else must be identical.
        first.pop("meta")
        second.pop("meta")
        assert first == second

    def test_emit_stamps_runtime_meta(self, helpers, tmp_path, monkeypatch):
        monkeypatch.setattr(helpers, "RESULTS_DIR", tmp_path)
        helpers.emit("T4_demo", "demo", format_table(["x"], [(1,)]), duration_s=1.25)
        doc = json.loads((tmp_path / "BENCH_T4_demo.json").read_text())
        assert doc["meta"]["duration_s"] == 1.25
        assert doc["meta"]["python"].count(".") == 2
        assert doc["meta"]["numpy"]
        # Default duration: elapsed since the helpers module was loaded.
        helpers.emit("T5_demo", "demo", format_table(["x"], [(1,)]))
        doc = json.loads((tmp_path / "BENCH_T5_demo.json").read_text())
        assert doc["meta"]["duration_s"] >= 0.0


class TestShippedResults:
    def test_every_result_has_a_json_twin(self, helpers):
        results = helpers.RESULTS_DIR
        if not results.exists():
            pytest.skip("no generated results checked out")
        txts = sorted(p.stem for p in results.glob("*.txt"))
        twins = sorted(
            p.stem.removeprefix("BENCH_") for p in results.glob("BENCH_*.json")
        )
        assert txts == twins

    def test_shipped_json_is_schema_versioned(self, helpers):
        results = helpers.RESULTS_DIR
        docs = sorted(results.glob("BENCH_*.json"))
        if not docs:
            pytest.skip("no generated results checked out")
        for path in docs:
            doc = json.loads(path.read_text())
            assert doc["schema"] == helpers.BENCH_SCHEMA, path.name
            assert doc["tables"], path.name

    def test_e13_byzantine_twin_is_well_formed(self, helpers):
        """The E13 sweep's structured metrics back its headline claims:
        Theorem-1 regret held and the equivocator was quarantined fast
        at every Byzantine fraction."""
        path = helpers.RESULTS_DIR / "BENCH_E13_byzantine.json"
        if not path.exists():
            pytest.skip("E13 results not generated")
        doc = json.loads(path.read_text())
        assert doc["schema"] == helpers.BENCH_SCHEMA
        sweep = doc["metrics"]["byzantine_sweep"]
        assert [row["byzantine_collectors"] for row in sweep] == [1, 2, 3]
        for row in sweep:
            assert row["agreement"], row
            assert row["safety_violations"] == 0, row
            assert row["max_honest_regret"] <= row["rwm_bound"], row
            assert row["equivocator_quarantined"], row
            assert row["quarantine_latency_rounds"] <= 2, row
            assert row["ok"], row
        assert doc["metrics"]["all_ok"]
        # The audit layer's telemetry rode along in the snapshot.
        names = set(doc["observability"]["metrics"])
        assert "audit_violations_total" in names
        assert "byz_tampered_total" in names

    def test_e14_shards_twin_is_well_formed(self, helpers):
        """The E14 sweep's structured metrics back its headline claims:
        4 shards at least double the aggregate throughput of 1 shard at
        equal node totals, with cross-shard atomicity intact under the
        fault plan and bit-identical seeded repeats."""
        path = helpers.RESULTS_DIR / "BENCH_E14_shards.json"
        if not path.exists():
            pytest.skip("E14 results not generated")
        doc = json.loads(path.read_text())
        assert doc["schema"] == helpers.BENCH_SCHEMA
        sweep = doc["metrics"]["shard_sweep"]
        assert [row["shards"] for row in sweep] == [1, 2, 4]
        for row in sweep:
            assert row["audit_clean"], row
            assert row["atomicity_violations"] == 0, row
            assert row["receipts_pending"] == 0, row
        assert doc["metrics"]["speedup_s4_vs_s1"] >= 2.0
        assert doc["metrics"]["deterministic"]
        assert doc["metrics"]["all_ok"]
        # The shard coordinator's telemetry rode along in the snapshot.
        names = set(doc["observability"]["metrics"])
        assert "shard_rounds_total" in names
        assert "shard_cross_tx_in_total" in names
        assert "shard_receipt_relays_total" in names

    def test_e16_parallel_twin_is_well_formed(self, helpers):
        """The E16 sweep's structured metrics back its headline claims:
        the multi-process backend commits bit-identical ledgers to the
        serial one at every shard count, atomicity intact, and the
        >=2x wall-clock criterion is enforced whenever the host has the
        cores to make it physically meaningful."""
        path = helpers.RESULTS_DIR / "BENCH_E16_shards_parallel.json"
        if not path.exists():
            pytest.skip("E16 results not generated")
        doc = json.loads(path.read_text())
        assert doc["schema"] == helpers.BENCH_SCHEMA
        assert doc["metrics"]["cpu_count"] >= 1
        sweep = doc["metrics"]["wallclock_sweep"]
        assert [row["shards"] for row in sweep] == [1, 2, 4]
        for row in sweep:
            assert row["backend"] == "serial"
            assert row["audit_clean"], row
            assert row["atomicity_violations"] == 0, row
            if row["parallel"] is not None:
                par = row["parallel"]
                assert par["tips_match_serial"], par
                assert par["audit_clean"], par
                assert par["atomicity_violations"] == 0, par
                # Same seed, same protocol: identical sim-time results.
                assert par["committed"] == row["committed"], par
                assert par["sim_throughput"] == row["sim_throughput"], par
        assert doc["metrics"]["tips_identical"]
        if doc["metrics"]["speedup_enforced"]:
            assert doc["metrics"]["wall_speedup_top"] >= 2.0
        assert doc["metrics"]["speedup_ok"]
        assert doc["metrics"]["all_ok"]
        # The parallel harness telemetry rode along in the snapshot.
        names = set(doc["observability"]["metrics"])
        assert "par_ipc_msgs_total" in names
        assert "par_barrier_wait_seconds" in names
        assert "par_worker_round_seconds" in names

    def test_e15_recovery_twin_is_well_formed(self, helpers):
        """The E15 sweep's structured metrics back its headline claims:
        checkpoints bound restart replay to a fixed window regardless
        of chain length, and the seeded torn-tail crash was detected,
        truncated to a verified prefix, and peer-filled back to the
        original tip."""
        path = helpers.RESULTS_DIR / "BENCH_E15_recovery.json"
        if not path.exists():
            pytest.skip("E15 results not generated")
        doc = json.loads(path.read_text())
        assert doc["schema"] == helpers.BENCH_SCHEMA
        sweep = doc["metrics"]["recovery_sweep"]
        assert sweep, "empty recovery sweep"
        for row in sweep:
            assert row["ok"], row
            assert row["prefix_ok"], row
            if row["checkpoint_interval"]:
                # Compaction anchors recovery at a checkpoint base; the
                # replay window never spans the whole chain.
                assert row["replayed"] < row["blocks"], row
            else:
                assert row["base_serial"] == 0, row
                assert row["replayed"] == row["blocks"], row
        torn = doc["metrics"]["torn_tail"]
        assert torn["fault"] == "torn_record"
        assert torn["detected"] and not torn["clean"], torn
        assert "torn-tail" in torn["corruptions"], torn
        assert torn["converged"], torn
        assert doc["metrics"]["checkpoint_replay_bounded"]
        assert doc["metrics"]["all_ok"]
        # The storage telemetry rode along in the snapshot.
        names = set(doc["observability"]["metrics"])
        assert "storage_corruptions_detected_total" in names
        assert "storage_recovered_blocks_total" in names
