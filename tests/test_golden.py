"""Golden-value regression tests.

Every stochastic component is seeded, so whole runs are bit-for-bit
reproducible — which means we can pin exact outputs and catch *any*
unintended behavioural change (a reordered RNG draw, a changed hash
input, an off-by-one in an update rule) that the invariant-style tests
might tolerate.

If a change legitimately alters the protocol's draw sequence (e.g. a new
feature consuming randomness), these constants must be re-derived and
the change justified in the commit that updates them.
"""

from __future__ import annotations

import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
)
from repro.core import ProtocolEngine, ProtocolParams
from repro.core.game import ReputationGame
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import SigningKey, sign
from repro.crypto.vrf import vrf_evaluate
from repro.network import Topology
from repro.workloads import BernoulliWorkload

# -- protocol-run goldens ----------------------------------------------------

GOLDEN_BLOCK_HASHES = [
    "52916a6829d77e0cbdaece472c9b85c90a057d719ae33162bf5d6495d8c50e70",
    "4ab1f4ec28c5447c042ae79bcd700e721877ed81f06eed2f2256ade2746da97e",
    "1dde647af721f649614d07e6d4753e6209e8e2ebc5f3366c009b86f19db143e0",
]


def test_golden_protocol_block_hashes():
    """Three rounds of a fixed configuration produce pinned block hashes."""
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = ProtocolEngine(
        topo,
        ProtocolParams(f=0.5),
        behaviors={"c0": MisreportBehavior(0.4)},
        seed=1234,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=5678)
    hashes = [engine.run_round(workload.take(8)).block.hash().hex() for _ in range(3)]
    assert hashes == GOLDEN_BLOCK_HASHES


# -- reputation-game goldens ---------------------------------------------------

def test_golden_game_losses_and_weights():
    """A fixed game run reproduces its exact losses and final weights."""
    game = ReputationGame(
        [
            HonestBehavior(),
            MisreportBehavior(0.5),
            ConcealBehavior(0.5),
            AlwaysInvertBehavior(),
        ],
        horizon=200,
        seed=99,
        track_curves=False,
    )
    result = game.run()
    assert result.expected_loss == pytest.approx(3.4905536614907997, rel=1e-12)
    assert result.realized_loss == 2.0
    assert result.final_weights["c0"] == 1.0
    assert result.final_weights["c1"] == pytest.approx(3.861414422033345e-28, rel=1e-9)
    assert result.final_weights["c2"] == pytest.approx(3.8896904024495416e-21, rel=1e-9)
    assert result.final_weights["c3"] == pytest.approx(1.7711179113991065e-64, rel=1e-9)


# -- crypto goldens --------------------------------------------------------------

def test_golden_canonical_hash():
    """The canonical encoding is part of the wire/storage format: pin it."""
    digest = hash_value(("tx", {"a": 1, "b": [True, None, "x"]}, 3.5)).hex()
    assert digest == hash_value(("tx", {"b": [True, None, "x"], "a": 1}, 3.5)).hex()
    # This constant *is* the storage format; a change breaks old chains.
    assert digest == (
        "772cfff325c6e5e3e6a8a4fbee8b2994f631f306d26c2e6295bf19c447968357"
    )


def test_golden_signature_and_vrf_determinism():
    """Fixed key + fixed input -> fixed tag and VRF value, stable across
    runs and platforms (pure HMAC-SHA256)."""
    key = SigningKey(owner="gold", secret=b"\x42" * 32)
    tag1 = sign(key, ("msg", 7)).tag
    tag2 = sign(key, ("msg", 7)).tag
    assert tag1 == tag2
    out1 = vrf_evaluate(key, 3, 1, 2)
    out2 = vrf_evaluate(key, 3, 1, 2)
    assert out1.value == out2.value
    assert out1.as_int() == int.from_bytes(out1.value, "big")
