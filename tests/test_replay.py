"""Tests for workload recording and replay."""

from __future__ import annotations

import io

import pytest

from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload
from repro.workloads.replay import (
    RecordingWorkload,
    ReplayWorkload,
    dump_specs,
    load_specs,
)

PROVIDERS = [f"p{i}" for i in range(4)]


class TestRecording:
    def test_take_records_everything(self):
        rec = RecordingWorkload(BernoulliWorkload(PROVIDERS, seed=1))
        rec.take(5)
        rec.take(3)
        assert len(rec.recorded) == 8

    def test_recorded_matches_emitted(self):
        rec = RecordingWorkload(BernoulliWorkload(PROVIDERS, seed=1))
        emitted = rec.take(6)
        assert rec.recorded == emitted

    def test_stream_records(self):
        rec = RecordingWorkload(BernoulliWorkload(PROVIDERS, seed=1))
        stream = rec.stream()
        first_three = [next(stream) for _ in range(3)]
        assert rec.recorded == first_three


class TestReplay:
    def test_replay_in_order(self):
        original = BernoulliWorkload(PROVIDERS, seed=2).take(10)
        replay = ReplayWorkload(original)
        assert replay.take(4) == original[:4]
        assert replay.take(6) == original[4:]
        assert replay.remaining == 0

    def test_over_read_rejected(self):
        replay = ReplayWorkload(BernoulliWorkload(PROVIDERS, seed=2).take(3))
        replay.take(3)
        with pytest.raises(ConfigurationError):
            replay.take(1)

    def test_rewind(self):
        original = BernoulliWorkload(PROVIDERS, seed=2).take(4)
        replay = ReplayWorkload(original)
        replay.take(4)
        replay.rewind()
        assert replay.take(4) == original


class TestPersistence:
    def test_dump_load_roundtrip(self):
        original = BernoulliWorkload(PROVIDERS, seed=3).take(12)
        buffer = io.StringIO()
        assert dump_specs(original, buffer) == 12
        buffer.seek(0)
        loaded = load_specs(buffer)
        assert loaded == original

    def test_load_skips_blank_lines(self):
        specs = load_specs(
            ['{"provider": "p0", "payload": 1, "is_valid": true}', "", " "]
        )
        assert len(specs) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError):
            load_specs(["{nope"])
        with pytest.raises(ConfigurationError):
            load_specs(['{"provider": "p0"}'])


class TestEndToEndReplay:
    def test_replayed_run_reproduces_chain(self):
        """Record a run's workload; replaying it with the same engine
        seed reproduces the exact chain — the debugging contract."""
        topo = Topology.regular(l=4, n=4, m=3, r=2)

        rec = RecordingWorkload(BernoulliWorkload(topo.providers, seed=5))
        engine1 = ProtocolEngine(topo, ProtocolParams(f=0.5), seed=6)
        hashes1 = [engine1.run_round(rec.take(6)).block.hash() for _ in range(3)]

        buffer = io.StringIO()
        dump_specs(rec.recorded, buffer)
        buffer.seek(0)
        replay = ReplayWorkload(load_specs(buffer))
        engine2 = ProtocolEngine(topo, ProtocolParams(f=0.5), seed=6)
        hashes2 = [engine2.run_round(replay.take(6)).block.hash() for _ in range(3)]

        assert hashes1 == hashes2

    def test_replay_under_different_parameters(self):
        """The same traffic can be rerun under a different f — the
        counterfactual analysis the replay tooling enables."""
        topo = Topology.regular(l=4, n=4, m=3, r=2)
        rec = RecordingWorkload(BernoulliWorkload(topo.providers, seed=7))
        engine1 = ProtocolEngine(topo, ProtocolParams(f=0.2), seed=8)
        for _ in range(3):
            engine1.run_round(rec.take(6))
        engine1.finalize()

        replay = ReplayWorkload(rec.recorded)
        engine2 = ProtocolEngine(topo, ProtocolParams(f=0.9), seed=8)
        for _ in range(3):
            engine2.run_round(replay.take(6))
        engine2.finalize()

        low_f = sum(g.metrics.validations for g in engine1.governors.values())
        high_f = sum(g.metrics.validations for g in engine2.governors.values())
        assert high_f <= low_f  # same traffic, fewer checks at larger f
