"""Tests for the car-sharing and insurance application domains."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import MisreportBehavior
from repro.apps.carsharing import CarSharingMarket, GreedyDispatcher, RideRequest
from repro.apps.insurance import (
    CommissionBiasedAgent,
    HealthRecord,
    InsuranceAlliance,
)
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label


class TestRideRequest:
    def test_distance(self):
        req = RideRequest(
            rider="p0", pickup=(0.0, 0.0), dropoff=(3.0, 4.0), fare=9.5, funded=True
        )
        assert req.distance == pytest.approx(5.0)

    def test_payload_roundtrip(self):
        req = RideRequest(
            rider="p0", pickup=(1.0, 2.0), dropoff=(3.0, 4.0), fare=9.5, funded=False
        )
        payload = req.as_payload()
        assert payload["rider"] == "p0"
        assert payload["funded"] is False


class TestGreedyDispatcher:
    def test_nearest_willing_driver_wins(self):
        dispatcher = GreedyDispatcher(
            driver_positions={"d_near": (0.0, 0.0), "d_far": (9.0, 9.0)}
        )
        req = RideRequest("p0", (1.0, 0.0), (2.0, 2.0), 5.0, True)
        labels = {"d_near": Label.VALID, "d_far": Label.VALID}
        assignment = dispatcher.assign([(req, labels)])
        assert assignment[0] == "d_near"

    def test_unwilling_driver_skipped(self):
        dispatcher = GreedyDispatcher(
            driver_positions={"d_near": (0.0, 0.0), "d_far": (9.0, 9.0)}
        )
        req = RideRequest("p0", (1.0, 0.0), (2.0, 2.0), 5.0, True)
        labels = {"d_near": Label.INVALID, "d_far": Label.VALID}
        assert dispatcher.assign([(req, labels)])[0] == "d_far"

    def test_capacity_respected(self):
        dispatcher = GreedyDispatcher(driver_positions={"d": (0.0, 0.0)}, capacity=1)
        req1 = RideRequest("p0", (1.0, 0.0), (2.0, 2.0), 5.0, True)
        req2 = RideRequest("p1", (1.0, 1.0), (2.0, 2.0), 5.0, True)
        labels = {"d": Label.VALID}
        assignment = dispatcher.assign([(req1, labels), (req2, labels)])
        assert assignment[0] == "d"
        assert assignment[1] is None


class TestCarSharingMarket:
    def test_market_runs_and_assigns(self):
        market = CarSharingMarket(seed=1)
        for _ in range(3):
            market.run_round(12)
        report = market.report()
        assert report.requests_offered == 36
        assert report.requests_on_chain > 0
        assert 0.0 < report.assignment_rate <= 1.0

    def test_dishonest_drivers_earn_less(self):
        market = CarSharingMarket(
            dishonest_drivers={"c0": MisreportBehavior(0.7)}, seed=2
        )
        for _ in range(10):
            market.run_round(16)
        report = market.report()
        per_honest = report.honest_driver_revenue / 7
        assert report.dishonest_driver_revenue < per_honest

    def test_unknown_dishonest_driver_rejected(self):
        with pytest.raises(ConfigurationError):
            CarSharingMarket(dishonest_drivers={"cX": MisreportBehavior(0.5)})

    def test_invalid_unfunded_rate(self):
        with pytest.raises(ConfigurationError):
            CarSharingMarket(unfunded_rate=1.5)


class TestCommissionBiasedAgent:
    def test_whitewashes_invalid_only(self, rng):
        agent = CommissionBiasedAgent(whitewash_rate=1.0)
        assert agent.label_for(False, rng) is Label.VALID  # whitewash
        assert agent.label_for(True, rng) is Label.VALID   # honest on valid

    def test_partial_rate(self, rng):
        agent = CommissionBiasedAgent(whitewash_rate=0.5)
        flips = sum(agent.label_for(False, rng) is Label.VALID for _ in range(4000))
        assert flips / 4000 == pytest.approx(0.5, abs=0.04)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CommissionBiasedAgent(whitewash_rate=-0.1)


class TestInsuranceAlliance:
    def test_underwriting_runs(self):
        alliance = InsuranceAlliance(seed=4)
        for _ in range(4):
            alliance.run_round(10)
        report = alliance.report()
        assert report.applications == 40
        assert (
            report.honest_applications + report.fraudulent_applications
            == report.applications
        )

    def test_fraud_mostly_caught_with_honest_agents(self):
        alliance = InsuranceAlliance(seed=5, fraud_rate=0.3)
        for _ in range(10):
            alliance.run_round(10)
        report = alliance.report()
        assert report.fraud_leakage < 0.3

    def test_biased_agents_punished(self):
        alliance = InsuranceAlliance(
            biased_agents={
                "c0": CommissionBiasedAgent(0.9),
                "c1": CommissionBiasedAgent(0.9),
            },
            seed=6,
        )
        for _ in range(15):
            alliance.run_round(10)
        report = alliance.report()
        per_honest = report.honest_agent_revenue / 8
        per_biased = report.biased_agent_revenue / 2
        assert per_biased < per_honest

    def test_registry_is_ground_truth(self):
        alliance = InsuranceAlliance(seed=7)
        record = alliance.registry["p0"]
        assert isinstance(record, HealthRecord)
        assert 18 <= record.age < 80

    def test_unknown_biased_agent_rejected(self):
        with pytest.raises(ConfigurationError):
            InsuranceAlliance(biased_agents={"zz": CommissionBiasedAgent()})
