"""The sharding subsystem: assignment, coordination, receipts, epochs.

Covers the pure placement math (:mod:`repro.sharding.assignment`), the
:class:`~repro.sharding.ShardCoordinator` end-to-end contract (every
cross-shard transaction commits exactly once on both legs, audit
clean, seeded runs bit-identical), receipt exactly-once plumbing, and
the collector migration mechanics (release / median-bootstrap adopt).
"""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.ledger.properties import check_all_properties
from repro.network.topology import Topology
from repro.sharding import (
    Migration,
    ShardCoordinator,
    make_receipt,
    migration_moves,
    receipt_id_for,
    reshuffle_assignment,
    verify_receipt,
)
from repro.workloads.generator import BernoulliWorkload, TxSpec
from repro.workloads.xshard import CrossShardWorkload

PARAMS = ProtocolParams(f=0.5, delta=0.2, b_limit=16)


def build_coordinator(
    shards=2, l=8, n=4, m=4, r=2, seed=3, epoch_rounds=None, **kwargs
):
    sharded = Topology.sharded(l=l, n=n, m=m, r=r, shards=shards)
    coordinator = ShardCoordinator(
        sharded, PARAMS, seed=seed, epoch_rounds=epoch_rounds, **kwargs
    )
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner, sharded.provider_shard, p_cross=0.3, seed=seed + 2
    )
    return coordinator, workload


def run_deployment(coordinator, workload, rounds=4, batch=16):
    for _ in range(rounds):
        coordinator.submit(workload.take(batch))
        coordinator.run_super_round()
    return coordinator.finalize()


class TestAssignment:
    def test_reshuffle_is_deterministic(self):
        current = {f"c{i}": i % 2 for i in range(6)}
        masses = {f"c{i}": float(i + 1) for i in range(6)}
        a = reshuffle_assignment(current, masses, 2, seed=7, epoch=1)
        b = reshuffle_assignment(current, masses, 2, seed=7, epoch=1)
        assert a == b

    def test_different_epochs_differ(self):
        current = {f"c{i}": i % 2 for i in range(8)}
        masses = {f"c{i}": 1.0 for i in range(8)}
        results = {
            tuple(sorted(reshuffle_assignment(current, masses, 2, 7, e).items()))
            for e in range(6)
        }
        assert len(results) > 1  # uniform masses: permutation decides

    def test_reshuffle_balances_mass(self):
        current = {"c0": 0, "c1": 0, "c2": 1, "c3": 1}
        masses = {"c0": 9.0, "c1": 9.0, "c2": 1.0, "c3": 1.0}
        target = reshuffle_assignment(current, masses, 2, seed=0, epoch=1)
        per_shard = [
            sum(masses[c] for c, k in target.items() if k == s) for s in (0, 1)
        ]
        assert per_shard[0] == per_shard[1] == 10.0

    def test_moves_preserve_shard_sizes(self):
        current = {"c0": 0, "c1": 0, "c2": 1, "c3": 1}
        with pytest.raises(ConfigurationError, match="preserve"):
            migration_moves(current, {"c0": 1, "c1": 1, "c2": 1, "c3": 0})

    def test_moves_require_same_universe(self):
        with pytest.raises(ConfigurationError, match="different collector"):
            migration_moves({"c0": 0}, {"c1": 0})

    def test_moves_sorted_and_minimal(self):
        current = {"c0": 0, "c1": 0, "c2": 1, "c3": 1}
        target = {"c0": 1, "c1": 0, "c2": 0, "c3": 1}
        moves = migration_moves(current, target)
        assert moves == [
            Migration("c0", 0, 1),
            Migration("c2", 1, 0),
        ]


class TestReceipts:
    def test_receipt_id_is_content_derived(self):
        a = receipt_id_for(0, "tx-abc")
        b = receipt_id_for(0, "tx-abc")
        assert a == b
        assert receipt_id_for(1, "tx-abc") != a

    def test_receipt_signature_roundtrip(self):
        from repro.crypto.identity import IdentityManager, Role

        im = IdentityManager(seed=1)
        key = im.enroll("g0", Role.GOVERNOR)
        receipt = make_receipt(key, 0, 1, "tx-1", home_serial=3)
        assert verify_receipt(receipt, im)
        forged = make_receipt(key, 0, 1, "tx-2", home_serial=3)
        object.__setattr__(forged, "signature", receipt.signature)
        assert not verify_receipt(forged, im)

    def test_engine_buffer_dedup(self):
        coordinator, _ = build_coordinator()
        engine = coordinator.engines[1]
        home = coordinator.engines[0]
        key = home.governors[home.topology.governors[0]].key
        receipt = make_receipt(key, 0, 1, "tx-1", home_serial=1)
        gid = engine.topology.governors[0]
        engine._ingest_receipt(gid, receipt)
        engine._ingest_receipt(gid, receipt)  # duplicate delivery
        assert list(engine._receipt_buffers[gid]) == [receipt.receipt_id]


class TestCoordinator:
    def test_cross_shard_commits_exactly_once_on_both_legs(self):
        coordinator, workload = build_coordinator()
        report = run_deployment(coordinator, workload)
        assert report.clean
        assert coordinator.auditor.pending() == []
        # Every minted receipt landed exactly once on its remote shard.
        landed = []
        for engine in coordinator.engines:
            for serial in range(1, engine.store.height + 1):
                for record in engine.store.retrieve(serial).tx_list:
                    payload = record.tx.body.payload
                    if isinstance(payload, dict) and "xshard_receipt" in payload:
                        landed.append(payload["xshard_receipt"])
        assert len(landed) == len(set(landed))
        assert len(landed) > 0  # p_cross=0.3 must generate traffic

    def test_ledger_properties_hold_on_every_shard(self):
        coordinator, workload = build_coordinator()
        run_deployment(coordinator, workload)
        for engine in coordinator.engines:
            assert check_all_properties(engine.ledgers(), engine.transcript).all_hold

    def test_seeded_runs_are_bit_identical(self):
        outcomes = []
        for _ in range(2):
            coordinator, workload = build_coordinator(seed=9, epoch_rounds=2)
            report = run_deployment(coordinator, workload, rounds=5)
            outcomes.append(
                (
                    coordinator.tip_hashes(),
                    coordinator.committed_total,
                    round(coordinator.sim.now, 9),
                    coordinator.reshuffle_log,
                    report.clean,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_unknown_provider_rejected(self):
        coordinator, _ = build_coordinator()
        with pytest.raises(ConfigurationError, match="unknown provider"):
            coordinator.submit([TxSpec(provider="p99", payload={}, is_valid=True)])

    def test_backlog_buffers_saturating_load(self):
        coordinator, workload = build_coordinator()
        coordinator.submit(workload.take(100))
        assert coordinator.backlog_depth() == 100
        coordinator.run_super_round()
        # Each of 2 shards packs at most b_limit=16 per round.
        assert coordinator.backlog_depth() >= 100 - 2 * PARAMS.b_limit

    def test_flush_stashes_backlog_and_restores_it(self):
        # flush() must drain pending receipts with genuinely empty
        # rounds: queued workload is stashed for the duration and handed
        # back untouched afterwards, so a saturated deployment can still
        # converge its cross-shard legs.
        coordinator, workload = build_coordinator()
        coordinator.submit(workload.take(64))
        coordinator.run_super_round()
        depth_before = coordinator.backlog_depth()
        assert depth_before > 0
        committed_before = coordinator.committed_total
        executed = coordinator.flush()
        assert coordinator._pending == {} or executed == 6
        # Flush rounds committed no origin workload and the backlog
        # came back exactly as stashed.
        assert coordinator.committed_total == committed_before
        assert coordinator.backlog_depth() == depth_before

    def test_same_shard_counterparty_needs_no_receipt(self):
        coordinator, _ = build_coordinator()
        provider = coordinator.engines[0].topology.providers[0]
        peer = coordinator.engines[0].topology.providers[1]
        coordinator.submit(
            [
                TxSpec(
                    provider=provider,
                    payload={"xshard_to": peer, "body": {}},
                    is_valid=True,
                    counterparty=peer,
                )
            ]
        )
        result = coordinator.run_super_round()
        assert result.receipts_minted == 0
        assert coordinator._pending == {}


class TestMigration:
    def test_reshuffle_moves_collectors_between_engines(self):
        coordinator, workload = build_coordinator(seed=5)
        for _ in range(2):
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
        moves = coordinator.reshuffle()
        for move in moves:
            target = coordinator.engines[move.target]
            source = coordinator.engines[move.source]
            assert move.collector in target.collectors
            assert move.collector not in source.collectors
            assert coordinator.collector_shard[move.collector] == move.target
            # Adopted into every target governor's book (median bootstrap).
            for gov in target.governors.values():
                assert move.collector in gov.book.collectors()

    def test_migrated_deployment_stays_sound(self):
        coordinator, workload = build_coordinator(seed=5, epoch_rounds=2)
        report = run_deployment(coordinator, workload, rounds=6)
        assert any(moves for _, _, moves in coordinator.reshuffle_log)
        assert report.clean
        for engine in coordinator.engines:
            assert check_all_properties(engine.ledgers(), engine.transcript).all_hold

    def test_release_then_adopt_preserves_provider_slots(self):
        coordinator, _ = build_coordinator(seed=5)
        source = coordinator.engines[0]
        target = coordinator.engines[1]
        cid = source.topology.collectors[0]
        providers, behavior = source.release_collector(cid)
        assert cid not in source.collectors
        # The vacated slots move with the collector to the new shard.
        swap_providers = target.topology.providers[: len(providers)]
        target.adopt_collector(cid, swap_providers, behavior=behavior)
        assert target.collector_providers[cid] == tuple(swap_providers)

    def test_mass_conserving_masses_surface(self):
        coordinator, workload = build_coordinator(seed=5)
        coordinator.submit(workload.take(16))
        coordinator.run_super_round()
        masses = {}
        for engine in coordinator.engines:
            masses.update(engine.collector_masses())
        assert sorted(masses) == sorted(coordinator.collector_shard)
        assert all(v >= 0.0 for v in masses.values())
