"""Unit tests for the ack/retransmit reliable channel."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.faults import FaultPlan, FaultInjector, LinkFaultSpec
from repro.faults.plan import FaultAction
from repro.network.reliable import ReliableChannel, ReliableEnvelope
from repro.network.simnet import Simulator, SyncNetwork


def make_channel(max_retries=4, seed=0):
    sim = Simulator(seed=seed)
    net = SyncNetwork(sim, min_delay=0.01, max_delay=0.05, seed=seed + 1)
    channel = ReliableChannel(net, max_retries=max_retries)
    return sim, net, channel


class TestConstruction:
    def test_bad_timeout_rejected(self):
        sim = Simulator()
        net = SyncNetwork(sim)
        with pytest.raises(SimulationError):
            ReliableChannel(net, base_timeout=0.0)
        with pytest.raises(SimulationError):
            ReliableChannel(net, backoff=0.5)


class TestCleanDelivery:
    def test_payload_unwrapped_and_acked(self):
        sim, net, channel = make_channel()
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        channel.send("a", "b", {"hello": 1})
        sim.run()
        assert [m.payload for m in got] == [{"hello": 1}]
        assert channel.stats.delivered == 1
        assert channel.stats.acks_sent == 1
        assert channel.unacked == 0
        assert channel.stats.retransmits == 0

    def test_plain_traffic_passes_through(self):
        sim, net, channel = make_channel()
        got = []
        channel.register("b", got.append)
        net.send("a", "b", "raw")
        sim.run()
        assert [m.payload for m in got] == ["raw"]
        assert channel.stats.delivered == 0  # not channel traffic

    def test_handler_sees_original_timing_metadata(self):
        sim, net, channel = make_channel()
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        channel.send("a", "b", "x")
        sim.run()
        (message,) = got
        assert message.sender == "a"
        assert message.receiver == "b"
        assert not isinstance(message.payload, ReliableEnvelope)


class TestLossRecovery:
    def test_retransmit_until_delivered(self):
        sim, net, channel = make_channel()
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        # Drop the first two envelope transmissions, then let traffic flow.
        dropped = {"n": 0}

        def drop_first_two(sender, receiver, payload):
            if isinstance(payload, ReliableEnvelope) and dropped["n"] < 2:
                dropped["n"] += 1
                return FaultAction(drop=True)
            return None

        net.fault_filter = drop_first_two
        channel.send("a", "b", "persistent")
        sim.run()
        assert [m.payload for m in got] == ["persistent"]
        assert channel.stats.retransmits == 2
        assert channel.unacked == 0

    def test_ack_loss_causes_dup_which_is_suppressed(self):
        sim, net, channel = make_channel()
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        dropped = {"n": 0}

        def drop_first_ack(sender, receiver, payload):
            if getattr(payload, "kind", None) == "rel-ack" and dropped["n"] == 0:
                dropped["n"] += 1
                return FaultAction(drop=True)
            return None

        net.fault_filter = drop_first_ack
        channel.send("a", "b", "once")
        sim.run()
        # Envelope delivered, ack lost, sender retransmits, receiver
        # suppresses the duplicate and re-acks.
        assert [m.payload for m in got] == ["once"]
        assert channel.stats.duplicates_suppressed >= 1
        assert channel.unacked == 0

    def test_injected_duplicates_suppressed(self):
        sim, net, channel = make_channel()
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        plan = FaultPlan(seed=3).with_default_link(LinkFaultSpec(duplicate=1.0))
        FaultInjector(plan=plan).install(net)
        channel.send("a", "b", "x")
        sim.run()
        assert [m.payload for m in got] == ["x"]
        assert channel.stats.duplicates_suppressed >= 1

    def test_bounded_retries_give_up(self):
        sim, net, channel = make_channel(max_retries=3)
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        net.partition("b")
        channel.send("a", "b", "doomed")
        sim.run()
        assert got == []
        assert channel.stats.gave_up == 1
        assert channel.stats.retransmits == 3
        assert channel.unacked == 0  # sender state released

    def test_delivery_under_heavy_seeded_loss(self):
        sim, net, channel = make_channel(max_retries=6)
        got = []
        channel.register("a", lambda m: None)
        channel.register("b", got.append)
        FaultInjector(plan=FaultPlan(seed=11).with_loss(0.4)).install(net)
        for i in range(50):
            channel.send("a", "b", i)
        sim.run()
        # 40% loss with 6 retries: effectively certain delivery of all 50.
        assert sorted(m.payload for m in got) == list(range(50))
        assert channel.stats.retransmits > 0
