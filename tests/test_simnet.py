"""Unit tests for the simulator and synchronous network."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.simnet import Message, Simulator, SyncNetwork


def make_net(min_delay=0.01, max_delay=0.1, seed=1):
    sim = Simulator(seed=0)
    net = SyncNetwork(sim, min_delay=min_delay, max_delay=max_delay, seed=seed)
    return sim, net


class TestSimulator:
    def test_run_executes_everything(self):
        sim = Simulator()
        hits = []
        sim.schedule_after(0.5, lambda: hits.append(1))
        sim.schedule_after(0.2, lambda: hits.append(2))
        executed = sim.run()
        assert executed == 2
        assert hits == [2, 1]
        assert sim.now == 0.5

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-0.1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []
        def outer():
            hits.append("outer")
            sim.schedule_after(0.1, lambda: hits.append("inner"))
        sim.schedule_after(0.1, outer)
        sim.run()
        assert hits == ["outer", "inner"]

    def test_runaway_guard(self):
        sim = Simulator()
        def reschedule():
            sim.schedule_after(0.001, reschedule)
        sim.schedule_after(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_cancel(self):
        sim = Simulator()
        hits = []
        ev = sim.schedule_after(1.0, lambda: hits.append(1))
        sim.cancel(ev)
        sim.run()
        assert hits == []


class TestSyncNetwork:
    def test_delivery_within_bounds(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        net.register("a", lambda m: None)
        net.send("a", "b", "hello")
        sim.run()
        assert len(got) == 1
        msg = got[0]
        assert msg.payload == "hello"
        assert 0.01 <= msg.latency <= 0.1 + 1e-12

    def test_unregistered_receiver_rejected(self):
        _sim, net = make_net()
        with pytest.raises(SimulationError):
            net.send("a", "ghost", "x")

    def test_fifo_per_channel(self):
        sim, net = make_net(min_delay=0.0, max_delay=0.5)
        got = []
        net.register("b", lambda m: got.append(m.payload))
        net.register("a", lambda m: None)
        for i in range(50):
            net.send("a", "b", i)
        sim.run()
        assert got == list(range(50))

    def test_fixed_delay_when_bounds_equal(self):
        sim, net = make_net(min_delay=0.2, max_delay=0.2)
        got = []
        net.register("b", got.append)
        net.send("a", "b", "x")
        sim.run()
        assert got[0].latency == pytest.approx(0.2)

    def test_invalid_bounds_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            SyncNetwork(sim, min_delay=0.5, max_delay=0.1)

    def test_multicast_reaches_all(self):
        sim, net = make_net()
        got = {name: [] for name in "bcd"}
        for name in "bcd":
            net.register(name, got[name].append)
        net.multicast("a", ["b", "c", "d"], "ping")
        sim.run()
        assert all(len(v) == 1 for v in got.values())

    def test_stats_counting(self):
        sim, net = make_net()
        net.register("b", lambda m: None)
        net.send("a", "b", "x", size_hint=10)
        net.send("a", "b", "y", size_hint=5)
        assert net.stats.messages_sent == 2
        assert net.stats.bytes_sent == 15

    def test_stats_by_kind(self):
        sim, net = make_net()
        net.register("b", lambda m: None)

        class Payload:
            kind = "vrf-announce"

        net.send("a", "b", Payload())
        assert net.stats.messages_by_kind["vrf-announce"] == 1

    def test_partitioned_receiver_drops(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        net.partition("b")
        net.send("a", "b", "x")
        sim.run()
        assert got == []

    def test_partitioned_sender_drops(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        net.partition("a")
        net.send("a", "b", "x")
        sim.run()
        assert got == []

    def test_heal_restores_delivery(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        net.partition("b")
        net.send("a", "b", "lost")
        net.heal("b")
        net.send("a", "b", "found")
        sim.run()
        assert [m.payload for m in got] == ["found"]

    def test_deterministic_in_seed(self):
        def run(seed):
            sim, net = make_net(seed=seed)
            latencies = []
            net.register("b", lambda m: latencies.append(m.latency))
            for _ in range(10):
                net.send("a", "b", "x")
            sim.run()
            return latencies

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestLatencyStats:
    def test_percentiles_within_bounds(self):
        sim, net = make_net(min_delay=0.01, max_delay=0.1)
        net.register("b", lambda m: None)
        for _ in range(200):
            net.send("a", "b", "x")
        sim.run()
        p50 = net.stats.latency_percentile(50)
        p99 = net.stats.latency_percentile(99)
        assert 0.01 <= p50 <= p99 <= 0.1 + 1e-9

    def test_percentile_requires_messages(self):
        _sim, net = make_net()
        with pytest.raises(SimulationError):
            net.stats.latency_percentile(50)

    def test_percentile_range_checked(self):
        sim, net = make_net()
        net.register("b", lambda m: None)
        net.send("a", "b", "x")
        with pytest.raises(SimulationError):
            net.stats.latency_percentile(101)


class TestDropAccounting:
    """Satellite fix: drops must not inflate the sent counters."""

    def make(self):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim, min_delay=0.01, max_delay=0.05, seed=7)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        return sim, net

    def test_partition_drop_counted_separately(self):
        sim, net = self.make()
        net.partition("b")
        net.send("a", "b", "x", size_hint=10)
        assert net.stats.messages_dropped == 1
        assert net.stats.messages_sent == 0
        assert net.stats.bytes_sent == 0
        assert net.stats.latencies == []
        assert net.stats.messages_by_kind == {}

    def test_latency_percentiles_unaffected_by_drops(self):
        sim, net = self.make()
        net.send("a", "b", "ok")
        sim.run()  # deliver before the crash: in-flight messages die with it
        net.partition("b")
        for _ in range(5):
            net.send("a", "b", "lost")
        sim.run()
        assert net.stats.messages_sent == 1
        assert net.stats.messages_dropped == 5
        assert len(net.stats.latencies) == 1

    def test_mixed_sent_and_dropped(self):
        sim, net = self.make()
        net.send("a", "b", "one")
        net.partition("a")
        net.send("a", "b", "two")
        net.heal("a")
        net.send("a", "b", "three")
        sim.run()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_dropped == 1
