"""Tests for the Tendermint-style rotating-leader baseline."""

from __future__ import annotations

import pytest

from repro.consensus.tendermint import TendermintCluster, tm_quorum
from repro.crypto.identity import IdentityManager, Role
from repro.exceptions import ConsensusError


def make_cluster(n=4, seed=12):
    im = IdentityManager(seed=seed)
    ids = [f"v{i}" for i in range(n)]
    for vid in ids:
        im.enroll(vid, Role.GOVERNOR)
    return TendermintCluster(im=im, validator_ids=ids)


class TestQuorum:
    def test_values(self):
        assert tm_quorum(4) == 3
        assert tm_quorum(7) == 5
        assert tm_quorum(10) == 7

    def test_minimum_size(self):
        with pytest.raises(ConsensusError):
            tm_quorum(3)
        with pytest.raises(ConsensusError):
            make_cluster(n=3)


class TestRotation:
    def test_proposer_rotates_with_height(self):
        cluster = make_cluster(n=4)
        proposers = {cluster.proposer_for(h, 0) for h in range(4)}
        assert proposers == set(cluster.validator_ids)

    def test_proposer_rotates_within_height(self):
        cluster = make_cluster(n=4)
        assert cluster.proposer_for(1, 0) != cluster.proposer_for(1, 1)


class TestNormalCase:
    def test_decides_in_one_round(self):
        cluster = make_cluster()
        assert cluster.run({"block": 1}) == {"block": 1}
        assert cluster.rounds_used == 1

    def test_message_complexity_quadratic(self):
        counts = {}
        for n in (4, 8, 16):
            cluster = make_cluster(n=n)
            cluster.run("p")
            counts[n] = cluster.messages_exchanged
        # Expected: (n-1) + 2 * n * (n-1) per clean round.
        for n, count in counts.items():
            assert count == (n - 1) + 2 * n * (n - 1)

    def test_repeat_heights_rotate(self):
        cluster = make_cluster()
        for h in range(1, 5):
            fresh = make_cluster()
            fresh.run(f"b{h}", height=h)


class TestFaults:
    def test_silent_proposer_costs_one_round(self):
        cluster = make_cluster(n=7)
        cluster.mark_faulty(cluster.proposer_for(1, 0))
        assert cluster.run("payload") == "payload"
        assert cluster.rounds_used == 2

    def test_tolerates_f_faults(self):
        cluster = make_cluster(n=7)  # f = 2
        cluster.mark_faulty("v5")
        cluster.mark_faulty("v6")
        assert cluster.run("payload") == "payload"

    def test_too_many_faults_rejected(self):
        cluster = make_cluster(n=4)  # f = 1
        cluster.mark_faulty("v2")
        cluster.mark_faulty("v3")
        with pytest.raises(ConsensusError):
            cluster.run("payload")

    def test_unknown_validator_rejected(self):
        with pytest.raises(ConsensusError):
            make_cluster().mark_faulty("ghost")

    def test_consecutive_faulty_proposers(self):
        cluster = make_cluster(n=10)  # f = 3
        # Knock out the proposers of rounds 0..2 for height 1.
        for rnd in range(3):
            cluster.mark_faulty(cluster.proposer_for(1, rnd))
        assert cluster.run("payload") == "payload"
        assert cluster.rounds_used == 4
