"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.crypto.identity import IdentityManager, Role
from repro.network.topology import Topology


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, seeded RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def im() -> IdentityManager:
    """An Identity Manager with a small enrolled population."""
    manager = IdentityManager(seed=1)
    for k in range(3):
        manager.enroll(f"p{k}", Role.PROVIDER)
    for i in range(4):
        manager.enroll(f"c{i}", Role.COLLECTOR)
    for j in range(4):
        manager.enroll(f"g{j}", Role.GOVERNOR)
    for i in range(4):
        for k in range(3):
            manager.register_link(f"c{i}", f"p{k}")
    return manager


@pytest.fixture
def small_topology() -> Topology:
    """The default small hierarchy: 8 providers, 4 collectors, 4 governors."""
    return Topology.regular(l=8, n=4, m=4, r=2)


@pytest.fixture
def params() -> ProtocolParams:
    """Default protocol parameters."""
    return ProtocolParams(f=0.5, beta=0.9)
