"""Unit tests for the canonical hashing layer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    canonical_encode,
    hash_many,
    hash_value,
    hexdigest,
    sha256,
)


class TestSha256:
    def test_digest_size(self):
        assert len(sha256(b"abc")) == DIGEST_SIZE

    def test_known_vector(self):
        # FIPS 180-2 test vector for "abc".
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )


class TestCanonicalEncoding:
    def test_deterministic(self):
        value = {"a": [1, 2, ("x", b"y")], "b": None}
        assert canonical_encode(value) == canonical_encode(value)

    def test_type_separation_int_vs_str(self):
        assert hash_value(1) != hash_value("1")

    def test_type_separation_bool_vs_int(self):
        assert hash_value(True) != hash_value(1)
        assert hash_value(False) != hash_value(0)

    def test_none_is_distinct(self):
        assert hash_value(None) != hash_value(0)
        assert hash_value(None) != hash_value("")

    def test_sequence_boundaries(self):
        # ("ab",) must differ from ("a", "b"): length prefixes matter.
        assert hash_value(("ab",)) != hash_value(("a", "b"))

    def test_nested_vs_flat(self):
        assert hash_value((1, (2, 3))) != hash_value((1, 2, 3))

    def test_dict_order_independent(self):
        assert hash_value({"x": 1, "y": 2}) == hash_value({"y": 2, "x": 1})

    def test_dict_vs_tuple_of_pairs(self):
        assert hash_value({"x": 1}) != hash_value((("x", 1),))

    def test_list_and_tuple_equivalent(self):
        # Lists and tuples intentionally share an encoding (both are
        # "sequences" at the protocol level).
        assert hash_value([1, 2]) == hash_value((1, 2))

    def test_float_int_distinct(self):
        assert hash_value(1.0) != hash_value(1)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            hash_value(object())

    def test_object_with_canonical_bytes(self):
        class Thing:
            def canonical_bytes(self):
                return b"thing-bytes"

        assert hash_value(Thing()) == hash_value(b"thing-bytes")


class TestHashHelpers:
    def test_hash_many_matches_tuple(self):
        assert hash_many([1, 2, 3]) == hash_value((1, 2, 3))

    def test_hexdigest_is_hex_of_hash(self):
        assert hexdigest("x") == hash_value("x").hex()

    def test_empty_containers_distinct(self):
        assert hash_value(()) != hash_value({})
        assert hash_value(()) != hash_value(b"")


@given(st.recursive(
    st.none() | st.booleans() | st.integers() | st.text() | st.binary(),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=10,
))
def test_property_encoding_deterministic(value):
    """Canonical encoding is a pure function of the value."""
    assert canonical_encode(value) == canonical_encode(value)


@given(st.lists(st.integers(), max_size=6), st.lists(st.integers(), max_size=6))
def test_property_distinct_int_lists_distinct_hashes(a, b):
    """Injectivity on integer sequences (collision would break blocks)."""
    if a != b:
        assert hash_value(a) != hash_value(b)
    else:
        assert hash_value(a) == hash_value(b)


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_property_bytes_injective(a, b):
    """Injectivity on raw byte strings."""
    assert (hash_value(a) == hash_value(b)) == (a == b)
