"""Integration tests for the packet-level networked protocol engine."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import AlwaysInvertBehavior, ForgeBehavior, MisreportBehavior
from repro.core.netengine import NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.ledger.chain import check_agreement
from repro.ledger.properties import check_all_properties
from repro.ledger.transaction import CheckStatus, Label
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def make_engine(f=0.5, behaviors=None, seed=0, delta=0.2, max_delay=0.05):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    params = ProtocolParams(f=f, delta=delta)
    engine = NetworkedProtocolEngine(
        topo, params, behaviors=behaviors, seed=seed, max_delay=max_delay
    )
    return engine, topo


class TestConstruction:
    def test_delta_must_cover_spread(self):
        topo = Topology.regular(l=8, n=4, m=3, r=2)
        with pytest.raises(ConfigurationError):
            NetworkedProtocolEngine(
                topo, ProtocolParams(delta=0.01), max_delay=0.05
            )

    def test_unknown_behavior_rejected(self):
        topo = Topology.regular(l=8, n=4, m=3, r=2)
        with pytest.raises(ConfigurationError):
            NetworkedProtocolEngine(
                topo, ProtocolParams(delta=0.2),
                behaviors={"zz": MisreportBehavior(0.1)},
            )


class TestRounds:
    def test_blocks_flow_to_all_governors(self):
        engine, topo = make_engine()
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=1)
        for _ in range(4):
            engine.run_round(workload.take(8))
        assert engine.store.height == 4
        for gov in engine.governors.values():
            assert gov.ledger.height == 4
        check_agreement(engine.ledgers())

    def test_every_offered_valid_tx_lands(self):
        engine, topo = make_engine(f=0.3)
        workload = BernoulliWorkload(topo.providers, p_valid=1.0, seed=2)
        result = engine.run_round(workload.take(8))
        # All-honest collectors + all-valid txs: all 8 in the block.
        assert len(result.block) == 8
        assert all(rec.label is Label.VALID for rec in result.block.tx_list)

    def test_five_properties_hold(self):
        behaviors = {"c0": MisreportBehavior(0.5), "c1": ForgeBehavior(0.3)}
        engine, topo = make_engine(behaviors=behaviors, seed=4)
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=5)
        for _ in range(8):
            engine.run_round(workload.take(8))
        engine.run_round([])  # flush argues
        engine.finalize()
        report = check_all_properties(engine.ledgers(), engine.transcript)
        assert report.all_hold, report.violations

    def test_deterministic(self):
        def run(seed):
            engine, topo = make_engine(seed=seed)
            workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=9)
            hashes = []
            for _ in range(3):
                hashes.append(engine.run_round(workload.take(8)).block.hash())
            return hashes

        assert run(3) == run(3)

    def test_argue_roundtrip_over_network(self):
        behaviors = {f"c{i}": AlwaysInvertBehavior() for i in range(2)}
        engine, topo = make_engine(f=0.9, behaviors=behaviors, seed=6)
        workload = BernoulliWorkload(topo.providers, p_valid=1.0, seed=7)
        total_argues = 0
        reevaluated = []
        for _ in range(12):
            result = engine.run_round(workload.take(8))
            total_argues += result.argues_sent
            reevaluated.extend(
                rec for rec in result.block.tx_list
                if rec.status is CheckStatus.REEVALUATED
            )
        assert total_argues > 0
        assert reevaluated
        assert all(rec.label is Label.VALID for rec in reevaluated)

    def test_forgeries_caught_over_network(self):
        engine, topo = make_engine(behaviors={"c0": ForgeBehavior(1.0)}, seed=8)
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=9)
        for _ in range(3):
            engine.run_round(workload.take(8))
        for gov in engine.governors.values():
            assert gov.metrics.forgeries_caught == 3
            assert gov.book.vector("c0").forge == -3


class TestCrossEngineConsistency:
    def test_packet_and_analytic_engines_agree_on_outcomes(self):
        """Same topology/workload/behaviours: both engines catch the same
        misreporter and record comparable unchecked rates."""
        topo = Topology.regular(l=8, n=4, m=3, r=2)
        behaviors = {"c0": MisreportBehavior(0.6)}
        params = ProtocolParams(f=0.6, delta=0.2)

        net = NetworkedProtocolEngine(topo, params, behaviors=dict(behaviors), seed=11)
        wl1 = BernoulliWorkload(topo.providers, p_valid=0.7, seed=12)
        for _ in range(15):
            net.run_round(wl1.take(8))
        net.finalize()

        direct = ProtocolEngine(topo, params, behaviors=dict(behaviors), seed=11)
        wl2 = BernoulliWorkload(topo.providers, p_valid=0.7, seed=12)
        for _ in range(15):
            direct.run_round(wl2.take(8))
        direct.finalize()

        for engine in (net, direct):
            gov = engine.governors["g0"]
            honest_w = gov.book.weight("c1", topo.providers_of("c1")[0])
            liar_providers = topo.providers_of("c0")
            liar_w = min(gov.book.weight("c0", p) for p in liar_providers)
            # The misreporter's worst weight is below the honest baseline
            # in both engines (they see different RNG streams, so exact
            # values differ; the qualitative outcome must not).
            assert liar_w <= honest_w

    def test_real_message_counts_scale_with_m(self):
        def messages(m):
            topo = Topology.regular(l=8, n=4, m=m, r=2)
            engine = NetworkedProtocolEngine(
                topo, ProtocolParams(f=0.5, delta=0.2), seed=13
            )
            wl = BernoulliWorkload(topo.providers, p_valid=0.8, seed=14)
            engine.run_round(wl.take(8))
            return engine.network.stats.messages_sent

        m3, m6 = messages(3), messages(6)
        assert m6 > m3
        # Upload fan-out doubles with m; total grows but is sub-quadratic
        # for the ordinary-block path.
        assert m6 < 4 * m3
