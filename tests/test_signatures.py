"""Unit tests for the HMAC signature substrate."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.signatures import Signature, SigningKey, sign, verify_with_key
from repro.exceptions import SignatureError


@pytest.fixture
def key() -> SigningKey:
    return SigningKey(owner="node-1", secret=b"\x01" * 32)


class TestSigningKey:
    def test_requires_owner(self):
        with pytest.raises(SignatureError):
            SigningKey(owner="", secret=b"\x01" * 32)

    def test_requires_long_secret(self):
        with pytest.raises(SignatureError):
            SigningKey(owner="n", secret=b"short")

    def test_fingerprint_stable_and_nonsecret(self, key):
        fp = key.fingerprint()
        assert fp == key.fingerprint()
        assert key.secret.hex() not in fp


class TestSignVerify:
    def test_roundtrip_bytes(self, key):
        sig = sign(key, b"hello")
        assert verify_with_key(key, b"hello", sig)

    def test_roundtrip_structured(self, key):
        message = ("tx", 42, {"k": "v"})
        sig = sign(key, message)
        assert verify_with_key(key, message, sig)

    def test_rejects_tampered_message(self, key):
        sig = sign(key, b"hello")
        assert not verify_with_key(key, b"hellp", sig)

    def test_rejects_tampered_tag(self, key):
        sig = sign(key, b"hello")
        bad = Signature(signer=sig.signer, tag=bytes(32))
        assert not verify_with_key(key, b"hello", bad)

    def test_rejects_wrong_key(self, key):
        other = SigningKey(owner="node-1", secret=b"\x02" * 32)
        sig = sign(other, b"hello")
        assert not verify_with_key(key, b"hello", sig)

    def test_rejects_claimed_other_signer(self, key):
        # An adversary re-labels a signature with someone else's name.
        sig = sign(key, b"hello")
        forged = Signature(signer="victim", tag=sig.tag)
        victim_key = SigningKey(owner="victim", secret=b"\x03" * 32)
        assert not verify_with_key(victim_key, b"hello", forged)

    def test_signer_mismatch_with_key_owner(self, key):
        sig = sign(key, b"m")
        other_key = SigningKey(owner="other", secret=key.secret)
        assert not verify_with_key(other_key, b"m", sig)

    def test_signature_tag_length_enforced(self):
        with pytest.raises(SignatureError):
            Signature(signer="x", tag=b"too-short")

    def test_hex_is_tag_hex(self, key):
        sig = sign(key, b"zzz")
        assert sig.hex() == sig.tag.hex()

    def test_deterministic(self, key):
        assert sign(key, b"m").tag == sign(key, b"m").tag


@given(st.binary(min_size=0, max_size=128))
def test_property_sign_verify_roundtrip(message):
    """Every signed message verifies under the signing key."""
    key = SigningKey(owner="p", secret=b"\x07" * 32)
    assert verify_with_key(key, message, sign(key, message))


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_property_verification_separates_messages(a, b):
    """A signature over a never verifies over a different b."""
    key = SigningKey(owner="p", secret=b"\x07" * 32)
    sig = sign(key, a)
    assert verify_with_key(key, b, sig) == (a == b)
