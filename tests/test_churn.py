"""Tests for collector membership churn in the reputation policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.behaviors import AlwaysInvertBehavior, HonestBehavior
from repro.baselines.base import PolicySimulation, ReputationPolicy
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label


def make_policy(ids=("c0", "c1", "c2"), f=0.7):
    return ReputationPolicy(
        params=ProtocolParams(f=f), collector_ids=list(ids)
    )


class TestAddCollector:
    def test_median_bootstrap(self):
        policy = make_policy()
        policy.weights.update({"c0": 1.0, "c1": 0.5, "c2": 0.01})
        policy.add_collector("c9", bootstrap="median")
        assert policy.weights["c9"] == pytest.approx(0.5)
        assert "c9" in policy.collector_ids

    def test_initial_bootstrap(self):
        policy = make_policy()
        policy.weights.update({"c0": 1e-9, "c1": 1e-9, "c2": 1e-9})
        policy.add_collector("c9", bootstrap="initial")
        assert policy.weights["c9"] == policy.params.initial_reputation

    def test_min_bootstrap(self):
        policy = make_policy()
        policy.weights.update({"c0": 1.0, "c1": 0.5, "c2": 0.02})
        policy.add_collector("c9", bootstrap="min")
        assert policy.weights["c9"] == pytest.approx(0.02)

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy().add_collector("c0")

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy().add_collector("c9", bootstrap="vibes")


class TestRetireCollector:
    def test_retire_removes_from_selection(self):
        policy = make_policy()
        policy.retire_collector("c1")
        assert "c1" not in policy.collector_ids
        with pytest.raises(ConfigurationError):
            policy.retire_collector("c1")

    def test_labels_from_retired_collectors_ignored(self, rng):
        policy = make_policy()
        policy.retire_collector("c0")
        decision = policy.screen({"c0": Label.INVALID, "c1": Label.VALID}, rng)
        # c0's label cannot be drawn; only c1 remains.
        assert decision.recorded_label is Label.VALID

    def test_all_reporters_retired_falls_back_to_check(self, rng):
        policy = make_policy()
        for cid in ("c0", "c1", "c2"):
            policy.retire_collector(cid)
        decision = policy.screen({"c0": Label.INVALID}, rng)
        assert decision.checked

    def test_on_truth_tolerates_retired_labels(self):
        policy = make_policy()
        policy.retire_collector("c2")
        # A reveal referencing the retired collector must not crash.
        policy.on_truth(
            {"c0": Label.VALID, "c2": Label.INVALID}, Label.VALID, was_checked=False
        )
        assert policy.weights["c0"] == 1.0


class TestChurnMidStream:
    def test_newcomer_integrates_into_running_policy(self):
        """Run against inverters, then admit an honest newcomer: the
        policy keeps working and the newcomer's median weight beats the
        demoted inverters, so selection shifts toward it."""
        policy = ReputationPolicy(
            params=ProtocolParams(f=0.7),
            collector_ids=[f"c{i}" for i in range(4)],
        )
        behaviors = [HonestBehavior()] + [AlwaysInvertBehavior()] * 3
        sim = PolicySimulation(behaviors, horizon=600, seed=9)
        sim.run(policy, policy_seed=10)
        inverter_weight = max(policy.weights[f"c{i}"] for i in (1, 2, 3))
        policy.add_collector("fresh", bootstrap="median")
        assert policy.weights["fresh"] >= inverter_weight
        # The policy still screens correctly with the extended roster.
        rng = np.random.default_rng(11)
        decision = policy.screen(
            {"c0": Label.VALID, "fresh": Label.VALID}, rng
        )
        assert decision.checked
