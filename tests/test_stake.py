"""Unit tests for the stake ledger and transfers."""

from __future__ import annotations

import pytest

from repro.consensus.stake import StakeLedger, StakeTransfer
from repro.crypto.signatures import SigningKey, sign
from repro.exceptions import StakeError

KEY = SigningKey(owner="g0", secret=b"\x11" * 32)


def transfer(sender="g0", receiver="g1", amount=2, nonce=0):
    message = ("stake-transfer", sender, receiver, amount, nonce)
    return StakeTransfer(
        sender=sender, receiver=receiver, amount=amount, nonce=nonce,
        signature=sign(KEY, message),
    )


class TestStakeLedger:
    def test_from_balances(self):
        ledger = StakeLedger.from_balances({"g0": 3, "g1": 1})
        assert ledger.balance("g0") == 3
        assert ledger.total == 4

    def test_negative_initial_rejected(self):
        with pytest.raises(StakeError):
            StakeLedger.from_balances({"g0": -1})

    def test_unknown_balance_zero(self):
        assert StakeLedger.from_balances({"g0": 1}).balance("gX") == 0

    def test_governors_with_positive_stake(self):
        ledger = StakeLedger.from_balances({"g0": 2, "g1": 0})
        assert list(ledger.governors()) == ["g0"]

    def test_apply_moves_stake(self):
        ledger = StakeLedger.from_balances({"g0": 3, "g1": 1})
        ledger.apply(transfer(amount=2))
        assert ledger.balance("g0") == 1
        assert ledger.balance("g1") == 3
        assert ledger.total == 4

    def test_apply_to_unseen_receiver(self):
        ledger = StakeLedger.from_balances({"g0": 3})
        ledger.apply(transfer(receiver="g9", amount=1))
        assert ledger.balance("g9") == 1

    def test_overdraft_rejected(self):
        ledger = StakeLedger.from_balances({"g0": 1})
        with pytest.raises(StakeError):
            ledger.apply(transfer(amount=2))

    def test_applied_returns_copy(self):
        ledger = StakeLedger.from_balances({"g0": 3, "g1": 0})
        derived = ledger.applied([transfer(amount=1)])
        assert ledger.balance("g0") == 3  # original untouched
        assert derived.balance("g0") == 2

    def test_snapshot_and_state_hash(self):
        a = StakeLedger.from_balances({"g0": 2, "g1": 1})
        b = StakeLedger.from_balances({"g1": 1, "g0": 2})
        assert a.snapshot() == b.snapshot()
        assert a.state_hash() == b.state_hash()
        assert a == b

    def test_state_hash_changes_on_transfer(self):
        ledger = StakeLedger.from_balances({"g0": 3, "g1": 1})
        before = ledger.state_hash()
        ledger.apply(transfer(amount=1))
        assert ledger.state_hash() != before


class TestStakeTransfer:
    def test_positive_amount_required(self):
        with pytest.raises(StakeError):
            transfer(amount=0)
        with pytest.raises(StakeError):
            transfer(amount=-3)

    def test_self_transfer_rejected(self):
        with pytest.raises(StakeError):
            transfer(receiver="g0")

    def test_canonical_bytes_depend_on_nonce(self):
        assert transfer(nonce=0).canonical_bytes() != transfer(nonce=1).canonical_bytes()
