"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import MIXES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.governors == 4
        assert args.f == 0.5

    def test_regret_mix_choices(self):
        args = build_parser().parse_args(["regret", "--mix", "hostile"])
        assert args.mix == "hostile"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regret", "--mix", "nonsense"])

    def test_all_mixes_buildable(self):
        for factory in MIXES.values():
            behaviors = factory()
            assert len(behaviors) == 8


class TestCommands:
    def test_run_small(self, capsys):
        code = main([
            "run", "--providers", "8", "--collectors", "4", "--governors", "3",
            "--r", "2", "--rounds", "3", "--batch", "8", "--misreporters", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "properties hold: True" in out
        assert "chain height: 4" in out  # 3 rounds + the argue-flush round

    def test_regret_small(self, capsys):
        code = main(["regret", "--horizon", "200", "--mix", "mild", "--seeds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Thm-1 RHS" in out
        assert out.count("yes") >= 2

    def test_sweep_f_small(self, capsys):
        code = main(["sweep-f", "--rounds", "2", "--batch", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validations/tx" in out

    def test_baselines_small(self, capsys):
        code = main(["baselines", "--mix", "hostile", "--horizon", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reputation (paper)" in out
        assert "majority" in out


class TestScenarioCommand:
    def test_scenario_smoke(self, capsys):
        code = main(["scenario", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "properties hold: True" in out

    def test_scenario_rounds_override(self, capsys):
        code = main(["scenario", "paper-default", "--rounds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 rounds" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "does-not-exist"])


class TestDurableCommand:
    def test_durable_run_then_recover(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        code = main([
            "durable", "--preset", "durable-smoke", "--seed", "3",
            "--dir", str(ledger), "--rounds", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "durable scenario: durable-smoke" in out
        assert "auditor clean: True" in out
        assert out.count("round ") >= 2

        code = main(["recover", "--dir", str(ledger)])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovery:" in out
        assert "tip:" in out

    def test_durable_resume_appends(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        assert main([
            "durable", "--preset", "durable-smoke", "--seed", "3",
            "--dir", str(ledger), "--rounds", "2",
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "durable", "--preset", "durable-smoke", "--seed", "3",
            "--dir", str(ledger), "--rounds", "1",
        ]) == 0
        second = capsys.readouterr().out

        def height(text):
            return int(text.rsplit("final height ", 1)[1].split()[0])

        assert height(second) > height(first)

    def test_recover_empty_dir_is_clean(self, tmp_path, capsys):
        code = main(["recover", "--dir", str(tmp_path / "nothing")])
        out = capsys.readouterr().out
        assert code == 0
        assert "(empty)" in out

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["durable", "--preset", "nope", "--dir", "x"])


class TestStreamCommand:
    def test_stream_smoke(self, capsys):
        code = main(["stream", "--preset", "stream-smoke", "--rounds", "4",
                     "--universe", "2000", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "stream scenario: stream-smoke" in out
        assert "2000 virtual providers, 4 rounds" in out
        assert "touched reputation rows:" in out

    def test_stream_domain_preset(self, capsys):
        code = main(["stream", "--preset", "flash-sale", "--rounds", "4",
                     "--universe", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cartel_suppressions" in out

    def test_unknown_stream_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--preset", "nope"])
