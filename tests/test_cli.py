"""Tests for the experiment CLI."""

from __future__ import annotations

import pytest

from repro.cli import MIXES, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.governors == 4
        assert args.f == 0.5

    def test_regret_mix_choices(self):
        args = build_parser().parse_args(["regret", "--mix", "hostile"])
        assert args.mix == "hostile"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["regret", "--mix", "nonsense"])

    def test_all_mixes_buildable(self):
        for factory in MIXES.values():
            behaviors = factory()
            assert len(behaviors) == 8


class TestCommands:
    def test_run_small(self, capsys):
        code = main([
            "run", "--providers", "8", "--collectors", "4", "--governors", "3",
            "--r", "2", "--rounds", "3", "--batch", "8", "--misreporters", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "properties hold: True" in out
        assert "chain height: 4" in out  # 3 rounds + the argue-flush round

    def test_regret_small(self, capsys):
        code = main(["regret", "--horizon", "200", "--mix", "mild", "--seeds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Thm-1 RHS" in out
        assert out.count("yes") >= 2

    def test_sweep_f_small(self, capsys):
        code = main(["sweep-f", "--rounds", "2", "--batch", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validations/tx" in out

    def test_baselines_small(self, capsys):
        code = main(["baselines", "--mix", "hostile", "--horizon", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reputation (paper)" in out
        assert "majority" in out


class TestScenarioCommand:
    def test_scenario_smoke(self, capsys):
        code = main(["scenario", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "properties hold: True" in out

    def test_scenario_rounds_override(self, capsys):
        code = main(["scenario", "paper-default", "--rounds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 rounds" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "does-not-exist"])
