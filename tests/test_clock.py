"""Unit tests for the global/local clock substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.clock import GlobalClock, LocalClock


class TestGlobalClock:
    def test_starts_at_zero(self):
        assert GlobalClock().now == 0.0

    def test_advances(self):
        clock = GlobalClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_advance_to_same_time_ok(self):
        clock = GlobalClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_backwards_rejected(self):
        clock = GlobalClock()
        clock.advance_to(3.0)
        with pytest.raises(SimulationError):
            clock.advance_to(2.9)


class TestLocalClock:
    def test_perfect_clock_tracks_global(self):
        g = GlobalClock()
        local = LocalClock(global_clock=g)
        g.advance_to(7.0)
        assert local.now == 7.0

    def test_offset_applied(self):
        g = GlobalClock()
        local = LocalClock(global_clock=g, offset=0.5)
        g.advance_to(1.0)
        assert local.now == pytest.approx(1.5)

    def test_drift_applied(self):
        g = GlobalClock()
        local = LocalClock(global_clock=g, rate=1.01)
        g.advance_to(100.0)
        assert local.now == pytest.approx(101.0)

    def test_rate_bound_enforced(self):
        g = GlobalClock()
        with pytest.raises(SimulationError):
            LocalClock(global_clock=g, rate=1.5)

    def test_offset_bound_enforced(self):
        g = GlobalClock()
        with pytest.raises(SimulationError):
            LocalClock(global_clock=g, offset=5.0)

    def test_custom_bounds_allow_larger_drift(self):
        g = GlobalClock()
        local = LocalClock(global_clock=g, rate=1.05, max_drift_rate=0.1)
        g.advance_to(10.0)
        assert local.now == pytest.approx(10.5)

    def test_max_deviation_bound(self):
        g = GlobalClock()
        local = LocalClock(global_clock=g, offset=0.2, rate=1.01)
        # |offset| + |rate-1| * horizon
        assert local.max_deviation_at(100.0) == pytest.approx(0.2 + 1.0)

    def test_deviation_bound_is_worst_case(self):
        g = GlobalClock()
        local = LocalClock(global_clock=g, offset=0.2, rate=1.01)
        g.advance_to(50.0)
        assert abs(local.now - g.now) <= local.max_deviation_at(100.0)
