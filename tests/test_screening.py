"""Unit and statistical tests for Algorithm 2 (transaction screening)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ProtocolParams
from repro.core.reputation import ReputationBook
from repro.core.screening import (
    ReportSet,
    decision_to_record,
    screen_transaction,
)
from repro.crypto.signatures import SigningKey
from repro.exceptions import ProtocolViolationError
from repro.ledger.transaction import CheckStatus, Label, make_signed_transaction

PROVIDER_KEY = SigningKey(owner="p0", secret=b"\x12" * 32)
COLLECTORS = ("c0", "c1", "c2", "c3")
_NONCE = iter(range(100_000))


def make_tx():
    return make_signed_transaction(PROVIDER_KEY, "x", 1.0, nonce=next(_NONCE))


def make_book(weights=None) -> ReputationBook:
    book = ReputationBook(governor="g0", initial=1.0)
    for c in COLLECTORS:
        book.register_collector(c, ["p0"])
    for c, w in (weights or {}).items():
        book.vector(c).provider_weights["p0"] = w
    return book


def reports(labels):
    return ReportSet(
        tx=make_tx(), provider="p0", labels=labels, linked_collectors=COLLECTORS
    )


ALWAYS_VALID = lambda tx: True
ALWAYS_INVALID = lambda tx: False


class TestReportSet:
    def test_provider_mismatch_rejected(self):
        with pytest.raises(ProtocolViolationError):
            ReportSet(
                tx=make_tx(),
                provider="p1",
                labels={"c0": Label.VALID},
                linked_collectors=COLLECTORS,
            )

    def test_unlinked_reporter_rejected(self):
        with pytest.raises(ProtocolViolationError):
            reports({"cX": Label.VALID})

    def test_empty_reports_rejected(self):
        with pytest.raises(ProtocolViolationError):
            reports({})


class TestScreeningDecision:
    def test_valid_label_always_checked(self, rng):
        params = ProtocolParams(f=0.9)
        book = make_book()
        for _ in range(50):
            decision = screen_transaction(
                params, book, reports({"c0": Label.VALID}), ALWAYS_VALID, rng
            )
            assert decision.checked
            assert decision.validation_result is True

    def test_single_invalid_reporter_probabilities(self, rng):
        # One reporter: Pr[chosen] = 1, so skip probability is exactly f.
        params = ProtocolParams(f=0.5)
        book = make_book()
        unchecked = 0
        n = 4000
        for _ in range(n):
            decision = screen_transaction(
                params, book, reports({"c0": Label.INVALID}), ALWAYS_INVALID, rng
            )
            if not decision.checked:
                unchecked += 1
        assert unchecked / n == pytest.approx(0.5, abs=0.03)

    def test_skip_probability_scales_with_choice_probability(self, rng):
        # Four equal-weight invalid reporters: Pr[chosen] = 1/4 each,
        # so skip prob = f/4.
        params = ProtocolParams(f=0.8)
        book = make_book()
        labels = {c: Label.INVALID for c in COLLECTORS}
        n = 4000
        unchecked = sum(
            1
            for _ in range(n)
            if not screen_transaction(
                params, book, reports(labels), ALWAYS_INVALID, rng
            ).checked
        )
        assert unchecked / n == pytest.approx(0.8 / 4, abs=0.03)

    def test_source_selection_proportional_to_weight(self, rng):
        book = make_book({"c0": 3.0, "c1": 1.0})
        params = ProtocolParams(f=0.5)
        labels = {"c0": Label.VALID, "c1": Label.VALID}
        chosen = {"c0": 0, "c1": 0}
        n = 4000
        for _ in range(n):
            decision = screen_transaction(
                params, book, reports(labels), ALWAYS_VALID, rng
            )
            chosen[decision.chosen_collector] += 1
        assert chosen["c0"] / n == pytest.approx(0.75, abs=0.03)

    def test_weight_sums(self, rng):
        book = make_book({"c0": 2.0, "c1": 1.0, "c2": 0.5})
        labels = {"c0": Label.VALID, "c1": Label.INVALID, "c2": Label.INVALID}
        decision = screen_transaction(
            ProtocolParams(f=0.5), book, reports(labels), ALWAYS_VALID, rng
        )
        assert decision.w_plus == pytest.approx(2.0)
        assert decision.w_minus == pytest.approx(1.5)
        assert decision.w_silent == pytest.approx(1.0)  # c3 stayed silent
        assert decision.reported_mass == pytest.approx(3.5)

    def test_validate_called_at_most_once(self, rng):
        calls = []
        def counting_validate(tx):
            calls.append(tx)
            return True
        book = make_book()
        screen_transaction(
            ProtocolParams(f=0.5),
            book,
            reports({"c0": Label.VALID}),
            counting_validate,
            rng,
        )
        assert len(calls) == 1

    def test_validate_not_called_when_unchecked(self):
        # Force an unchecked outcome: f close to 1, single reporter, and
        # an rng stub that always skips.
        class FixedRng:
            def choice(self, n, p=None):
                return 0
            def random(self):
                return 0.0  # below skip probability -> skip

        calls = []
        book = make_book()
        decision = screen_transaction(
            ProtocolParams(f=0.99),
            book,
            reports({"c0": Label.INVALID}),
            lambda tx: calls.append(tx) or True,
            FixedRng(),
        )
        assert not decision.checked
        assert calls == []

    def test_zero_weight_mass_rejected(self, rng):
        book = make_book()
        book.vector("c0").provider_weights["p0"] = 0.0
        with pytest.raises(ProtocolViolationError):
            screen_transaction(
                ProtocolParams(f=0.5),
                book,
                reports({"c0": Label.INVALID}),
                ALWAYS_INVALID,
                rng,
            )


class TestDecisionToRecord:
    def _decision(self, rng, labels, validate, f=0.5):
        return screen_transaction(
            ProtocolParams(f=f), make_book(), reports(labels), validate, rng
        )

    def test_checked_valid_recorded(self, rng):
        decision = self._decision(rng, {"c0": Label.VALID}, ALWAYS_VALID)
        record = decision_to_record(decision)
        assert record is not None
        assert record.label is Label.VALID
        assert record.status is CheckStatus.CHECKED

    def test_checked_invalid_discarded(self, rng):
        decision = self._decision(rng, {"c0": Label.VALID}, ALWAYS_INVALID)
        assert decision_to_record(decision) is None

    def test_unchecked_recorded_invalid(self):
        class FixedRng:
            def choice(self, n, p=None):
                return 0
            def random(self):
                return 0.0

        decision = screen_transaction(
            ProtocolParams(f=0.9),
            make_book(),
            reports({"c0": Label.INVALID}),
            ALWAYS_VALID,
            FixedRng(),
        )
        record = decision_to_record(decision)
        assert record is not None
        assert record.label is Label.INVALID
        assert record.status is CheckStatus.UNCHECKED
