"""Tests for baseline screening policies and the comparison harness."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    HonestBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.baselines import (
    CheckAllPolicy,
    CheckNonePolicy,
    MajorityVotePolicy,
    PolicySimulation,
    ReputationPolicy,
    StaticTrustPolicy,
    UniformSelectionPolicy,
)
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError


def simulation(behaviors, horizon=600, seed=3):
    return PolicySimulation(behaviors=behaviors, horizon=horizon, seed=seed)


def adversarial_mix():
    return [HonestBehavior()] * 3 + [AlwaysInvertBehavior()] * 5


class TestHarness:
    def test_stream_deterministic(self):
        s1 = simulation([HonestBehavior()] * 2).stream()
        s2 = simulation([HonestBehavior()] * 2).stream()
        assert s1 == s2

    def test_stream_identical_across_policies(self):
        """Different policies face the exact same adversary stream."""
        sim = simulation(adversarial_mix())
        a = sim.run(CheckAllPolicy())
        sim2 = simulation(adversarial_mix())
        b = sim2.run(CheckNonePolicy())
        assert a.transactions == b.transactions

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            PolicySimulation(behaviors=[HonestBehavior()], horizon=0)


class TestCheckAll:
    def test_no_mistakes_full_cost(self):
        stats = simulation(adversarial_mix()).run(CheckAllPolicy())
        assert stats.mistakes == 0
        assert stats.validations == stats.transactions
        assert stats.check_rate == 1.0


class TestCheckNone:
    def test_zero_cost_many_mistakes(self):
        stats = simulation(adversarial_mix()).run(CheckNonePolicy())
        assert stats.validations == 0
        # 5/8 inverters: roughly 62% of samples land on a liar.
        assert stats.mistake_rate > 0.3


class TestMajorityVote:
    def test_beats_minority_noise(self):
        behaviors = [HonestBehavior()] * 6 + [MisreportBehavior(0.5)] * 2
        stats = simulation(behaviors).run(MajorityVotePolicy())
        assert stats.mistake_rate < 0.02

    def test_loses_to_adversarial_majority(self):
        stats = simulation(adversarial_mix()).run(MajorityVotePolicy())
        assert stats.mistake_rate > 0.5


class TestUniformSelection:
    def test_worse_than_reputation_under_adversaries(self):
        params = ProtocolParams(f=0.7)
        rep = simulation(adversarial_mix()).run(
            ReputationPolicy(params=params, collector_ids=[f"c{i}" for i in range(8)])
        )
        unif = simulation(adversarial_mix()).run(UniformSelectionPolicy(params=params))
        assert rep.mistakes < unif.mistakes


class TestStaticTrust:
    def test_requires_nonempty_positive_trust(self):
        with pytest.raises(ConfigurationError):
            StaticTrustPolicy(params=ProtocolParams(), trust={})
        with pytest.raises(ConfigurationError):
            StaticTrustPolicy(params=ProtocolParams(), trust={"c0": 0.0})

    def test_good_audit_matches_reputation_roughly(self):
        # Frozen weights that already demote the inverters.
        params = ProtocolParams(f=0.7)
        trust = {f"c{i}": (1.0 if i < 3 else 1e-6) for i in range(8)}
        stats = simulation(adversarial_mix()).run(
            StaticTrustPolicy(params=params, trust=trust)
        )
        assert stats.mistake_rate < 0.05

    def test_sleeper_defeats_static_trust_but_not_reputation(self):
        params = ProtocolParams(f=0.7)
        def mix():
            return [HonestBehavior()] * 2 + [SleeperBehavior(100) for _ in range(6)]
        # Static trust frozen from the (honest-looking) audit window.
        trust = {f"c{i}": 1.0 for i in range(8)}
        static = simulation(mix(), horizon=1500).run(
            StaticTrustPolicy(params=params, trust=trust)
        )
        rep = simulation(mix(), horizon=1500).run(
            ReputationPolicy(params=params, collector_ids=[f"c{i}" for i in range(8)])
        )
        assert rep.mistakes < static.mistakes


class TestReputationPolicy:
    def test_learns_to_avoid_liars(self):
        params = ProtocolParams(f=0.7)
        policy = ReputationPolicy(
            params=params, collector_ids=[f"c{i}" for i in range(8)]
        )
        simulation(adversarial_mix(), horizon=2000).run(policy)
        honest_w = [policy.weights[f"c{i}"] for i in range(3)]
        liar_w = [policy.weights[f"c{i}"] for i in range(3, 8)]
        assert min(honest_w) > max(liar_w) * 100

    def test_cheaper_than_check_all(self):
        params = ProtocolParams(f=0.7)
        rep = simulation(adversarial_mix()).run(
            ReputationPolicy(params=params, collector_ids=[f"c{i}" for i in range(8)])
        )
        all_ = simulation(adversarial_mix()).run(CheckAllPolicy())
        assert rep.validations < all_.validations
