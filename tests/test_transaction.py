"""Unit tests for transactions, labels, and block records."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import Signature, SigningKey
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    LabeledTransaction,
    SignedTransaction,
    TransactionBody,
    TxRecord,
    make_labeled_transaction,
    make_signed_transaction,
)


@pytest.fixture
def provider_key() -> SigningKey:
    return SigningKey(owner="p0", secret=b"\x0a" * 32)


@pytest.fixture
def collector_key() -> SigningKey:
    return SigningKey(owner="c0", secret=b"\x0b" * 32)


class TestLabel:
    def test_values_match_paper(self):
        assert int(Label.VALID) == 1
        assert int(Label.INVALID) == -1

    def test_from_bool(self):
        assert Label.from_bool(True) is Label.VALID
        assert Label.from_bool(False) is Label.INVALID


class TestSignedTransaction:
    def test_make_signs_correctly(self, provider_key, im):
        tx = make_signed_transaction(provider_key, {"v": 1}, timestamp=3.0, nonce=0)
        assert tx.provider == "p0"
        # The IM fixture enrolled its own p0 with a different secret; use
        # direct key verification here.
        from repro.crypto.signatures import verify_with_key

        assert verify_with_key(provider_key, tx.signed_message(), tx.provider_signature)

    def test_tx_id_unique_per_nonce(self, provider_key):
        a = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        b = make_signed_transaction(provider_key, "x", 1.0, nonce=1)
        assert a.tx_id != b.tx_id

    def test_tx_id_changes_with_timestamp(self, provider_key):
        a = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        b = make_signed_transaction(provider_key, "x", 2.0, nonce=0)
        assert a.tx_id != b.tx_id

    def test_replay_with_new_timestamp_breaks_signature(self, provider_key):
        from repro.crypto.signatures import verify_with_key

        tx = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        replayed = SignedTransaction(
            body=tx.body, timestamp=9.0, provider_signature=tx.provider_signature
        )
        assert not verify_with_key(
            provider_key, replayed.signed_message(), replayed.provider_signature
        )

    def test_canonical_bytes_stable(self, provider_key):
        tx = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        assert tx.canonical_bytes() == tx.canonical_bytes()


class TestLabeledTransaction:
    def test_make_and_parse(self, provider_key, collector_key):
        tx = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        labeled = make_labeled_transaction(collector_key, tx, Label.INVALID)
        parsed_tx, label = labeled.parse()
        assert parsed_tx is tx
        assert label is Label.INVALID
        assert labeled.collector == "c0"

    def test_collector_signature_covers_label(self, provider_key, collector_key):
        from repro.crypto.signatures import verify_with_key

        tx = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        labeled = make_labeled_transaction(collector_key, tx, Label.VALID)
        # Flipping the label invalidates the collector signature.
        flipped = LabeledTransaction(
            tx=tx,
            label=Label.INVALID,
            collector="c0",
            collector_signature=labeled.collector_signature,
        )
        assert verify_with_key(
            collector_key, labeled.signed_message(), labeled.collector_signature
        )
        assert not verify_with_key(
            collector_key, flipped.signed_message(), flipped.collector_signature
        )


class TestTxRecord:
    def test_unchecked_flag(self, provider_key):
        tx = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        assert rec.is_unchecked
        rec2 = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        assert not rec2.is_unchecked

    def test_canonical_bytes_distinguish_status(self, provider_key):
        tx = make_signed_transaction(provider_key, "x", 1.0, nonce=0)
        a = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        b = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.REEVALUATED)
        assert a.canonical_bytes() != b.canonical_bytes()

    def test_body_canonical_bytes_distinguish_nonce(self):
        a = TransactionBody(provider="p", payload="x", nonce=0)
        b = TransactionBody(provider="p", payload="x", nonce=1)
        assert a.canonical_bytes() != b.canonical_bytes()
