"""Tests for workload generators and arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.arrivals import (
    BurstyArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.workloads.generator import (
    BernoulliWorkload,
    BurstyWorkload,
    PerProviderWorkload,
)

PROVIDERS = [f"p{i}" for i in range(5)]


class TestBernoulli:
    def test_round_robin_providers(self):
        wl = BernoulliWorkload(PROVIDERS, p_valid=0.5, seed=1)
        specs = wl.take(10)
        assert [s.provider for s in specs] == PROVIDERS * 2

    def test_validity_rate(self):
        wl = BernoulliWorkload(PROVIDERS, p_valid=0.7, seed=1)
        specs = wl.take(5000)
        rate = sum(s.is_valid for s in specs) / 5000
        assert rate == pytest.approx(0.7, abs=0.03)

    def test_deterministic(self):
        a = BernoulliWorkload(PROVIDERS, p_valid=0.5, seed=9).take(50)
        b = BernoulliWorkload(PROVIDERS, p_valid=0.5, seed=9).take(50)
        assert [s.is_valid for s in a] == [s.is_valid for s in b]

    def test_payloads_unique(self):
        wl = BernoulliWorkload(PROVIDERS, seed=1)
        payloads = [str(s.payload) for s in wl.take(20)]
        assert len(set(payloads)) == 20

    def test_stream_is_endless(self):
        wl = BernoulliWorkload(PROVIDERS, seed=1)
        stream = wl.stream()
        assert [next(stream).provider for _ in range(7)] == (PROVIDERS * 2)[:7]

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BernoulliWorkload([], p_valid=0.5)
        with pytest.raises(ConfigurationError):
            BernoulliWorkload(PROVIDERS, p_valid=1.5)


class TestPerProvider:
    def test_rates_assigned_once(self):
        wl = PerProviderWorkload(PROVIDERS, seed=2)
        assert set(wl.rates) == set(PROVIDERS)
        assert all(0.0 <= r <= 1.0 for r in wl.rates.values())

    def test_provider_heterogeneity_realised(self):
        wl = PerProviderWorkload(PROVIDERS, alpha=2.0, beta=2.0, seed=3)
        specs = wl.take(10_000)
        by_provider = {p: [] for p in PROVIDERS}
        for s in specs:
            by_provider[s.provider].append(s.is_valid)
        empirical = {p: np.mean(v) for p, v in by_provider.items()}
        for p in PROVIDERS:
            assert empirical[p] == pytest.approx(wl.rates[p], abs=0.06)

    def test_invalid_beta_params(self):
        with pytest.raises(ConfigurationError):
            PerProviderWorkload(PROVIDERS, alpha=0.0)


class TestBursty:
    def test_regime_switching_changes_rates(self):
        wl = BurstyWorkload(PROVIDERS, p_good=0.95, p_bad=0.1, stay=0.9, seed=4)
        specs = wl.take(5000)
        overall = sum(s.is_valid for s in specs) / 5000
        # Mixture: strictly between the two regime rates.
        assert 0.1 < overall < 0.95

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BurstyWorkload(PROVIDERS, stay=1.2)


class TestArrivals:
    def test_constant(self):
        arr = ConstantArrivals(batch=7)
        assert [arr.count_for_round(r) for r in range(3)] == [7, 7, 7]

    def test_constant_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantArrivals(batch=-1)

    def test_poisson_mean(self):
        arr = PoissonArrivals(rate=10.0, seed=5)
        counts = [arr.count_for_round(r) for r in range(2000)]
        assert np.mean(counts) == pytest.approx(10.0, abs=0.5)

    def test_poisson_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=-1.0)

    def test_diurnal_modulation(self):
        arr = DiurnalArrivals(rate=20.0, period=24, amplitude=0.9, seed=6)
        # Average counts at the peak phase vs the trough phase.
        peak = np.mean([arr.count_for_round(6 + 24 * k) for k in range(300)])
        trough = np.mean([arr.count_for_round(18 + 24 * k) for k in range(300)])
        assert peak > trough * 1.5

    def test_diurnal_invalid_amplitude(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(rate=1.0, amplitude=2.0)

    def test_bursty_mean_between_rates(self):
        arr = BurstyArrivals(5.0, 50.0, p_burst=0.2, p_end=0.3, seed=4)
        counts = [arr.count_for_round(r) for r in range(2000)]
        assert 5.0 < np.mean(counts) < 50.0
        assert min(counts) >= 0

    def test_bursty_burst_below_background_rejected(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(10.0, 5.0)

    def test_bursty_switch_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(5.0, 50.0, p_burst=1.5)


class TestArrivalStreamIsolation:
    """Each arrival class draws from its own (seed, stream-tag) RNG.

    Before the fix, every process seeded ``default_rng(seed)`` directly,
    so two different processes sharing one seed replayed *correlated*
    count sequences.  The golden pins also freeze the derived streams:
    any change to the tag constants or the per-round draw pattern shows
    up here.
    """

    def test_golden_poisson_stream(self):
        arr = PoissonArrivals(10.0, seed=7)
        assert [arr.count_for_round(r) for r in range(8)] == [
            15, 4, 8, 8, 13, 9, 5, 9,
        ]

    def test_golden_diurnal_stream(self):
        arr = DiurnalArrivals(20.0, period=8, amplitude=0.5, seed=7)
        assert [arr.count_for_round(r) for r in range(8)] == [
            21, 26, 30, 27, 15, 12, 5, 7,
        ]

    def test_golden_bursty_stream(self):
        arr = BurstyArrivals(5.0, 50.0, p_burst=0.2, p_end=0.3, seed=7)
        assert [arr.count_for_round(r) for r in range(8)] == [
            6, 39, 46, 56, 49, 60, 7, 9,
        ]

    def test_same_seed_different_processes_decorrelated(self):
        # Three processes that are all effectively Poisson(10) under one
        # seed: identical sequences would mean a shared RNG stream.
        poisson = PoissonArrivals(10.0, seed=7)
        flat_diurnal = DiurnalArrivals(10.0, amplitude=0.0, seed=7)
        flat_bursty = BurstyArrivals(10.0, 10.0, p_burst=0.0, seed=7)
        streams = [
            [arr.count_for_round(r) for r in range(12)]
            for arr in (poisson, flat_diurnal, flat_bursty)
        ]
        assert streams[0] != streams[1]
        assert streams[0] != streams[2]
        assert streams[1] != streams[2]

    def test_same_seed_same_process_reproduces(self):
        a = BurstyArrivals(5.0, 50.0, p_burst=0.2, p_end=0.3, seed=11)
        b = BurstyArrivals(5.0, 50.0, p_burst=0.2, p_end=0.3, seed=11)
        assert [a.count_for_round(r) for r in range(30)] == [
            b.count_for_round(r) for r in range(30)
        ]

    def test_bursty_stream_position_path_independent(self):
        # One switch draw + one count draw per round regardless of the
        # regime path, so two parameterisations share the same underlying
        # draw positions: with p_burst=0 the chain never leaves the
        # background regime and the count draws stay aligned.
        never = BurstyArrivals(10.0, 100.0, p_burst=0.0, p_end=1.0, seed=3)
        also_never = BurstyArrivals(10.0, 500.0, p_burst=0.0, p_end=0.5, seed=3)
        assert [never.count_for_round(r) for r in range(20)] == [
            also_never.count_for_round(r) for r in range(20)
        ]
