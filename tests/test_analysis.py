"""Tests for the analysis layer: stats, metrics, complexity, reporting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.complexity import fit_linear, fit_power_law, fit_quadratic
from repro.analysis.metrics import SweepTable, summarize_run
from repro.analysis.regret_curves import run_regret_curve
from repro.analysis.reporting import banner, format_sweep, format_table
from repro.analysis.stats import (
    bootstrap_ci,
    chi_squared_uniformity,
    empirical_tail,
    loglog_slope,
)
from repro.agents.behaviors import AlwaysInvertBehavior, HonestBehavior
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


class TestEmpiricalTail:
    def test_basic(self):
        assert empirical_tail([1, 2, 3, 4], 2.5) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_tail([], 1.0)


class TestChiSquared:
    def test_uniform_counts_consistent(self):
        rng = np.random.default_rng(1)
        counts = np.bincount(rng.integers(0, 4, size=4000), minlength=4)
        result = chi_squared_uniformity(counts, [0.25] * 4)
        assert result.consistent(alpha=0.01)

    def test_skewed_counts_rejected(self):
        result = chi_squared_uniformity([900, 40, 30, 30], [0.25] * 4)
        assert not result.consistent(alpha=0.01)
        assert result.p_value < 1e-6

    def test_proportional_expectation(self):
        # Counts matching a 2:1:1 stake split are consistent with it.
        result = chi_squared_uniformity([500, 251, 249], [0.5, 0.25, 0.25])
        assert result.consistent()

    def test_sf_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for stat, dof in [(1.0, 1), (5.0, 3), (20.0, 7), (3.3, 10)]:
            ours = chi_squared_uniformity(
                [100] * (dof + 1), [1 / (dof + 1)] * (dof + 1)
            )
            expected = float(scipy_stats.chi2.sf(ours.statistic, ours.dof))
            assert ours.p_value == pytest.approx(expected, rel=1e-6, abs=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            chi_squared_uniformity([1, 2], [0.5, 0.25, 0.25])

    def test_bad_proportions_rejected(self):
        with pytest.raises(ConfigurationError):
            chi_squared_uniformity([1, 2], [0.5, 0.4])


class TestBootstrap:
    def test_ci_contains_mean_for_tight_data(self):
        lo, hi = bootstrap_ci([5.0] * 50, seed=1)
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(5.0)

    def test_ci_ordering(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(10, 2, size=200).tolist()
        lo, hi = bootstrap_ci(samples, seed=3)
        assert lo < np.mean(samples) < hi

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([], 0.95)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)


class TestLogLogSlope:
    def test_linear_data_slope_one(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_data_slope_two(self):
        xs = [10, 20, 40, 80]
        ys = [x * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_sqrt_data_slope_half(self):
        xs = [100, 400, 1600]
        ys = [math.sqrt(x) for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(0.5)

    def test_zero_y_floored(self):
        assert math.isfinite(loglog_slope([1, 2, 4], [0.0, 1.0, 2.0]))


class TestComplexityFits:
    def test_power_law_recovers_exponent(self):
        xs = [4, 8, 16, 32, 64]
        ys = [2.0 * x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.coefficients[1] == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(200.0)

    def test_linear_fit(self):
        xs = [1, 2, 3, 4]
        ys = [3 * x + 1 for x in xs]
        fit = fit_linear(xs, ys)
        assert fit.coefficients[0] == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_quadratic_fit(self):
        xs = [1, 2, 3, 4, 5]
        ys = [2 * x * x + x for x in xs]
        fit = fit_quadratic(xs, ys)
        assert fit.coefficients[0] == pytest.approx(2.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_linear([1, 2], [1, 2])


class TestSweepTable:
    def test_add_and_column(self):
        table = SweepTable(parameter="f")
        table.add(0.1, {"mistakes": 3.0})
        table.add(0.5, {"mistakes": 7.0})
        assert table.values == [0.1, 0.5]
        assert table.column("mistakes") == [3.0, 7.0]
        assert len(table) == 2

    def test_missing_metric_rejected(self):
        table = SweepTable(parameter="f")
        table.add(0.1, {"a": 1.0})
        with pytest.raises(ConfigurationError):
            table.column("b")

    def test_metric_names_first_seen_order(self):
        table = SweepTable(parameter="f")
        table.add(0.1, {"b": 1.0, "a": 2.0})
        table.add(0.2, {"c": 3.0})
        assert table.metric_names() == ["b", "a", "c"]


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 2.5]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all same width

    def test_format_table_width_mismatch(self):
        with pytest.raises(ConfigurationError):
            format_table(["a"], [["x", "y"]])

    def test_format_sweep(self):
        table = SweepTable(parameter="f")
        table.add(0.1, {"m": 1.0})
        text = format_sweep(table)
        assert "f" in text and "m" in text

    def test_banner(self):
        line = banner("Theorem 1")
        assert "Theorem 1" in line
        assert line.startswith("=")


class TestRunSummary:
    def test_summarize_engine_run(self):
        topo = Topology.regular(l=8, n=4, m=4, r=2)
        engine = ProtocolEngine(topo, ProtocolParams(f=0.5), seed=1)
        wl = BernoulliWorkload(topo.providers, p_valid=0.8, seed=2)
        for _ in range(3):
            engine.run_round(wl.take(16))
        engine.finalize()
        summary = summarize_run(engine)
        assert summary.rounds == 3
        assert summary.transactions == 48
        assert len(summary.governors) == 4
        assert summary.total_validations > 0
        for g in summary.governors:
            assert 0.0 <= g.unchecked_rate <= 1.0
            assert g.check_rate + g.unchecked_rate == pytest.approx(1.0)


class TestRegretCurve:
    def test_curve_shape_and_bound(self):
        curve = run_regret_curve(
            behavior_factory=lambda: [HonestBehavior()] * 2
            + [AlwaysInvertBehavior()] * 2,
            horizons=[50, 200, 800],
            seeds=[1, 2],
        )
        assert len(curve.points) == 3
        assert curve.all_within_bound()
        # Regret grows sublinearly.
        assert curve.scaling_exponent() < 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_regret_curve(lambda: [HonestBehavior()] * 2, [], [1])


class TestSparkline:
    def test_empty(self):
        from repro.analysis.reporting import sparkline

        assert sparkline([]) == ""

    def test_constant_series(self):
        from repro.analysis.reporting import sparkline

        line = sparkline([5, 5, 5])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_monotone_series_monotone_bars(self):
        from repro.analysis.reporting import sparkline

        line = sparkline(list(range(8)))
        assert list(line) == sorted(line)

    def test_downsampling(self):
        from repro.analysis.reporting import sparkline

        line = sparkline(list(range(500)), width=40)
        assert len(line) == 40

    def test_log_scale_handles_tiny_weights(self):
        from repro.analysis.reporting import sparkline

        line = sparkline([1.0, 1e-50, 1e-100], log_scale=True)
        assert len(line) == 3
        assert line[0] != line[2]


class TestExperimentRegistry:
    def test_ids_unique(self):
        from repro.analysis.experiments import registry

        ids = [e.exp_id for e in registry()]
        assert len(ids) == len(set(ids))
        assert "E1" in ids and "X4" in ids

    def test_bench_files_exist(self):
        import pathlib

        from repro.analysis.experiments import registry

        bench_dir = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
        for exp in registry():
            bench_file = exp.bench.split("::")[0]
            assert (bench_dir / bench_file).exists(), exp.exp_id

    def test_missing_results_empty_dir(self, tmp_path):
        from repro.analysis.experiments import missing_results, registry

        missing = missing_results(results_dir=tmp_path)
        assert len(missing) == len(registry())

    def test_load_result_roundtrip(self, tmp_path):
        from repro.analysis.experiments import load_result

        (tmp_path / "E1_regret.txt").write_text("the table")
        assert load_result("E1", results_dir=tmp_path) == "the table"

    def test_load_result_errors(self, tmp_path):
        from repro.analysis.experiments import load_result

        with pytest.raises(ConfigurationError):
            load_result("E1", results_dir=tmp_path)  # not generated
        with pytest.raises(ConfigurationError):
            load_result("E99", results_dir=tmp_path)  # unknown

    def test_generated_results_complete(self):
        """After a bench run, every registered experiment has a table."""
        from repro.analysis.experiments import RESULTS_DIR, missing_results

        if not RESULTS_DIR.exists():
            pytest.skip("benches not run yet")
        assert missing_results() == []
