"""Unit and property tests for the paper's analytical bound formulas."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.regret import (
    hoeffding_tail,
    log_beta_linearisation_holds,
    rwm_bound,
    theorem1_bound,
    theorem3_threshold,
    theorem4_bound,
)
from repro.exceptions import ConfigurationError


class TestRwmBound:
    def test_formula(self):
        beta = 0.5
        s_min = 10.0
        r = 8
        expected = (2 * math.log(8) - 2 * math.log(0.5) * 10.0) / 0.5
        assert rwm_bound(s_min, r, beta) == pytest.approx(expected)

    def test_zero_smin_leaves_log_term(self):
        assert rwm_bound(0.0, 8, 0.5) == pytest.approx(2 * math.log(8) / 0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            rwm_bound(0.0, 1, 0.5)
        with pytest.raises(ConfigurationError):
            rwm_bound(0.0, 8, 0.0)
        with pytest.raises(ConfigurationError):
            rwm_bound(0.0, 8, 1.0)


class TestTheorem1:
    def test_formula(self):
        assert theorem1_bound(5.0, 100, 8) == pytest.approx(
            5.0 + 16 * math.sqrt(math.log(8) * 100)
        )

    def test_sqrt_growth(self):
        b100 = theorem1_bound(0.0, 100, 8)
        b400 = theorem1_bound(0.0, 400, 8)
        assert b400 / b100 == pytest.approx(2.0)

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            theorem1_bound(0.0, 0, 8)


class TestTheorem3:
    def test_tail_formula(self):
        assert hoeffding_tail(1000, 0.05) == pytest.approx(math.exp(-2 * 0.0025 * 1000))

    def test_tail_decreases_in_n(self):
        assert hoeffding_tail(2000, 0.05) < hoeffding_tail(1000, 0.05)

    def test_tail_decreases_in_delta(self):
        assert hoeffding_tail(1000, 0.1) < hoeffding_tail(1000, 0.05)

    def test_threshold(self):
        assert theorem3_threshold(1000, f=0.5, delta=0.05) == pytest.approx(550.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            hoeffding_tail(0, 0.1)
        with pytest.raises(ConfigurationError):
            hoeffding_tail(10, 0.0)
        with pytest.raises(ConfigurationError):
            theorem3_threshold(10, f=1.5, delta=0.1)


class TestTheorem4:
    def test_combines_theorems(self):
        s, n, f, delta, r = 3.0, 1000, 0.5, 0.05, 8
        expected = s + 16 * math.sqrt(math.log(r) * (f + delta) * n)
        assert theorem4_bound(s, n, f, delta, r) == pytest.approx(expected)

    def test_smaller_f_smaller_bound(self):
        assert theorem4_bound(0.0, 1000, 0.2, 0.05, 8) < theorem4_bound(
            0.0, 1000, 0.8, 0.05, 8
        )


class TestLinearisation:
    @given(st.floats(min_value=0.1, max_value=0.9))
    def test_property_holds_on_proof_interval(self, beta):
        """-log(beta)/(1-beta) <= 17/2 - 8*beta on [0.1, 0.9] (paper claim)."""
        assert log_beta_linearisation_holds(beta)

    def test_fails_outside_interval(self):
        # Very small beta: -log(beta)/(1-beta) blows up past the line.
        assert not log_beta_linearisation_holds(1e-4)


@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.integers(min_value=1, max_value=10_000),
    st.integers(min_value=2, max_value=64),
)
def test_property_theorem1_bound_monotone(s_min, horizon, r):
    """The bound grows with S_min, T and r, as the formula promises."""
    base = theorem1_bound(s_min, horizon, r)
    assert theorem1_bound(s_min + 1.0, horizon, r) > base
    assert theorem1_bound(s_min, horizon + 1, r) > base
    assert theorem1_bound(s_min, horizon, r + 1) > base
