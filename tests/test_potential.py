"""Property tests for the potential-function argument behind Theorem 1.

The proof rests on two numerical facts about one update step with
weights ``W_0`` (correct), ``W_1`` (missed), ``W_2`` (wrong) and
``L = 2 W_2 / (W_0 + W_2)``:

  (i)  upper bound:  ``W' = W_0 + beta W_1 + gamma W_2
                          <= (1 + (gamma - 1)/2 * L) * W``
       where ``W = W_0 + W_1 + W_2`` — requires
       ``gamma >= 2(beta-1)/L + 1``;
  (ii) lower bound:  any single collector's weight after T steps is at
       least ``beta ** (its accumulated loss)`` — requires
       ``gamma >= beta**2`` (a wrong label costs loss 2, so per unit of
       loss the discount is at least beta).

These are exactly the inequalities the paper's gamma rule guarantees;
hypothesis hammers them across the whole parameter space, plus the
telescoped form over random histories.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import gamma_for

_weights = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)
_beta = st.floats(min_value=0.05, max_value=0.95)


@given(_beta, _weights, _weights, _weights)
def test_property_single_step_upper_bound(beta, w0, w1, w2):
    """(i): one update step contracts the total weight as the proof needs."""
    total = w0 + w1 + w2
    loss = 2.0 * w2 / (w0 + w2) if (w0 + w2) > 0 else 0.0
    gamma = gamma_for(beta, loss)
    updated = w0 + beta * w1 + gamma * w2
    bound = (1.0 + (gamma - 1.0) / 2.0 * loss) * total
    assert updated <= bound * (1.0 + 1e-12)


@given(_beta, _weights, _weights)
def test_property_step_bound_tight_without_missers(beta, w0, w2):
    """With W_1 = 0 the proof's inequality holds with equality."""
    loss = 2.0 * w2 / (w0 + w2)
    gamma = gamma_for(beta, loss)
    updated = w0 + gamma * w2
    bound = (1.0 + (gamma - 1.0) / 2.0 * loss) * (w0 + w2)
    assert math.isclose(updated, bound, rel_tol=1e-9)


@given(_beta, st.floats(min_value=1e-6, max_value=2.0))
def test_property_per_loss_discount_at_least_beta(beta, loss):
    """(ii): gamma >= beta^2, i.e. discount per unit of loss >= beta."""
    gamma = gamma_for(beta, loss)
    assert gamma >= beta * beta - 1e-12


@given(
    _beta,
    st.lists(st.sampled_from(["correct", "wrong", "missed"]), min_size=1, max_size=60),
    st.floats(min_value=0.0, max_value=2.0),
)
def test_property_weight_floor_over_history(beta, history, ambient_loss):
    """Telescoped (ii): after any outcome history, a collector's weight is
    at least beta ** (accumulated loss), where loss is 2 per wrong and 1
    per miss — whatever L_t the rest of the population induced."""
    weight = 1.0
    accumulated_loss = 0.0
    for outcome in history:
        gamma = gamma_for(beta, ambient_loss)
        if outcome == "wrong":
            weight *= gamma
            accumulated_loss += 2.0
        elif outcome == "missed":
            weight *= beta
            accumulated_loss += 1.0
    assert weight >= beta**accumulated_loss * (1.0 - 1e-9)


@given(
    _beta,
    st.lists(
        st.tuples(_weights, _weights, _weights), min_size=1, max_size=40
    ),
)
@settings(max_examples=50)
def test_property_telescoped_bound_implies_rwm_inequality(beta, steps):
    """The telescoped product bound implies the proof's master inequality

        sum_t L_t <= 2/(1-beta) * (log r - log W_T / W_0^...)

    checked in its raw form: log(W_T / W_0) <= sum_t log(1 - (1-gamma_t)/2 L_t)
    <= -(1-beta)/2 * sum_t L_t, hence
    sum_t L_t <= 2/(1-beta) * log(W_0 / W_T).
    """
    total = None
    sum_loss = 0.0
    w_start = None
    for w0, w1, w2 in steps:
        if total is None:
            w_start = w0 + w1 + w2
            total = w_start
        else:
            # Re-split the current total mass in the drawn proportions.
            scale = total / (w0 + w1 + w2)
            w0, w1, w2 = w0 * scale, w1 * scale, w2 * scale
        loss = 2.0 * w2 / (w0 + w2) if (w0 + w2) > 0 else 0.0
        gamma = gamma_for(beta, loss)
        total = w0 + beta * w1 + gamma * w2
        sum_loss += loss
    assert total is not None and w_start is not None
    lhs = sum_loss
    rhs = 2.0 / (1.0 - beta) * math.log(w_start / total) + 1e-6
    assert lhs <= rhs or math.isclose(lhs, rhs, rel_tol=1e-6)
