"""Unit tests for the 3-step stake-transform consensus."""

from __future__ import annotations

import pytest

from repro.consensus.stake import StakeLedger, StakeTransfer
from repro.consensus.stake_consensus import (
    StakeConsensusRound,
    evaluate_proposal,
    make_commit,
    make_proposal,
    transfers_digest,
    verify_commit,
)
from repro.consensus.messages import ExpelEvidence, NewStateProposal, StateAck
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import sign
from repro.exceptions import LeaderMisbehaviourError, ProtocolViolationError

GOVS = ["g0", "g1", "g2", "g3"]


@pytest.fixture
def gov_im():
    im = IdentityManager(seed=4)
    for g in GOVS:
        im.enroll(g, Role.GOVERNOR)
    return im


def make_transfer(im, sender="g0", receiver="g1", amount=1, nonce=0):
    key = im.record(sender).key
    message = ("stake-transfer", sender, receiver, amount, nonce)
    return StakeTransfer(
        sender=sender, receiver=receiver, amount=amount, nonce=nonce,
        signature=sign(key, message),
    )


@pytest.fixture
def stake():
    return StakeLedger.from_balances({g: 5 for g in GOVS})


class TestDigest:
    def test_order_independent(self, gov_im):
        t1 = make_transfer(gov_im, nonce=0)
        t2 = make_transfer(gov_im, "g2", "g3", 2, nonce=1)
        assert transfers_digest([t1, t2]) == transfers_digest([t2, t1])

    def test_set_sensitive(self, gov_im):
        t1 = make_transfer(gov_im, nonce=0)
        t2 = make_transfer(gov_im, nonce=1)
        assert transfers_digest([t1]) != transfers_digest([t1, t2])


class TestProposalEvaluation:
    def test_honest_proposal_acked(self, gov_im, stake):
        transfers = [make_transfer(gov_im)]
        proposal = make_proposal(gov_im.record("g0").key, 0, stake, transfers)
        verdict = evaluate_proposal(
            gov_im, gov_im.record("g1").key, proposal, stake, transfers
        )
        assert isinstance(verdict, StateAck)

    def test_new_state_reflects_transfers(self, gov_im, stake):
        transfers = [make_transfer(gov_im, amount=3)]
        proposal = make_proposal(gov_im.record("g0").key, 0, stake, transfers)
        assert proposal.new_state["g0"] == 2
        assert proposal.new_state["g1"] == 8

    def test_inconsistent_state_accused(self, gov_im, stake):
        transfers = [make_transfer(gov_im)]
        proposal = make_proposal(gov_im.record("g0").key, 0, stake, transfers)
        # g1 received a different transfer set.
        other = [make_transfer(gov_im, "g2", "g3", 2, nonce=5)]
        verdict = evaluate_proposal(
            gov_im, gov_im.record("g1").key, proposal, stake, other
        )
        assert isinstance(verdict, ExpelEvidence)

    def test_bad_signature_accused(self, gov_im, stake):
        transfers = [make_transfer(gov_im)]
        honest = make_proposal(gov_im.record("g0").key, 0, stake, transfers)
        # Tamper the state after signing.
        tampered_state = dict(honest.new_state)
        tampered_state["g0"] += 100
        tampered = NewStateProposal(
            round_number=honest.round_number,
            leader=honest.leader,
            new_state=tampered_state,
            transfers_digest=honest.transfers_digest,
            signature=honest.signature,
        )
        verdict = evaluate_proposal(
            gov_im, gov_im.record("g1").key, tampered, stake, transfers
        )
        assert isinstance(verdict, ExpelEvidence)
        assert "signature" in verdict.reason


class TestCommit:
    def _run_steps(self, gov_im, stake, transfers):
        proposal = make_proposal(gov_im.record("g0").key, 0, stake, transfers)
        acks = [
            evaluate_proposal(gov_im, gov_im.record(g).key, proposal, stake, transfers)
            for g in GOVS
            if g != "g0"
        ]
        return proposal, acks

    def test_full_commit_verifies(self, gov_im, stake):
        proposal, acks = self._run_steps(gov_im, stake, [make_transfer(gov_im)])
        commit = make_commit(proposal, acks)
        verify_commit(gov_im, commit, GOVS)

    def test_missing_ack_rejected(self, gov_im, stake):
        proposal, acks = self._run_steps(gov_im, stake, [make_transfer(gov_im)])
        commit = make_commit(proposal, acks[:-1])
        with pytest.raises(ProtocolViolationError):
            verify_commit(gov_im, commit, GOVS)

    def test_forged_ack_rejected(self, gov_im, stake):
        proposal, acks = self._run_steps(gov_im, stake, [make_transfer(gov_im)])
        forged = StateAck(
            round_number=acks[0].round_number,
            governor=acks[0].governor,
            proposal_digest=acks[0].proposal_digest,
            signature=acks[1].signature,  # someone else's signature
        )
        commit = make_commit(proposal, [forged] + acks[1:])
        with pytest.raises(ProtocolViolationError):
            verify_commit(gov_im, commit, GOVS)


class TestRoundDriver:
    def test_successful_round(self, gov_im, stake):
        driver = StakeConsensusRound(im=gov_im, governors=GOVS)
        commit = driver.run("g0", stake, [make_transfer(gov_im)])
        assert commit.leader == "g0"
        assert len(commit.acks) == 3
        assert driver.messages_exchanged > 0

    def test_message_count_scales_with_transfers(self, gov_im, stake):
        few = StakeConsensusRound(im=gov_im, governors=GOVS)
        few.run("g0", stake, [make_transfer(gov_im)])
        many = StakeConsensusRound(im=gov_im, governors=GOVS)
        many.run(
            "g0",
            stake,
            [make_transfer(gov_im, nonce=i, amount=1) for i in range(4)],
        )
        assert many.messages_exchanged > few.messages_exchanged

    def test_non_governor_leader_rejected(self, gov_im, stake):
        driver = StakeConsensusRound(im=gov_im, governors=GOVS)
        with pytest.raises(ProtocolViolationError):
            driver.run("intruder", stake, [])

    def test_tampered_leader_expelled(self, gov_im, stake):
        transfers = [make_transfer(gov_im)]
        honest = make_proposal(gov_im.record("g0").key, 0, stake, transfers)
        bad_state = dict(honest.new_state)
        bad_state["g0"] += 7
        tampered = NewStateProposal(
            round_number=0,
            leader="g0",
            new_state=bad_state,
            transfers_digest=honest.transfers_digest,
            signature=honest.signature,
        )
        driver = StakeConsensusRound(im=gov_im, governors=GOVS)
        with pytest.raises(LeaderMisbehaviourError):
            driver.run("g0", stake, transfers, tampered_proposal=tampered)
        assert driver.evidence  # accusations were broadcast
