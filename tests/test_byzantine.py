"""Byzantine adversary suite: in-flight tampering, strategic collectors,
governor equivocation — and the auditor/quarantine responses to each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import ViolationType
from repro.byzantine import (
    AdaptiveAttackerBehavior,
    CartelPlan,
    ColludingCollectorBehavior,
    MessageTamperer,
    TamperSpec,
    TwoFacedCollectorBehavior,
    install_equivocation,
    reputation_probe,
)
from repro.core.netengine import NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.crypto.signatures import SigningKey
from repro.exceptions import ConfigurationError
from repro.faults import FaultPlan
from repro.ledger.chain import check_agreement
from repro.ledger.transaction import (
    Label,
    make_labeled_transaction,
    make_signed_transaction,
)
from repro.network.broadcast import SequencedPayload
from repro.network.reliable import ReliableEnvelope
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def make_engine(seed=0, f=0.5, behaviors=None, resilience=False):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=f, delta=0.2),
        behaviors=behaviors,
        seed=seed,
        max_delay=0.05,
        resilience=resilience,
    )
    return engine, topo


def run_rounds(engine, topo, rounds, seed=1, per_round=8, p_valid=0.85):
    workload = BernoulliWorkload(topo.providers, p_valid=p_valid, seed=seed)
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))


def make_upload(n=0, label=Label.VALID):
    provider = SigningKey(owner="p0", secret=b"\x0a" * 32)
    collector = SigningKey(owner="c0", secret=b"\x0b" * 32)
    tx = make_signed_transaction(provider, {"n": n}, timestamp=1.0, nonce=n)
    return make_labeled_transaction(collector, tx, label)


class TestTamperSpec:
    def test_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            TamperSpec(strip_signature=1.5)
        with pytest.raises(ConfigurationError):
            TamperSpec(flip_label=-0.1)
        with pytest.raises(ConfigurationError):
            TamperSpec(replay_horizon=0)

    def test_is_clean(self):
        assert TamperSpec().is_clean
        assert not TamperSpec(corrupt_block=0.1).is_clean


class TestMessageTamperer:
    def test_flip_keeps_signature_and_inverts_label(self):
        tamperer = MessageTamperer(TamperSpec(flip_label=1.0), seed=1)
        upload = make_upload()
        out = tamperer.maybe_tamper("c0", "g0", upload)
        assert out is not None
        assert out.label is Label.INVALID
        assert out.collector_signature == upload.collector_signature
        assert tamperer.stats.flipped == 1

    def test_strip_zeroes_signature_tag(self):
        tamperer = MessageTamperer(TamperSpec(strip_signature=1.0), seed=1)
        out = tamperer.maybe_tamper("c0", "g0", make_upload())
        assert out.collector_signature.tag == b"\x00" * 32
        assert out.label is Label.VALID

    def test_replay_substitutes_stale_upload(self):
        tamperer = MessageTamperer(TamperSpec(replay=1.0), seed=1)
        first = make_upload(n=0)
        # Nothing in history yet: the first message passes untouched.
        assert tamperer.maybe_tamper("c0", "g0", first) is None
        out = tamperer.maybe_tamper("c0", "g0", make_upload(n=1))
        assert out is not None
        assert out.tx.tx_id == first.tx.tx_id
        assert tamperer.stats.replayed == 1

    def test_history_is_per_receiver(self):
        tamperer = MessageTamperer(TamperSpec(replay=1.0), seed=1)
        assert tamperer.maybe_tamper("c0", "g0", make_upload(n=0)) is None
        # Different receiver: its own history is empty, no replay pool.
        assert tamperer.maybe_tamper("c0", "g1", make_upload(n=1)) is None

    def test_rewraps_transport_envelopes(self):
        tamperer = MessageTamperer(TamperSpec(flip_label=1.0), seed=1)
        wrapped = ReliableEnvelope(
            msg_id=1, sender="c0",
            body=SequencedPayload(
                group="uploads", seqno=7, sender="c0", body=make_upload()
            ),
        )
        out = tamperer.maybe_tamper("c0", "g0", wrapped)
        assert isinstance(out, ReliableEnvelope)
        assert out.msg_id == 1
        assert out.body.seqno == 7
        assert out.body.body.label is Label.INVALID

    def test_non_upload_payloads_untouched(self):
        tamperer = MessageTamperer(
            TamperSpec(strip_signature=1.0, flip_label=1.0, replay=1.0), seed=1
        )
        assert tamperer.maybe_tamper("a", "b", "ack") is None

    def test_deterministic(self):
        def decisions(seed):
            tamperer = MessageTamperer(TamperSpec(flip_label=0.5), seed=seed)
            return [
                tamperer.maybe_tamper("c0", "g0", make_upload(n=i)) is not None
                for i in range(20)
            ]

        assert decisions(3) == decisions(3)
        assert tampered_any(decisions(3))


def tampered_any(decisions):
    return any(decisions) and not all(decisions)


class TestTamperedRuns:
    """The engine under an in-flight tamperer: every mode is defused."""

    def test_strip_and_flip_cannot_frame_collectors(self):
        engine, topo = make_engine(seed=10)
        tamperer = MessageTamperer(
            TamperSpec(strip_signature=0.15, flip_label=0.15), seed=11
        )
        engine.install_faults(FaultPlan(seed=12), tamperer=tamperer)
        run_rounds(engine, topo, 4, seed=13)
        engine.finalize()
        assert tamperer.stats.stripped > 0 and tamperer.stats.flipped > 0
        # Tampered uploads fail verification and are dropped unattributed:
        # nobody gets quarantined, no equivocation is ever recorded.
        assert not engine.quarantined_nodes
        for auditor in engine.auditors.values():
            assert not auditor.report.by_type(ViolationType.COLLECTOR_EQUIVOCATION)
        check_agreement(engine.ledgers())

    def test_replay_defused_by_pack_dedup(self):
        engine, topo = make_engine(seed=20)
        tamperer = MessageTamperer(TamperSpec(replay=0.3), seed=21)
        engine.install_faults(FaultPlan(seed=22), tamperer=tamperer)
        run_rounds(engine, topo, 4, seed=23)
        engine.finalize()
        assert tamperer.stats.replayed > 0
        seen: set[str] = set()
        for serial in range(1, engine.store.height + 1):
            for rec in engine.store.retrieve(serial).tx_list:
                assert rec.tx.tx_id not in seen, "replayed tx packed twice"
                seen.add(rec.tx.tx_id)
        check_agreement(engine.ledgers())

    def test_block_corruption_contained_by_store_crosscheck(self):
        engine, topo = make_engine(seed=30)
        tamperer = MessageTamperer(TamperSpec(corrupt_block=0.5), seed=31)
        engine.install_faults(FaultPlan(seed=32), tamperer=tamperer)
        run_rounds(engine, topo, 4, seed=33)
        engine.finalize()
        assert tamperer.stats.blocks_corrupted > 0
        tampers = [
            v
            for auditor in engine.auditors.values()
            for v in auditor.report.by_type(ViolationType.BLOCK_TAMPER)
        ]
        assert tampers, "store cross-check never fired"
        # Containment: every replica appended the authentic copy anyway.
        check_agreement(engine.ledgers())
        for gov in engine.governors.values():
            assert gov.ledger.height == engine.store.height
            gov.ledger.verify_integrity()
        # In-flight corruption is unattributable: nobody was quarantined.
        assert not engine.quarantined_nodes


class TestCartel:
    def test_plan_validates_mode(self):
        with pytest.raises(ConfigurationError):
            CartelPlan(target_provider="p0", mode="bribe")

    def test_cartel_conceals_only_the_target(self):
        plan = CartelPlan(target_provider="p0", mode="conceal")
        rng = np.random.default_rng(0)
        member = ColludingCollectorBehavior(plan)
        target_tx = make_signed_transaction(
            SigningKey(owner="p0", secret=b"\x0a" * 32), "x", 1.0, nonce=0
        )
        other_tx = make_signed_transaction(
            SigningKey(owner="p3", secret=b"\x0c" * 32), "x", 1.0, nonce=0
        )
        assert member.label_for_tx(target_tx, True, rng) is None
        assert member.label_for_tx(other_tx, True, rng) is Label.VALID
        assert member.label_for_tx(other_tx, False, rng) is Label.INVALID
        assert member.suppressed == 1
        inverter = ColludingCollectorBehavior(
            CartelPlan(target_provider="p0", mode="invert")
        )
        assert inverter.label_for_tx(target_tx, True, rng) is Label.INVALID

    def test_cartel_run_stays_safe(self):
        plan = CartelPlan(target_provider="p0", mode="conceal")
        behaviors = {
            "c1": ColludingCollectorBehavior(plan),
            "c2": ColludingCollectorBehavior(plan),
        }
        engine, topo = make_engine(seed=40, behaviors=behaviors)
        run_rounds(engine, topo, 5, seed=41)
        engine.finalize()
        suppressed = sum(b.suppressed for b in behaviors.values())
        assert suppressed > 0
        # Selective concealment is not equivocation: no quarantine.
        assert not engine.quarantined_nodes
        check_agreement(engine.ledgers())


class TestAdaptiveAttacker:
    def test_honest_until_probe_bound(self):
        rng = np.random.default_rng(0)
        attacker = AdaptiveAttackerBehavior(defect_above=1.0, p_defect=1.0)
        assert attacker.label_for(True, rng) is Label.VALID
        assert attacker.defections == 0
        attacker.bind_probe(lambda: 2.0)
        assert attacker.label_for(True, rng) is Label.INVALID
        assert attacker.defections == 1
        attacker.bind_probe(lambda: 0.5)
        assert attacker.label_for(True, rng) is Label.VALID

    def test_probe_reads_live_weights(self):
        attacker = AdaptiveAttackerBehavior(defect_above=0.9, p_defect=0.6)
        engine, topo = make_engine(seed=50, behaviors={"c3": attacker})
        attacker.bind_probe(reputation_probe(engine, "g0", "c3"))
        run_rounds(engine, topo, 6, seed=51)
        engine.finalize()
        assert attacker.defections > 0
        # Defections burn the very weight the strategy conditions on.
        probe = reputation_probe(engine, "g0", "c3")
        assert probe() < 1.0
        check_agreement(engine.ledgers())

    def test_probe_handles_retired_collector(self):
        engine, topo = make_engine(seed=52)
        probe = reputation_probe(engine, "g0", "nope")
        assert probe() == 0.0


class TestTwoFaced:
    def test_period_validated(self):
        with pytest.raises(ConfigurationError):
            TwoFacedCollectorBehavior(period=0)

    def test_conflicting_label_every_period(self):
        rng = np.random.default_rng(0)
        behavior = TwoFacedCollectorBehavior(period=2)
        tx = make_signed_transaction(
            SigningKey(owner="p0", secret=b"\x0a" * 32), "x", 1.0, nonce=0
        )
        assert behavior.conflicting_label_for(tx, Label.VALID, rng) is None
        assert behavior.conflicting_label_for(tx, Label.VALID, rng) is Label.INVALID

    def test_equivocating_collector_is_quarantined(self):
        behaviors = {"c0": TwoFacedCollectorBehavior(period=1)}
        engine, topo = make_engine(seed=60, behaviors=behaviors)
        run_rounds(engine, topo, 3, seed=61)
        engine.finalize()
        assert "c0" in engine.quarantined_nodes
        _t, rnd, node, vtype = engine.quarantine_log[0]
        assert node == "c0" and vtype == "collector-equivocation"
        assert rnd <= 2  # caught within the ISSUE's two-round bar
        for gov in engine.governors.values():
            assert not gov.book.is_registered("c0")
        check_agreement(engine.ledgers())


class TestGovernorEquivocation:
    def test_equivocator_detected_and_quarantined_within_two_rounds(self):
        engine, topo = make_engine(seed=70)
        install_equivocation(engine, "g2", serial=3)
        run_rounds(engine, topo, 6, seed=71)
        engine.finalize()
        assert "g2" in engine.quarantined_nodes
        _t, rnd, node, vtype = engine.quarantine_log[0]
        assert node == "g2" and vtype == "governor-equivocation"
        assert rnd <= 3 + 2, f"quarantine too late (round {rnd})"
        proofs = [
            v
            for auditor in engine.auditors.values()
            for v in auditor.report.by_type(ViolationType.GOVERNOR_EQUIVOCATION)
        ]
        assert proofs
        for violation in proofs:
            assert violation.culprit == "g2"
            assert violation.provable and len(violation.evidence) == 2
            hashes = {vote.block_hash for vote in violation.evidence}
            assert len(hashes) == 2  # genuinely conflicting signed votes
        # Containment: g2 packs no further blocks, honest replicas agree.
        for serial in range(1, engine.store.height + 1):
            block = engine.store.retrieve(serial)
            if block.round_number > rnd:
                assert block.proposer != "g2"
        honest = [
            gov.ledger
            for gid, gov in engine.governors.items()
            if gid not in engine.quarantined_nodes
        ]
        check_agreement(honest)

    def test_detection_without_containment_when_quarantine_off(self):
        from repro.audit import AuditConfig

        topo = Topology.regular(l=8, n=4, m=3, r=2)
        engine = NetworkedProtocolEngine(
            topo,
            ProtocolParams(f=0.5, delta=0.2),
            seed=70,
            max_delay=0.05,
            audit=AuditConfig(quarantine=False),
        )
        install_equivocation(engine, "g2", serial=3)
        run_rounds(engine, topo, 6, seed=71)
        engine.finalize()
        proofs = [
            v
            for auditor in engine.auditors.values()
            for v in auditor.report.by_type(ViolationType.GOVERNOR_EQUIVOCATION)
        ]
        assert proofs  # still detected...
        assert not engine.quarantined_nodes  # ...but never contained

    def test_honest_votes_never_trip_the_auditor(self):
        engine, topo = make_engine(seed=80)
        run_rounds(engine, topo, 4, seed=81)
        engine.finalize()
        assert not engine.quarantined_nodes
        for auditor in engine.auditors.values():
            assert auditor.report.clean, auditor.report.violations
