"""Unit tests for Algorithm 3 (reputation updating)."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams, gamma_for
from repro.core.reputation import ReputationBook
from repro.core.updating import (
    apply_checked_update,
    apply_forge_update,
    apply_reveal_update,
    compute_loss,
)
from repro.ledger.transaction import Label

COLLECTORS = ("c0", "c1", "c2")


def make_book(weights=None) -> ReputationBook:
    book = ReputationBook(governor="g0", initial=1.0)
    for c in COLLECTORS:
        book.register_collector(c, ["p0"])
    for c, w in (weights or {}).items():
        book.vector(c).provider_weights["p0"] = w
    return book


class TestCase1Forge:
    def test_decrements_forge_entry(self):
        book = make_book()
        apply_forge_update(book, "c0")
        assert book.vector("c0").forge == -1


class TestCase2Checked:
    def test_correct_labelers_rewarded(self):
        book = make_book()
        labels = {"c0": Label.VALID, "c1": Label.INVALID}
        apply_checked_update(book, labels, true_label=Label.VALID)
        assert book.vector("c0").misreport == 1
        assert book.vector("c1").misreport == -1

    def test_silent_collectors_unaffected(self):
        book = make_book()
        apply_checked_update(book, {"c0": Label.VALID}, true_label=Label.VALID)
        assert book.vector("c2").misreport == 0

    def test_provider_weights_untouched_by_case2(self):
        book = make_book()
        apply_checked_update(book, {"c0": Label.INVALID}, true_label=Label.VALID)
        assert book.weight("c0", "p0") == 1.0


class TestComputeLoss:
    def test_all_right_zero_loss(self):
        book = make_book()
        loss, w_right, w_wrong = compute_loss(
            book, "p0", {"c0": Label.VALID, "c1": Label.VALID}, Label.VALID
        )
        assert loss == 0.0
        assert w_right == pytest.approx(2.0)
        assert w_wrong == 0.0

    def test_all_wrong_max_loss(self):
        book = make_book()
        loss, _wr, _ww = compute_loss(
            book, "p0", {"c0": Label.INVALID}, Label.VALID
        )
        assert loss == pytest.approx(2.0)

    def test_weighted_loss(self):
        book = make_book({"c0": 3.0, "c1": 1.0})
        loss, _wr, _ww = compute_loss(
            book, "p0", {"c0": Label.VALID, "c1": Label.INVALID}, Label.VALID
        )
        # L = 2 * 1 / (3 + 1) = 0.5
        assert loss == pytest.approx(0.5)

    def test_no_reports_zero_loss(self):
        assert compute_loss(make_book(), "p0", {}, Label.VALID)[0] == 0.0


class TestCase3Reveal:
    def test_outcome_classification(self):
        params = ProtocolParams(beta=0.9)
        book = make_book()
        summary = apply_reveal_update(
            params,
            book,
            "p0",
            COLLECTORS,
            {"c0": Label.VALID, "c1": Label.INVALID},
            true_label=Label.VALID,
        )
        assert summary.outcomes == {"c0": "correct", "c1": "wrong", "c2": "missed"}

    def test_multiplicative_factors_applied(self):
        params = ProtocolParams(beta=0.9)
        book = make_book()
        summary = apply_reveal_update(
            params,
            book,
            "p0",
            COLLECTORS,
            {"c0": Label.VALID, "c1": Label.INVALID},
            true_label=Label.VALID,
        )
        assert book.weight("c0", "p0") == 1.0
        assert book.weight("c1", "p0") == pytest.approx(summary.gamma)
        assert book.weight("c2", "p0") == pytest.approx(0.9)

    def test_gamma_matches_paper_rule(self):
        params = ProtocolParams(beta=0.9)
        book = make_book({"c0": 1.0, "c1": 1.0})
        summary = apply_reveal_update(
            params, book, "p0", COLLECTORS,
            {"c0": Label.VALID, "c1": Label.INVALID}, true_label=Label.VALID,
        )
        assert summary.loss == pytest.approx(1.0)  # 2*1/(1+1)
        assert summary.gamma == pytest.approx(gamma_for(0.9, 1.0))

    def test_invalid_truth_swaps_right_and_wrong(self):
        params = ProtocolParams(beta=0.9)
        book = make_book()
        summary = apply_reveal_update(
            params, book, "p0", COLLECTORS,
            {"c0": Label.VALID, "c1": Label.INVALID}, true_label=Label.INVALID,
        )
        assert summary.outcomes["c0"] == "wrong"
        assert summary.outcomes["c1"] == "correct"

    def test_loss_uses_book_at_reveal_time(self):
        params = ProtocolParams(beta=0.9)
        book = make_book({"c0": 0.25, "c1": 1.0})
        summary = apply_reveal_update(
            params, book, "p0", COLLECTORS,
            {"c0": Label.INVALID, "c1": Label.VALID}, true_label=Label.VALID,
        )
        # W_wrong = 0.25, W_right = 1.0 -> L = 0.5/1.25 = 0.4
        assert summary.loss == pytest.approx(0.4)
        assert summary.w_right == pytest.approx(1.0)
        assert summary.w_wrong == pytest.approx(0.25)
