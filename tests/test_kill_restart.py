"""Kill-restart chaos harness: SIGKILL a live node, restart, converge.

A subprocess runs the CLI ``durable`` scenario against a temp ledger
directory, printing a flushed ``round k tip=...`` marker after every
fsynced round. The harness SIGKILLs it mid-run (after at least one
marker, i.e. with durable state guaranteed on disk), then restarts the
node *in-process* on the same directory and lets it rejoin from an
uncrashed reference replica.

Acceptance (ISSUE 6): the restarted node reaches a bit-identical tip
with zero SafetyAuditor violations.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.workloads.scenarios import DURABLE_SCENARIOS, build_durable_engine

SCENARIO = "durable-smoke"
SEED = 11
_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_reference():
    engine, workload, scenario = build_durable_engine(SCENARIO, seed=SEED)
    for _ in range(scenario.rounds):
        engine.run_round(workload.take(scenario.batch))
    engine.finalize()
    assert engine.harness_auditor.report.clean
    return engine, scenario


def _spawn_node(directory):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "durable",
            "--preset", SCENARIO, "--seed", str(SEED),
            "--dir", str(directory), "--round-delay", "0.25",
        ],
        cwd=_REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _kill_after_marker(proc, markers_wanted=1, deadline_s=60.0):
    """Read child stdout until enough round markers flush, then SIGKILL."""
    seen = 0
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        line = proc.stdout.readline()
        if line == "":  # child exited before we killed it
            break
        if line.startswith("round "):
            seen += 1
            if seen >= markers_wanted:
                break
    try:
        proc.kill()
    except ProcessLookupError:
        pass
    proc.wait(timeout=30)
    proc.stdout.close()
    return seen


@pytest.mark.disk_chaos
def test_sigkill_mid_round_then_restart_reaches_identical_tip(tmp_path):
    reference, scenario = _run_reference()
    ref_tip = reference.store.tip_hash()
    ref_height = reference.store.height

    ledger_dir = tmp_path / "ledger"
    proc = _spawn_node(ledger_dir)
    markers = _kill_after_marker(proc, markers_wanted=2)
    assert markers >= 1, "child died before producing any durable round"

    # Restart on the crash-scarred directory. Recovery must only ever
    # hand back a verified prefix of the reference chain.
    engine, _, _ = build_durable_engine(SCENARIO, seed=SEED, storage_dir=ledger_dir)
    report = engine.recovery_report
    assert report is not None
    assert engine.store.height <= ref_height
    for block in report.blocks:
        assert block.hash() == reference.store.retrieve(block.serial).hash()
    for bad in report.corruptions:
        # A SIGKILL can only tear the tail of the log; anything else
        # would mean recovery misclassified the damage.
        assert bad.kind in ("torn-tail", "dropped-suffix"), bad

    # Rejoin: pull exactly the suffix the disk lacks from the reference.
    pulled = engine.sync_from_peer(reference.store)
    assert pulled == ref_height - report.height
    assert engine.store.height == ref_height
    assert engine.store.tip_hash() == ref_tip

    # Zero safety violations across recovery + rejoin, replicas aligned.
    assert engine.harness_auditor.report.clean, (
        engine.harness_auditor.report.violations
    )
    for gov in engine.governors.values():
        assert gov.ledger.height == ref_height
        assert gov.ledger.tip_hash() == ref_tip


@pytest.mark.disk_chaos
def test_restarted_node_keeps_committing(tmp_path):
    """After crash + recovery + rejoin, the node makes progress again."""
    reference, scenario = _run_reference()
    ledger_dir = tmp_path / "ledger"
    proc = _spawn_node(ledger_dir)
    assert _kill_after_marker(proc, markers_wanted=1) >= 1

    engine, workload, _ = build_durable_engine(
        SCENARIO, seed=SEED, storage_dir=ledger_dir
    )
    engine.sync_from_peer(reference.store)
    # Skip the workload prefix the reference already committed so the
    # extra rounds carry fresh (not duplicate-filtered) transactions.
    for _ in range(scenario.rounds):
        workload.take(scenario.batch)
    before = engine.store.height
    for _ in range(2):
        engine.run_round(workload.take(scenario.batch))
    engine.finalize()
    assert engine.store.height > before
    assert engine.harness_auditor.report.clean

    # And those post-recovery blocks are durable in their own right.
    reopened = build_durable_engine(SCENARIO, seed=SEED, storage_dir=ledger_dir)[0]
    assert reopened.store.tip_hash() == engine.store.tip_hash()
    assert reopened.recovery_report.clean


@pytest.mark.disk_chaos
def test_restart_races_in_flight_checkpoint(tmp_path):
    """A crash mid-checkpoint-write must degrade, not derail, recovery.

    Two artefacts of the race are planted: the orphaned ``.json.tmp``
    of a checkpoint that never reached its atomic rename, and a newest
    checkpoint file torn mid-write.  Restart must ignore the former,
    flag the latter as ``checkpoint-corrupt``, fall back to the
    previous verified checkpoint, and still hand back a verified
    prefix that rejoins to the reference tip cleanly.
    """
    reference, scenario = _run_reference()
    ledger_dir = tmp_path / "ledger"
    writer, workload, _ = build_durable_engine(
        SCENARIO, seed=SEED, storage_dir=ledger_dir
    )
    for _ in range(scenario.rounds):
        writer.run_round(workload.take(scenario.batch))
    writer.finalize()
    ckpts = sorted(ledger_dir.glob("checkpoint-*.json"))
    assert len(ckpts) >= 2, "scenario too small to exercise the race"

    (ledger_dir / "checkpoint-99999999.json.tmp").write_text(
        '{"checkpoint": {"serial":'  # crash before os.replace
    )
    torn = ckpts[-1]
    torn.write_bytes(torn.read_bytes()[: torn.stat().st_size // 2])

    engine, _, _ = build_durable_engine(SCENARIO, seed=SEED, storage_dir=ledger_dir)
    report = engine.recovery_report
    assert report is not None
    assert any(
        bad.kind == "checkpoint-corrupt" and bad.target == torn.name
        for bad in report.corruptions
    ), report.corruptions
    assert not any("tmp" in bad.target for bad in report.corruptions)
    # Degraded to the previous *verified* checkpoint, not to garbage.
    assert report.checkpoint is not None
    assert report.checkpoint.serial == int(ckpts[-2].stem.split("-")[1])

    # The recovered prefix is still a verified prefix of the reference.
    assert engine.store.height <= reference.store.height
    for block in report.blocks:
        assert block.hash() == reference.store.retrieve(block.serial).hash()

    engine.sync_from_peer(reference.store)
    assert engine.store.height == reference.store.height
    assert engine.store.tip_hash() == reference.store.tip_hash()
    assert engine.harness_auditor.report.clean, (
        engine.harness_auditor.report.violations
    )


def test_durable_scenarios_registered():
    assert SCENARIO in DURABLE_SCENARIOS
    assert DURABLE_SCENARIOS[SCENARIO].rounds >= 4