"""Cross-shard chaos: receipts under duplication, crashes, reshuffles.

Each test drives a 2-shard :class:`~repro.sharding.ShardCoordinator`
through a targeted failure while cross-shard receipts are in flight and
asserts the atomicity contract survives: every receipt commits exactly
once on its remote shard (never lost, never replayed), the cross-shard
auditor stays clean, and identically seeded reruns are bit-identical.

The three schedules are the ones ISSUE'd for the nightly soak: a
fault-injector duplicating the relay traffic, a remote leader crash
racing the relay window, and an epoch reshuffle landing while receipts
are still pending.
"""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.faults import FaultPlan, LinkFaultSpec
from repro.ledger.properties import check_all_properties
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.sharding import ShardCoordinator
from repro.workloads.generator import BernoulliWorkload
from repro.workloads.xshard import CrossShardWorkload

pytestmark = pytest.mark.chaos

PARAMS = ProtocolParams(f=0.5, delta=0.2, b_limit=16)


def build(seed=3, p_cross=0.5, obs=None, resilience=True):
    sharded = Topology.sharded(l=8, n=4, m=4, r=2, shards=2)
    coordinator = ShardCoordinator(
        sharded, PARAMS, seed=seed, resilience=resilience, obs=obs
    )
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner, sharded.provider_shard, p_cross=p_cross, seed=seed + 2
    )
    return coordinator, workload


def committed_receipt_ids(coordinator):
    """Every receipt id present in any shard's chain, with multiplicity."""
    landed = []
    for engine in coordinator.engines:
        for serial in range(1, engine.store.height + 1):
            for record in engine.store.retrieve(serial).tx_list:
                payload = record.tx.body.payload
                if isinstance(payload, dict) and "xshard_receipt" in payload:
                    landed.append(payload["xshard_receipt"])
    return landed


def assert_exactly_once(coordinator, report):
    assert report.clean, [str(v) for v in report.violations]
    assert coordinator.auditor.pending() == []
    landed = committed_receipt_ids(coordinator)
    assert len(landed) == len(set(landed)), "a receipt was replayed into a block"
    assert landed, "schedule generated no cross-shard traffic"
    for engine in coordinator.engines:
        assert check_all_properties(engine.ledgers(), engine.transcript).all_hold


class TestDuplicateReceiptDelivery:
    def run_once(self, seed=3):
        registry = MetricsRegistry()
        coordinator, workload = build(seed=seed, obs=registry)
        # Duplicate half of all messages on both shards — relays (which
        # are not fault-exempt) get re-delivered alongside retries.
        for k in (0, 1):
            coordinator.install_faults(
                k,
                FaultPlan(seed=seed + 10 + k).with_default_link(
                    LinkFaultSpec(duplicate=0.5)
                ),
            )
        for _ in range(4):
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
        report = coordinator.finalize()
        return coordinator, report, registry

    def test_duplicates_never_reach_a_block(self):
        coordinator, report, registry = self.run_once()
        assert_exactly_once(coordinator, report)
        # The dedup layer actually fired: duplicated deliveries (and the
        # coordinator's own retry relays) were absorbed at the buffer.
        dups = registry.counter(
            "shard_receipt_dups_total", "Receipt deliveries dropped as duplicates"
        )
        assert sum(dups._values.values()) > 0

    def test_schedule_is_deterministic(self):
        a, _, _ = self.run_once()
        b, _, _ = self.run_once()
        assert a.tip_hashes() == b.tip_hashes()
        assert a.committed_total == b.committed_total


class TestReceiptReplayRegression:
    """Pin the PR-5 pack-time replay hole (found while verifying PR 7).

    At S=4, seed=11, ``FaultPlan(seed=61+k)`` with loss=0.02/dup=0.05, a
    duplicated relay arriving between one leader's pack and the block's
    observation used to be re-buffered at the *next* round's leader —
    whose ``_ingest_receipt`` dedup ran before ``_applied_receipt_ids``
    learned the id — and committed twice (a ``receipt-replay`` auditor
    violation). ``_receipt_records`` now re-checks the applied set at
    pack time; this schedule reproduced the replay deterministically
    before the fix.
    """

    def run_pinned(self):
        sharded = Topology.sharded(l=16, n=8, m=8, r=2, shards=4)
        coordinator = ShardCoordinator(sharded, PARAMS, seed=11, resilience=True)
        for k in range(4):
            coordinator.install_faults(
                k,
                FaultPlan(seed=61 + k).with_default_link(
                    LinkFaultSpec(loss=0.02, duplicate=0.05)
                ),
            )
        providers = [p for topo in sharded.shards for p in topo.providers]
        inner = BernoulliWorkload(providers, p_valid=0.8, seed=12)
        workload = CrossShardWorkload(
            inner, sharded.provider_shard, p_cross=0.3, seed=13
        )
        for _ in range(6):
            coordinator.submit(workload.take(48))
            coordinator.run_super_round()
        report = coordinator.finalize()
        return coordinator, report

    def test_pinned_seed_commits_each_receipt_once(self):
        coordinator, report = self.run_pinned()
        assert_exactly_once(coordinator, report)

    def test_pinned_schedule_is_deterministic(self):
        a, _ = self.run_pinned()
        b, _ = self.run_pinned()
        assert a.tip_hashes() == b.tip_hashes()
        assert a.committed_total == b.committed_total


class TestRelayRacesLeaderCrash:
    def test_remote_leader_crash_mid_relay(self):
        coordinator, workload = build(seed=7)
        remote = coordinator.engines[1]
        # Round 1 home-commits cross transactions; their receipts are
        # relayed right after, due to land in round 2's blocks.
        coordinator.submit(workload.take(16))
        coordinator.run_super_round()
        assert coordinator._pending, "no receipt in flight to race"
        # Crash the remote shard's current leader before it can pack
        # them — volatile receipt buffers are lost with it.
        victim = remote.election.run(remote.stake, remote._round + 1)
        remote.crash_governor(victim)
        coordinator.submit(workload.take(16))
        coordinator.run_super_round()
        remote.recover_governor(victim)
        for _ in range(2):
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
        report = coordinator.finalize()
        assert_exactly_once(coordinator, report)

    def test_crash_schedule_is_deterministic(self):
        def run():
            coordinator, workload = build(seed=7)
            remote = coordinator.engines[1]
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
            victim = remote.election.run(remote.stake, remote._round + 1)
            remote.crash_governor(victim)
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
            remote.recover_governor(victim)
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
            coordinator.finalize()
            return coordinator.tip_hashes(), coordinator.committed_total

        assert run() == run()


class TestReshuffleMidRelay:
    def test_epoch_reshuffle_lands_between_legs(self):
        coordinator, workload = build(seed=11)
        coordinator.submit(workload.take(16))
        coordinator.run_super_round()
        assert coordinator._pending, "no receipt in flight to disturb"
        # Force the epoch boundary while receipts await their remote
        # leg: collectors migrate, books churn, slots are re-bootstrapped.
        moves = coordinator.reshuffle()
        assert moves, "reshuffle produced no migration; schedule is vacuous"
        for _ in range(3):
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
        report = coordinator.finalize()
        assert_exactly_once(coordinator, report)

    def test_reshuffle_schedule_is_deterministic(self):
        def run():
            coordinator, workload = build(seed=11)
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
            coordinator.reshuffle()
            coordinator.submit(workload.take(16))
            coordinator.run_super_round()
            coordinator.finalize()
            return (
                coordinator.tip_hashes(),
                coordinator.committed_total,
                coordinator.reshuffle_log,
            )

        assert run() == run()
