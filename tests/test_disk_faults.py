"""Adversarial disk-fault matrix: every corruption detected, never loaded.

The contract under test (ISSUE 6): for every seeded
:class:`~repro.faults.DiskFaultPlan` kind, at every crash point,

* recovery never silently loads a corrupt block — whatever it returns
  is a verified prefix of the original chain;
* the damage is *visible* — either a ``StorageCorruption`` entry in the
  report or (for the frame-aligned ``lost_fsync`` / ``missing_checkpoint``
  kinds) a recovered height strictly below the pre-crash height;
* the node degrades gracefully: after reopening the faulted directory,
  peer sync rebuilds the exact original tip.

Crash points: height 7 (one checkpoint old, first compaction barely
done) and height 20 (multiple checkpoints, compacted prefix).
"""

from __future__ import annotations

import shutil

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import ConfigurationError
from repro.faults import DISK_FAULT_KINDS, DiskFaultPlan
from repro.ledger.block import Block
from repro.ledger.transaction import CheckStatus, Label, TxRecord, make_signed_transaction
from repro.storage import StorageConfig, open_durable_store, recover

KEY = SigningKey(owner="p0", secret=b"\x33" * 32)
_NONCE = iter(range(1_000_000))

CRASH_POINTS = (7, 20)
CHECKPOINT_INTERVAL = 6


def _grow(store, n):
    prev = store.tip_hash()
    blocks = []
    for serial in range(store.height + 1, store.height + 1 + n):
        tx = make_signed_transaction(KEY, f"b{serial}", 1.0, nonce=next(_NONCE))
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        block = Block(
            serial=serial, tx_list=(rec,), prev_hash=prev,
            proposer="g0", round_number=serial,
        )
        store.publish(block)
        blocks.append(block)
        prev = block.hash()
    return blocks


def _config(directory) -> StorageConfig:
    return StorageConfig(
        directory=directory,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        segment_bytes=700,
    )


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """height -> (directory, blocks) for each crash point, built once."""
    out = {}
    for height in CRASH_POINTS:
        directory = tmp_path_factory.mktemp(f"ledger-{height}")
        store, _ = open_durable_store(_config(directory))
        out[height] = (directory, _grow(store, height))
    return out


class TestDiskFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskFaultPlan().with_fault("set-disk-on-fire")

    def test_plan_is_deterministic(self, pristine, tmp_path):
        src, _ = pristine[20]
        results = []
        for run in range(2):
            work = tmp_path / f"run{run}"
            shutil.copytree(src, work)
            applied = DiskFaultPlan(seed=5).with_fault("bit_flip").apply(work)
            results.append([(a.kind, a.target, a.detail) for a in applied])
        assert results[0] == results[1]

    def test_apply_on_empty_dir_skips(self, tmp_path):
        plan = DiskFaultPlan(seed=1)
        for kind in DISK_FAULT_KINDS:
            plan = plan.with_fault(kind)
        assert plan.apply(tmp_path) == []


@pytest.mark.disk_chaos
@pytest.mark.parametrize("height", CRASH_POINTS)
@pytest.mark.parametrize("kind", DISK_FAULT_KINDS)
class TestDiskFaultMatrix:
    def _faulted_copy(self, pristine, tmp_path, height, kind, seed=9):
        src, blocks = pristine[height]
        work = tmp_path / "faulted"
        shutil.copytree(src, work)
        applied = DiskFaultPlan(seed=seed).with_fault(kind).apply(work)
        assert applied, f"{kind} found no target at height {height}"
        return work, blocks

    def test_detected_and_prefix_verified(self, pristine, tmp_path, height, kind):
        work, blocks = self._faulted_copy(pristine, tmp_path, height, kind)
        report = recover(work)
        # Never silently loaded: the recovered state is a strict prefix
        # of the original chain, hash-for-hash.
        assert report.height <= height
        by_serial = {b.serial: b for b in blocks}
        for block in report.blocks:
            assert block.hash() == by_serial[block.serial].hash()
        if report.base_serial:
            assert report.base_hash == by_serial[report.base_serial].hash()
        # Visible damage: a corruption entry, or lost durable state.
        assert report.corruptions or report.height < height, (
            f"{kind} at height {height} was silently absorbed"
        )

    def test_degrades_to_peer_sync(self, pristine, tmp_path, height, kind):
        work, blocks = self._faulted_copy(pristine, tmp_path, height, kind)
        store, report = open_durable_store(_config(work))
        # The replay-from-last-good-checkpoint (or genesis, or nothing)
        # store accepts the missing suffix from a peer and converges.
        for block in blocks[store.height :]:
            store.publish(block)
        assert store.height == height
        assert store.tip_hash() == blocks[-1].hash()
        # And the repaired directory reopens clean.
        reopened, second = open_durable_store(_config(work))
        assert second.clean, second.corruptions
        assert reopened.tip_hash() == blocks[-1].hash()


@pytest.mark.disk_chaos
def test_multi_fault_pileup_still_detected(pristine, tmp_path):
    """Several simultaneous faults must not cancel each other out."""
    src, blocks = pristine[20]
    work = tmp_path / "pileup"
    shutil.copytree(src, work)
    plan = (
        DiskFaultPlan(seed=13)
        .with_fault("bit_flip")
        .with_fault("torn_record")
        .with_fault("corrupt_checkpoint")
    )
    # Faults can collide (e.g. torn_record finds no intact final frame
    # after bit_flip hit the same segment) and skip; at least two land.
    assert len(plan.apply(work)) >= 2
    report = recover(work)
    assert report.corruptions
    by_serial = {b.serial: b for b in blocks}
    for block in report.blocks:
        assert block.hash() == by_serial[block.serial].hash()
    store, _ = open_durable_store(_config(work))
    for block in blocks[store.height :]:
        store.publish(block)
    assert store.tip_hash() == blocks[-1].hash()