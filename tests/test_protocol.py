"""Integration tests for the full protocol engine."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    ForgeBehavior,
    MisreportBehavior,
)
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError
from repro.ledger.chain import check_agreement
from repro.ledger.properties import check_all_properties
from repro.ledger.transaction import CheckStatus, Label
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def make_engine(f=0.5, behaviors=None, seed=0, m=4, leader_rotation=False, stake=None):
    topo = Topology.regular(l=8, n=4, m=m, r=2)
    params = ProtocolParams(f=f)
    return (
        ProtocolEngine(
            topo, params, behaviors=behaviors, seed=seed,
            leader_rotation=leader_rotation, stake=stake,
        ),
        topo,
    )


def run_rounds(engine, topo, rounds=5, per_round=16, p_valid=0.8, seed=7):
    workload = BernoulliWorkload(topo.providers, p_valid=p_valid, seed=seed)
    results = [engine.run_round(workload.take(per_round)) for _ in range(rounds)]
    return results


class TestBasicExecution:
    def test_blocks_appended_every_round(self):
        engine, topo = make_engine()
        results = run_rounds(engine, topo, rounds=5)
        assert engine.store.height == 5
        assert [r.block.serial for r in results] == [1, 2, 3, 4, 5]

    def test_agreement_across_governors(self):
        engine, topo = make_engine()
        run_rounds(engine, topo, rounds=6)
        check_agreement(engine.ledgers())

    def test_all_five_properties_hold(self):
        behaviors = {"c0": MisreportBehavior(0.4), "c1": ConcealBehavior(0.5)}
        engine, topo = make_engine(behaviors=behaviors)
        run_rounds(engine, topo, rounds=10)
        engine.finalize()
        report = check_all_properties(engine.ledgers(), engine.transcript)
        assert report.all_hold, report.violations

    def test_deterministic_in_seed(self):
        e1, t1 = make_engine(seed=3)
        e2, t2 = make_engine(seed=3)
        r1 = run_rounds(e1, t1, rounds=3)
        r2 = run_rounds(e2, t2, rounds=3)
        assert [r.block.hash() for r in r1] == [r.block.hash() for r in r2]

    def test_unknown_behavior_collector_rejected(self):
        topo = Topology.regular(l=8, n=4, m=4, r=2)
        with pytest.raises(ConfigurationError):
            ProtocolEngine(topo, ProtocolParams(), behaviors={"cX": MisreportBehavior(0.1)})

    def test_oversized_round_rejected(self):
        engine, topo = make_engine()
        workload = BernoulliWorkload(topo.providers, seed=1)
        with pytest.raises(ConfigurationError):
            engine.run_round(workload.take(ProtocolParams().b_limit + 1))

    def test_leader_rotation_mode(self):
        engine, topo = make_engine(leader_rotation=True)
        results = run_rounds(engine, topo, rounds=4)
        assert [r.leader for r in results] == ["g0", "g1", "g2", "g3"]


class TestForgeries:
    def test_forged_uploads_caught_and_excluded(self):
        engine, topo = make_engine(behaviors={"c0": ForgeBehavior(1.0)})
        run_rounds(engine, topo, rounds=4)
        engine.finalize()
        assert engine.metrics.forged_uploads == 4  # one per round
        for gov in engine.governors.values():
            assert gov.metrics.forgeries_caught == 4
            assert gov.book.vector("c0").forge == -4
        # Forged transactions never enter any block (Almost No Creation).
        report = check_all_properties(engine.ledgers(), engine.transcript)
        assert report.almost_no_creation


class TestArgueLoop:
    def test_mislabeled_valid_tx_reevaluated(self):
        # Heavy misreporting + high f => unchecked-invalid records for
        # valid transactions => argues => re-evaluated in a later block.
        behaviors = {f"c{i}": AlwaysInvertBehavior() for i in range(3)}
        engine, topo = make_engine(f=0.9, behaviors=behaviors, seed=5)
        results = run_rounds(engine, topo, rounds=20, p_valid=0.9)
        engine.finalize()
        assert engine.metrics.argues_total > 0
        reevaluated = [
            rec
            for r in results
            for rec in r.block.tx_list
            if rec.status is CheckStatus.REEVALUATED
        ]
        assert reevaluated
        assert all(rec.label is Label.VALID for rec in reevaluated)

    def test_validity_property_with_argues(self):
        behaviors = {f"c{i}": AlwaysInvertBehavior() for i in range(2)}
        engine, topo = make_engine(f=0.8, behaviors=behaviors, seed=9)
        run_rounds(engine, topo, rounds=15, p_valid=0.9)
        # One extra empty round so last-round argues land in a block.
        engine.run_round([])
        engine.finalize()
        report = check_all_properties(engine.ledgers(), engine.transcript)
        assert report.validity, report.violations


class TestRewards:
    def test_rewards_paid_every_round(self):
        engine, topo = make_engine()
        results = run_rounds(engine, topo, rounds=3)
        for r in results:
            assert sum(r.rewards.values()) == pytest.approx(
                ProtocolParams().reward_pool_per_block
            )

    def test_dishonest_collector_earns_less_over_time(self):
        behaviors = {"c0": MisreportBehavior(0.8)}
        engine, topo = make_engine(f=0.7, behaviors=behaviors, seed=2)
        run_rounds(engine, topo, rounds=20)
        paid = engine.metrics.rewards_paid
        honest_avg = sum(paid[c] for c in ("c1", "c2", "c3")) / 3
        assert paid["c0"] < honest_avg


class TestStake:
    def test_stake_transfer_runs_consensus(self):
        engine, topo = make_engine(stake={"g0": 4, "g1": 2, "g2": 1, "g3": 1})
        msgs = engine.transfer_stake("g0", "g1", 2)
        assert msgs > 0
        assert engine.stake.balance("g0") == 2
        assert engine.stake.balance("g1") == 4
        assert engine.metrics.stake_messages == msgs

    def test_transfer_beyond_balance_fails(self):
        engine, _topo = make_engine(stake={"g0": 1, "g1": 1, "g2": 1, "g3": 1})
        with pytest.raises(Exception):
            engine.transfer_stake("g0", "g1", 5)

    def test_unknown_stake_governor_rejected(self):
        topo = Topology.regular(l=8, n=4, m=4, r=2)
        with pytest.raises(ConfigurationError):
            ProtocolEngine(topo, ProtocolParams(), stake={"gX": 1})


class TestMessageAccounting:
    def test_provider_messages_count(self):
        engine, topo = make_engine()
        run_rounds(engine, topo, rounds=2, per_round=10)
        # Each tx goes to r = 2 collectors.
        assert engine.metrics.provider_messages == 2 * 10 * 2

    def test_collector_messages_scale_with_m(self):
        e4, t4 = make_engine(m=4)
        run_rounds(e4, t4, rounds=2, per_round=10)
        e8, t8 = make_engine(m=8)
        run_rounds(e8, t8, rounds=2, per_round=10)
        assert e8.metrics.collector_messages == 2 * e4.metrics.collector_messages


class TestLemma2InEngine:
    def test_unchecked_rate_below_f(self):
        """Lemma 2 end-to-end: unchecked fraction <= f (plus noise)."""
        behaviors = {"c0": MisreportBehavior(0.5), "c1": AlwaysInvertBehavior()}
        f = 0.6
        engine, topo = make_engine(f=f, behaviors=behaviors, seed=21)
        run_rounds(engine, topo, rounds=30, per_round=20, p_valid=0.5)
        for gov in engine.governors.values():
            rate = gov.metrics.unchecked / gov.metrics.transactions_screened
            assert rate <= f + 0.05


class TestAbusiveProviders:
    def test_spurious_argues_burn_validations_but_not_correctness(self):
        topo = Topology.regular(l=8, n=4, m=4, r=2)
        behaviors = {"c0": MisreportBehavior(0.3)}

        def run(abuse):
            engine = ProtocolEngine(
                topo, ProtocolParams(f=0.9), behaviors=dict(behaviors),
                seed=6,
                abusive_providers=(
                    {p: 1.0 for p in topo.providers} if abuse else None
                ),
            )
            workload = BernoulliWorkload(topo.providers, p_valid=0.5, seed=7)
            for _ in range(15):
                engine.run_round(workload.take(16))
            engine.run_round([])
            engine.finalize()
            return engine

        honest = run(abuse=False)
        abused = run(abuse=True)
        # Griefing burns extra validations...
        assert abused.metrics.argues_total > honest.metrics.argues_total
        # ...but never corrupts the chain.
        from repro.ledger.properties import check_all_properties

        report = check_all_properties(abused.ledgers(), abused.transcript)
        assert report.all_hold, report.violations
        spurious = sum(p.spurious_argues for p in abused.providers.values())
        assert spurious > 0

    def test_unknown_abusive_provider_rejected(self):
        topo = Topology.regular(l=8, n=4, m=4, r=2)
        with pytest.raises(ConfigurationError):
            ProtocolEngine(
                topo, ProtocolParams(f=0.5), abusive_providers={"pX": 0.5}
            )
