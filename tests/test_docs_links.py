"""Wrap tools/check_docs.py so local pytest catches doc rot.

CI runs the script directly; this keeps the same guarantee in every
plain `pytest tests/` run, and pins the checker's own behaviour.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def checker():
    path = ROOT / "tools" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_have_no_broken_links(checker):
    errors = []
    for path in checker.markdown_files(ROOT):
        errors.extend(checker.check_file(path, ROOT))
    assert not errors, "\n".join(errors)


def test_repo_docs_are_scanned(checker):
    names = {p.name for p in checker.markdown_files(ROOT)}
    assert {"README.md", "DESIGN.md", "PAPER_MAP.md", "OBSERVABILITY.md"} <= names


class TestCheckerBehaviour:
    def test_detects_all_break_modes(self, checker, tmp_path):
        (tmp_path / "b.md").write_text("# Other\n\n## Real Section\n")
        (tmp_path / "a.md").write_text(
            "# One\n"
            "[ok](b.md) [ok2](b.md#real-section) [self](#one)\n"
            "[bad](gone.md) [badanchor](b.md#nope) [badself](#zzz)\n"
            "```\n[fenced](alsogone.md)\n```\n"
            "[ext](https://example.com/x#y)\n"
        )
        errors = checker.check_file(tmp_path / "a.md", tmp_path)
        assert len(errors) == 3
        assert any("gone.md" in e for e in errors)
        assert any("b.md#nope" in e for e in errors)
        assert any("#zzz" in e for e in errors)

    def test_github_slugs(self, checker):
        assert checker.github_slug("3. Metric reference") == "3-metric-reference"
        assert (
            checker.github_slug("Fault model (repro.faults)")
            == "fault-model-reprofaults"
        )
        assert (
            checker.github_slug("6. `BENCH_*.json` — machine-readable benchmark results")
            == "6-bench_json--machine-readable-benchmark-results"
        )

    def test_duplicate_headings_get_suffixes(self, checker, tmp_path):
        doc = tmp_path / "d.md"
        doc.write_text("# Same\n\n# Same\n")
        assert checker.heading_slugs(doc) == {"same", "same-1"}
