"""Multi-core shard execution: the process-pool backend contract.

The tentpole guarantees under test:

* **bit-identity** — a parallel run (any worker count, including
  several shards co-hosted per worker) produces exactly the ledgers,
  clock, and audit verdicts of the serial coordinator for the same
  seed, under faults, cross-shard traffic, and epoch reshuffles;
* **crash handling** — a SIGKILLed or hung worker surfaces as a
  structured :class:`~repro.exceptions.WorkerCrashError` at the phase
  barrier, never a hang, and (with durable storage) the worker can be
  respawned from its checkpoints and the deployment keeps committing;
* **IPC discipline** — commands and receipt batches travel as one
  message per worker per phase, accounted by the ``par_ipc_*``
  counters.

Everything here spawns real processes, so the module is marked
``parallel`` (CI runs it in its own job).
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.params import ProtocolParams
from repro.exceptions import (
    ConfigurationError,
    WorkerCrashError,
)
from repro.faults.plan import FaultPlan, LinkFaultSpec
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.sharding import ShardCoordinator
from repro.storage import StorageConfig
from repro.workloads.generator import BernoulliWorkload
from repro.workloads.xshard import CrossShardWorkload

pytestmark = pytest.mark.parallel

PARAMS = ProtocolParams(f=0.5, delta=0.2, b_limit=16)


def build(shards=2, workers=None, seed=3, epoch_rounds=None, l=8, n=4, m=4,
          r=2, faults=False, **kwargs):
    sharded = Topology.sharded(l=l, n=n, m=m, r=r, shards=shards)
    coordinator = ShardCoordinator(
        sharded, PARAMS, seed=seed, epoch_rounds=epoch_rounds,
        resilience=faults, workers=workers, **kwargs
    )
    if faults:
        for k in range(shards):
            plan = FaultPlan(seed=seed + 50 + k).with_default_link(
                LinkFaultSpec(loss=0.02, duplicate=0.05)
            )
            coordinator.install_faults(k, plan)
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner, sharded.provider_shard, p_cross=0.3, seed=seed + 2
    )
    return coordinator, workload


def drive(coordinator, workload, rounds=4, batch=32):
    for _ in range(rounds):
        coordinator.submit(workload.take(batch))
        coordinator.run_super_round()
    return coordinator.finalize()


def fingerprint(coordinator, workload, rounds=4, **kwargs):
    """Run a deployment to completion and capture its determinism state."""
    report = drive(coordinator, workload, rounds=rounds)
    state = {
        "tips": coordinator.tip_hashes(),
        "committed": coordinator.committed_total,
        "now": coordinator.now,
        "clean": report.clean,
        "stats": coordinator.chain_stats(),
        "reshuffles": [
            (r, e, moves) for r, e, moves in coordinator.reshuffle_log
        ],
    }
    coordinator.close()
    return state


class TestBitIdentity:
    def test_parallel_matches_serial_under_faults_and_reshuffles(self):
        serial = fingerprint(
            *build(shards=2, workers=None, epoch_rounds=2, faults=True)
        )
        parallel = fingerprint(
            *build(shards=2, workers=2, epoch_rounds=2, faults=True)
        )
        assert parallel == serial
        assert serial["clean"]
        assert all(s.properties_hold for s in serial["stats"])

    def test_multiple_shards_per_worker(self):
        # 4 shards on 2 workers: co-hosted engines keep private clocks
        # and stay bit-identical to the serial run.
        serial = fingerprint(
            *build(shards=4, workers=None, l=16, n=8, m=8, epoch_rounds=3)
        )
        parallel = fingerprint(
            *build(shards=4, workers=2, l=16, n=8, m=8, epoch_rounds=3)
        )
        assert parallel == serial

    def test_worker_count_capped_at_shard_count(self):
        coordinator, workload = build(shards=2, workers=8)
        assert coordinator.backend.num_workers == 2
        report = drive(coordinator, workload, rounds=2)
        assert report.clean
        coordinator.close()


class TestBackendSurface:
    def test_engines_and_sim_are_serial_only(self):
        coordinator, _ = build(shards=2, workers=2)
        try:
            with pytest.raises(ConfigurationError):
                _ = coordinator.engines
            with pytest.raises(ConfigurationError):
                _ = coordinator.sim
            # The backend-neutral surface still works.
            assert len(coordinator.tip_hashes()) == 2
            assert len(coordinator.chain_stats()) == 2
        finally:
            coordinator.close()

    def test_unpicklable_behaviors_rejected(self):
        sharded = Topology.sharded(l=8, n=4, m=4, r=2, shards=2)
        cid = sharded.shards[0].collectors[0]
        with pytest.raises(ConfigurationError, match="picklable"):
            ShardCoordinator(
                sharded, PARAMS, behaviors={cid: lambda: None}, workers=2
            )

    def test_tamperer_rejected_on_parallel_backend(self):
        coordinator, _ = build(shards=2, workers=2)
        try:
            plan = FaultPlan(seed=1)
            with pytest.raises(ConfigurationError, match="tamperer"):
                coordinator.install_faults(0, plan, tamperer=object())
        finally:
            coordinator.close()

    def test_ipc_is_batched_and_counted(self):
        registry = MetricsRegistry()
        coordinator, workload = build(shards=2, workers=2, obs=registry)
        try:
            drive(coordinator, workload, rounds=2)
            msgs = registry.get("par_ipc_msgs_total")
            sent = msgs.value_of(direction="send")
            received = msgs.value_of(direction="recv")
            assert sent > 0 and received > 0
            bytes_total = registry.get("par_ipc_bytes_total")
            assert bytes_total.value_of(direction="send") > sent  # > 1 B/msg
            # Batching bound: per super-round the driver issues a fixed
            # command set (carryover, begin_round, run x2, begin_argue,
            # complete, scan, <=2 relay/mass ops) per worker — far fewer
            # than one message per receipt/spec would produce.
            rounds_total = 2 + 6  # driven + finalize-flush bound
            assert sent <= rounds_total * 12 * coordinator.backend.num_workers
        finally:
            coordinator.close()


class TestCrashHandling:
    def test_sigkilled_worker_surfaces_as_structured_fault(self):
        registry = MetricsRegistry()
        coordinator, workload = build(
            shards=2, workers=2, obs=registry, worker_timeout=30.0
        )
        try:
            coordinator.submit(workload.take(32))
            coordinator.run_super_round()
            victim = coordinator.backend._workers[0]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=10.0)
            coordinator.submit(workload.take(32))
            with pytest.raises(WorkerCrashError) as err:
                coordinator.run_super_round()
            assert err.value.worker == 0
            assert err.value.shards == (0,)
            assert err.value.phase  # the in-flight phase is named
            crashes = registry.get("par_worker_crashes_total")
            assert sum(v for _, v in crashes.samples()) == 1
        finally:
            coordinator.close()

    def test_hung_worker_trips_barrier_timeout(self):
        coordinator, workload = build(
            shards=2, workers=2, worker_timeout=3.0
        )
        try:
            coordinator.submit(workload.take(32))
            coordinator.run_super_round()
            victim = coordinator.backend._workers[1]
            os.kill(victim.proc.pid, signal.SIGSTOP)
            try:
                coordinator.submit(workload.take(32))
                with pytest.raises(WorkerCrashError, match="barrier timeout"):
                    coordinator.run_super_round()
            finally:
                if victim.proc.is_alive():  # reaped by the crash path
                    os.kill(victim.proc.pid, signal.SIGKILL)
        finally:
            coordinator.close()

    def test_restart_without_storage_refused(self):
        coordinator, _ = build(shards=2, workers=2)
        try:
            with pytest.raises(ConfigurationError, match="durable storage"):
                coordinator.restart_worker(0)
        finally:
            coordinator.close()

    def test_restart_resumes_from_durable_storage(self, tmp_path):
        storage = [
            StorageConfig(
                directory=tmp_path / f"shard-{k}",
                checkpoint_interval=2,
                fsync=False,
            )
            for k in range(2)
        ]
        coordinator, workload = build(
            shards=2, workers=2, storage=storage, worker_timeout=30.0
        )
        try:
            for _ in range(3):
                coordinator.submit(workload.take(32))
                coordinator.run_super_round()
            heights_before = [s.height for s in coordinator.chain_stats()]
            victim = coordinator.backend._workers[0]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=10.0)
            coordinator.submit(workload.take(32))
            with pytest.raises(WorkerCrashError):
                coordinator.run_super_round()
            coordinator.restart_worker(0)
            # The respawned worker re-anchored shard 0 from its durable
            # segments; the deployment keeps committing on every shard.
            for _ in range(3):
                coordinator.submit(workload.take(32))
                coordinator.run_super_round()
            report = coordinator.finalize()
            heights_after = [s.height for s in coordinator.chain_stats()]
            assert all(
                after > before
                for before, after in zip(heights_before, heights_after)
            )
            assert not report.violations or all(
                v.type.value != "receipt-replay" for v in report.violations
            )
        finally:
            coordinator.close()

    def test_restart_reapplies_installed_fault_plans(self, tmp_path):
        storage = [
            StorageConfig(
                directory=tmp_path / f"shard-{k}",
                checkpoint_interval=2,
                fsync=False,
            )
            for k in range(2)
        ]
        coordinator, workload = build(
            shards=2, workers=2, faults=True, storage=storage,
            worker_timeout=30.0,
        )
        try:
            for _ in range(2):
                coordinator.submit(workload.take(32))
                coordinator.run_super_round()
            before = coordinator.backend.fault_stats()
            assert all(s is not None for s in before.values())
            victim = coordinator.backend._workers[0]
            os.kill(victim.proc.pid, signal.SIGKILL)
            victim.proc.join(timeout=10.0)
            coordinator.submit(workload.take(32))
            with pytest.raises(WorkerCrashError):
                coordinator.run_super_round()
            coordinator.restart_worker(0)
            # The replacement got shard 0's plan back: a live injector is
            # installed immediately after the respawn...
            stats = coordinator.backend.fault_stats()
            assert all(s is not None for s in stats.values())
            restarted_seen = stats[0].messages_seen
            for _ in range(3):
                coordinator.submit(workload.take(32))
                coordinator.run_super_round()
            # ...and it keeps filtering traffic (the old behaviour ran the
            # replacement fault-free, so seen/dropped stayed frozen).
            after = coordinator.backend.fault_stats()
            assert after[0].messages_seen > restarted_seen
            assert after[0].dropped + after[0].duplicated > 0
            report = coordinator.finalize()
            assert not report.violations or all(
                v.type.value != "receipt-replay" for v in report.violations
            )
        finally:
            coordinator.close()
