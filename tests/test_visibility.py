"""Tests for partial governor visibility."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import MisreportBehavior
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import TopologyError
from repro.ledger.chain import check_agreement
from repro.network.topology import Topology
from repro.network.visibility import VisibilityMap
from repro.workloads.generator import BernoulliWorkload


@pytest.fixture
def topo():
    return Topology.regular(l=8, n=4, m=3, r=2)


class TestVisibilityMap:
    def test_full_map(self, topo):
        vmap = VisibilityMap.full(topo)
        vmap.validate(topo)
        assert vmap.mean_visibility(topo) == 1.0
        assert vmap.sees("g0", "c3")

    def test_random_partial_respects_coverage(self, topo):
        vmap = VisibilityMap.random_partial(topo, keep_fraction=0.0, seed=4)
        vmap.validate(topo)  # coverage built in even at keep = 0
        assert 0 < vmap.mean_visibility(topo) <= 1.0

    def test_random_partial_deterministic(self, topo):
        a = VisibilityMap.random_partial(topo, 0.3, seed=5)
        b = VisibilityMap.random_partial(topo, 0.3, seed=5)
        assert a.visible == b.visible

    def test_keep_one_is_full(self, topo):
        vmap = VisibilityMap.random_partial(topo, keep_fraction=1.0, seed=6)
        assert vmap.mean_visibility(topo) == 1.0

    def test_invalid_fraction(self, topo):
        with pytest.raises(TopologyError):
            VisibilityMap.random_partial(topo, 1.5)

    def test_missing_governor_rejected(self, topo):
        vmap = VisibilityMap({"g0": frozenset(topo.collectors)})
        with pytest.raises(TopologyError):
            vmap.validate(topo)

    def test_unknown_collector_rejected(self, topo):
        vmap = VisibilityMap(
            {g: frozenset(topo.collectors) | {"ghost"} for g in topo.governors}
        )
        with pytest.raises(TopologyError):
            vmap.validate(topo)

    def test_coverage_violation_rejected(self, topo):
        # g0 sees only collectors not linked with p0.
        linked_to_p0 = set(topo.collectors_of("p0"))
        others = frozenset(set(topo.collectors) - linked_to_p0)
        vis = {g: frozenset(topo.collectors) for g in topo.governors}
        vis["g0"] = others
        with pytest.raises(TopologyError):
            VisibilityMap(vis).validate(topo)

    def test_unknown_governor_lookup(self, topo):
        with pytest.raises(TopologyError):
            VisibilityMap.full(topo).collectors_for("g99")


class TestEngineWithVisibility:
    def test_engine_runs_under_partial_visibility(self, topo):
        vmap = VisibilityMap.random_partial(topo, keep_fraction=0.3, seed=7)
        engine = ProtocolEngine(
            topo, ProtocolParams(f=0.5), seed=8, visibility=vmap
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=9)
        for _ in range(5):
            engine.run_round(workload.take(8))
        engine.finalize()
        check_agreement(engine.ledgers())
        assert engine.store.height == 5

    def test_invisible_collector_not_in_book(self, topo):
        vis = {g: frozenset(topo.collectors) for g in topo.governors}
        # g0 keeps coverage but drops one collector it can spare.
        drop = None
        for candidate in topo.collectors:
            trial = frozenset(set(topo.collectors) - {candidate})
            try:
                VisibilityMap({**vis, "g0": trial}).validate(topo)
            except TopologyError:
                continue
            drop = candidate
            vis["g0"] = trial
            break
        if drop is None:
            pytest.skip("no sparable collector in this topology")
        engine = ProtocolEngine(
            topo, ProtocolParams(f=0.5), seed=8, visibility=VisibilityMap(vis)
        )
        assert drop not in set(engine.governors["g0"].book.collectors())
        assert drop in set(engine.governors["g1"].book.collectors())

    def test_partial_governor_still_learns(self, topo):
        """A governor that sees the misreporter still demotes it."""
        vmap = VisibilityMap.full(topo)
        engine = ProtocolEngine(
            topo, ProtocolParams(f=0.7),
            behaviors={"c0": MisreportBehavior(0.8)},
            seed=10,
            visibility=vmap,
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=11)
        for _ in range(20):
            engine.run_round(workload.take(8))
        engine.finalize()
        gov = engine.governors["g0"]
        provider = topo.providers_of("c0")[0]
        assert gov.book.weight("c0", provider) < 1.0
