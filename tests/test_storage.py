"""Durable storage: segment log, checkpoints, recovery, engine wiring."""

from __future__ import annotations

import json

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.chain import Ledger, check_agreement
from repro.ledger.store import BlockStore
from repro.ledger.sync import sync_replica
from repro.ledger.transaction import CheckStatus, Label, TxRecord, make_signed_transaction
from repro.obs import MetricsRegistry
from repro.storage import (
    Checkpoint,
    StorageConfig,
    load_checkpoints,
    open_durable_store,
    recover,
    scan_segments,
)
from repro.storage.checkpoints import write_checkpoint
from repro.storage.segments import SegmentLog, read_manifest

KEY = SigningKey(owner="p0", secret=b"\x21" * 32)
_NONCE = iter(range(1_000_000))


def make_block(serial: int, prev: bytes, payload: str = "x") -> Block:
    tx = make_signed_transaction(KEY, f"{payload}{serial}", 1.0, nonce=next(_NONCE))
    rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
    return Block(
        serial=serial, tx_list=(rec,), prev_hash=prev,
        proposer="g0", round_number=serial,
    )


def grow(store, n: int) -> list[Block]:
    """Extend ``store`` by ``n`` linked blocks."""
    prev = store.tip_hash()
    blocks = []
    for serial in range(store.height + 1, store.height + 1 + n):
        block = make_block(serial, prev)
        store.publish(block)
        blocks.append(block)
        prev = block.hash()
    return blocks


def durable(tmp_path, **overrides) -> StorageConfig:
    defaults = dict(directory=tmp_path, checkpoint_interval=5, segment_bytes=700)
    defaults.update(overrides)
    return StorageConfig(**defaults)


class TestSegmentLog:
    def test_append_scan_roundtrip(self, tmp_path):
        log = SegmentLog(tmp_path, segment_bytes=128)
        payloads = [f"payload-{i}".encode() for i in range(1, 8)]
        for i, payload in enumerate(payloads, start=1):
            log.append(i, payload)
        records, corruptions = scan_segments(tmp_path)
        assert not corruptions
        assert [r.serial for r in records] == list(range(1, 8))
        assert [r.payload for r in records] == payloads

    def test_segments_roll_at_size(self, tmp_path):
        log = SegmentLog(tmp_path, segment_bytes=64)
        for i in range(1, 6):
            log.append(i, b"z" * 40)
        assert len(log.segment_paths()) == 5  # one frame each
        assert log.segments_created == 4

    def test_oversized_record_still_lands(self, tmp_path):
        log = SegmentLog(tmp_path, segment_bytes=32)
        log.append(1, b"a" * 100)  # larger than a whole segment
        records, corruptions = scan_segments(tmp_path)
        assert not corruptions and len(records) == 1

    def test_truncate_before_keeps_covering_segment(self, tmp_path):
        log = SegmentLog(tmp_path, segment_bytes=64)
        for i in range(1, 7):
            log.append(i, b"z" * 40)
        removed = log.truncate_before(4)
        assert removed == 3
        records, _ = scan_segments(tmp_path)
        assert [r.serial for r in records] == [4, 5, 6]

    def test_manifest_roundtrip_and_corruption(self, tmp_path):
        SegmentLog(tmp_path).append(1, b"x")
        body, bad = read_manifest(tmp_path)
        assert bad is None and body["segments"] == ["segment-000001.log"]
        (tmp_path / "manifest.json").write_text("{not json")
        body, bad = read_manifest(tmp_path)
        assert body is None and bad.kind == "manifest-corrupt"

    def test_torn_tail_detected_and_prefix_survives(self, tmp_path):
        log = SegmentLog(tmp_path)
        log.append(1, b"first")
        log.append(2, b"second")
        path = log.active_path
        path.write_bytes(path.read_bytes()[:-3])
        records, corruptions = scan_segments(tmp_path)
        assert [r.serial for r in records] == [1]
        assert [c.kind for c in corruptions] == ["torn-tail"]

    def test_mid_log_corruption_drops_suffix(self, tmp_path):
        log = SegmentLog(tmp_path, segment_bytes=16)  # one frame per segment
        for i in range(1, 4):
            log.append(i, b"p" * 8)
        first = log.segment_paths()[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0xFF  # payload byte -> CRC mismatch
        first.write_bytes(bytes(data))
        records, corruptions = scan_segments(tmp_path)
        assert records == []  # nothing after the bad frame is trusted
        kinds = [c.kind for c in corruptions]
        assert "crc-mismatch" in kinds and "dropped-suffix" in kinds


class TestCheckpoints:
    def _chain_hashes(self, n):
        store = BlockStore()
        return [b.hash() for b in grow(store, n)], store

    def test_write_load_verify(self, tmp_path):
        hashes, store = self._chain_hashes(4)
        ckpt = Checkpoint(
            serial=4, tip_hash=hashes[-1], book_digest=b"d" * 32,
            window_start=0, window_hashes=tuple(hashes),
            prev_root=b"\x00" * 32,
            root=Checkpoint.compute_root(b"\x00" * 32, hashes),
        )
        write_checkpoint(tmp_path, ckpt)
        loaded, bad = load_checkpoints(tmp_path)
        assert not bad and loaded == [ckpt]

    def test_tampered_file_reported(self, tmp_path):
        hashes, _ = self._chain_hashes(2)
        ckpt = Checkpoint(
            serial=2, tip_hash=hashes[-1], book_digest=b"",
            window_start=0, window_hashes=tuple(hashes),
            prev_root=b"\x00" * 32,
            root=Checkpoint.compute_root(b"\x00" * 32, hashes),
        )
        path = write_checkpoint(tmp_path, ckpt)
        doc = json.loads(path.read_text())
        doc["checkpoint"]["serial"] = 3  # CRC now stale
        path.write_text(json.dumps(doc))
        loaded, bad = load_checkpoints(tmp_path)
        assert loaded == [] and bad[0].kind == "checkpoint-corrupt"

    def test_wrong_merkle_root_rejected(self, tmp_path):
        hashes, _ = self._chain_hashes(2)
        ckpt = Checkpoint(
            serial=2, tip_hash=hashes[-1], book_digest=b"",
            window_start=0, window_hashes=tuple(hashes),
            prev_root=b"\x00" * 32, root=b"\xab" * 32,  # bogus
        )
        assert not ckpt.verify()

    def test_retention_prunes_old_files(self, tmp_path):
        prev_root = b"\x00" * 32
        store = BlockStore()
        start = 0
        for k in range(4):
            hashes = [b.hash() for b in grow(store, 2)]
            ckpt = Checkpoint(
                serial=store.height, tip_hash=hashes[-1], book_digest=b"",
                window_start=start, window_hashes=tuple(hashes),
                prev_root=prev_root,
                root=Checkpoint.compute_root(prev_root, hashes),
            )
            write_checkpoint(tmp_path, ckpt, retain=2)
            prev_root, start = ckpt.root, store.height
        files = sorted(p.name for p in tmp_path.glob("checkpoint-*.json"))
        assert files == ["checkpoint-00000006.json", "checkpoint-00000008.json"]


class TestDurableStore:
    def test_reopen_restores_identical_chain(self, tmp_path):
        cfg = durable(tmp_path)
        store, report = open_durable_store(cfg)
        assert report.height == 0 and report.clean
        grow(store, 12)
        tip = store.tip_hash()
        reopened, report2 = open_durable_store(cfg)
        assert report2.clean
        assert reopened.height == 12 and reopened.tip_hash() == tip

    def test_compaction_truncates_and_anchors(self, tmp_path):
        cfg = durable(tmp_path)
        store, _ = open_durable_store(cfg)
        grow(store, 17)  # checkpoints at 5, 10, 15
        records, _ = scan_segments(tmp_path)
        assert records[0].serial >= 11  # pre-checkpoint segments compacted
        reopened, report = open_durable_store(cfg)
        assert report.clean
        assert reopened.base_serial == 15
        assert reopened.height == 17 and reopened.tip_hash() == store.tip_hash()

    def test_append_resumes_across_reopen(self, tmp_path):
        cfg = durable(tmp_path)
        store, _ = open_durable_store(cfg)
        grow(store, 7)
        second, _ = open_durable_store(cfg)
        grow(second, 7)
        third, report = open_durable_store(cfg)
        assert report.clean and third.height == 14
        assert third.tip_hash() == second.tip_hash()

    def test_no_checkpoints_replays_from_genesis(self, tmp_path):
        cfg = durable(tmp_path, checkpoint_interval=0)
        store, _ = open_durable_store(cfg)
        grow(store, 9)
        reopened, report = open_durable_store(cfg)
        assert report.clean and reopened.base_serial == 0
        assert reopened.height == 9 and len(report.blocks) == 9

    def test_out_of_order_publish_rejected(self, tmp_path):
        store, _ = open_durable_store(durable(tmp_path))
        blocks = grow(store, 1)
        gap = make_block(3, blocks[-1].hash())
        with pytest.raises(LedgerError):
            store.publish(gap)

    def test_republish_is_noop_on_disk(self, tmp_path):
        store, _ = open_durable_store(durable(tmp_path))
        blocks = grow(store, 3)
        store.publish(blocks[1])  # duplicate
        records, _ = scan_segments(tmp_path)
        assert [r.serial for r in records] == [1, 2, 3]

    def test_metrics_flow(self, tmp_path):
        from repro.storage.durable import storage_metrics

        reg = MetricsRegistry()
        cfg = durable(tmp_path)
        store, _ = open_durable_store(cfg, obs=reg)
        grow(store, 11)
        metrics = storage_metrics(reg)  # idempotent fetch of the same handles
        assert metrics["records"].value == 11
        assert metrics["checkpoints"].value == 2
        assert metrics["bytes"].value > 0
        assert metrics["ckpt_age"].value == 1.0

    def test_recovery_metrics_flow(self, tmp_path):
        from repro.storage.durable import storage_metrics

        cfg = durable(tmp_path, checkpoint_interval=0)
        store, _ = open_durable_store(cfg)
        grow(store, 4)
        path = sorted(tmp_path.glob("segment-*.log"))[-1]
        path.write_bytes(path.read_bytes()[:-2])  # torn tail
        reg = MetricsRegistry()
        reopened, report = open_durable_store(cfg, obs=reg)
        metrics = storage_metrics(reg)
        assert metrics["corruptions"].value_of(kind="torn-tail") == 1
        assert metrics["recovered"].value_of(source="disk") == 3
        assert metrics["replay_s"].value > 0


class TestRecoveryStateMachine:
    def test_tampered_payload_with_fixed_crc_still_detected(self, tmp_path):
        """CRC-valid but hash-invalid records fail at decode_block."""
        import struct
        import zlib

        cfg = durable(tmp_path, checkpoint_interval=0)
        store, _ = open_durable_store(cfg)
        grow(store, 3)
        path = sorted(tmp_path.glob("segment-*.log"))[0]
        data = bytearray(path.read_bytes())
        header = struct.Struct("<IIQ")
        length, _, serial = header.unpack_from(data, 0)
        payload = bytearray(data[header.size : header.size + length])
        # Flip the proposer inside the JSON and "fix" the frame CRC.
        fixed = bytes(payload).replace(b'"g0"', b'"gX"')
        data[header.size : header.size + length] = fixed
        header.pack_into(data, 0, length, zlib.crc32(fixed), serial)
        path.write_bytes(bytes(data))
        report = recover(tmp_path)
        assert any(c.kind == "record-decode" for c in report.corruptions)
        assert report.height == 0  # nothing after the tamper is loaded

    def test_chain_break_truncates_suffix(self, tmp_path):
        cfg = durable(tmp_path, checkpoint_interval=0, segment_bytes=10_000)
        store, _ = open_durable_store(cfg)
        grow(store, 2)
        # Append a validly-framed block that does not link to the tip.
        orphan = make_block(3, b"\x77" * 32)
        store._log.append(
            3,
            json.dumps(
                __import__("repro.ledger.codec", fromlist=["encode_block"]).encode_block(
                    orphan
                ),
                sort_keys=True,
                separators=(",", ":"),
            ).encode(),
        )
        report = recover(tmp_path)
        assert report.height == 2
        assert any(c.kind == "chain-break" for c in report.corruptions)

    def test_unanchored_segments_degrade_to_checkpoint(self, tmp_path):
        cfg = durable(tmp_path)
        store, _ = open_durable_store(cfg)
        grow(store, 12)  # checkpoints at 5, 10; compaction active
        # Delete the newest checkpoint files' segment anchor: wipe all
        # checkpoints, leaving post-compaction segments unanchored.
        for path in tmp_path.glob("checkpoint-*.json"):
            path.unlink()
        report = recover(tmp_path)
        assert any(c.kind == "unanchored-segments" for c in report.corruptions)
        assert report.height == 0  # nothing silently loaded

    def test_recovery_report_summary_mentions_state(self, tmp_path):
        store, _ = open_durable_store(durable(tmp_path))
        grow(store, 3)
        report = recover(tmp_path)
        assert "recovered height 3" in report.summary()
        assert "clean" in report.summary()


class TestAnchoredLedger:
    def test_from_checkpoint_appends_and_verifies(self):
        store = BlockStore()
        blocks = grow(store, 6)
        replica = Ledger.from_checkpoint("late", serial=4, tip_hash=blocks[3].hash())
        assert sync_replica(replica, store) == 2
        assert replica.height == 6 and replica.base_serial == 4
        replica.verify_integrity()
        assert replica.tip_hash() == store.tip_hash()

    def test_retrieve_below_base_raises(self):
        store = BlockStore()
        blocks = grow(store, 5)
        replica = Ledger.from_checkpoint("late", serial=3, tip_hash=blocks[2].hash())
        sync_replica(replica, store)
        from repro.exceptions import BlockNotFoundError

        with pytest.raises(BlockNotFoundError):
            replica.retrieve(2)
        assert replica.retrieve(4).serial == 4

    def test_agreement_across_mixed_bases(self):
        store = BlockStore()
        blocks = grow(store, 8)
        full = Ledger(owner="full")
        for block in blocks:
            full.append(block)
        anchored = Ledger.from_checkpoint("cut", serial=5, tip_hash=blocks[4].hash())
        sync_replica(anchored, store)
        check_agreement([full, anchored])  # must not raise

    def test_malformed_anchor_rejected(self):
        with pytest.raises(LedgerError):
            Ledger.from_checkpoint("bad", serial=0, tip_hash=b"\x00" * 32)
        with pytest.raises(LedgerError):
            Ledger.from_checkpoint("bad", serial=3, tip_hash=b"short")


class TestEngineDurability:
    def test_durable_run_bit_identical_to_memory(self, tmp_path):
        from repro.workloads.scenarios import build_durable_engine

        mem, wl_mem, sc = build_durable_engine("durable-smoke", seed=7)
        dur, wl_dur, _ = build_durable_engine(
            "durable-smoke", seed=7, storage_dir=tmp_path
        )
        for _ in range(3):
            mem.run_round(wl_mem.take(sc.batch))
            dur.run_round(wl_dur.take(sc.batch))
        assert dur.store.tip_hash() == mem.store.tip_hash()
        assert dur.store.height == mem.store.height == 3

    def test_restart_reanchors_governor_replicas(self, tmp_path):
        from repro.workloads.scenarios import build_durable_engine

        first, wl, sc = build_durable_engine("durable-smoke", seed=7, storage_dir=tmp_path)
        for _ in range(4):
            first.run_round(wl.take(sc.batch))
        restarted, _, _ = build_durable_engine(
            "durable-smoke", seed=7, storage_dir=tmp_path
        )
        assert restarted.recovery_report.clean
        assert restarted.store.height == 4
        assert restarted.store.tip_hash() == first.store.tip_hash()
        for gov in restarted.governors.values():
            assert gov.ledger.height == 4
            gov.ledger.verify_integrity()

    def test_sync_from_peer_fills_suffix_only(self, tmp_path):
        from repro.workloads.scenarios import build_durable_engine

        reference, wl_ref, sc = build_durable_engine("durable-smoke", seed=7)
        for _ in range(sc.rounds):
            reference.run_round(wl_ref.take(sc.batch))

        crashed, wl_c, _ = build_durable_engine(
            "durable-smoke", seed=7, storage_dir=tmp_path
        )
        for _ in range(3):
            crashed.run_round(wl_c.take(sc.batch))
        restarted, _, _ = build_durable_engine(
            "durable-smoke", seed=7, storage_dir=tmp_path
        )
        assert restarted.store.height == 3  # disk had the prefix
        pulled = restarted.sync_from_peer(reference.store)
        assert pulled == sc.rounds - 3
        assert restarted.store.tip_hash() == reference.store.tip_hash()
        assert restarted.harness_auditor.report.clean
        for gov in restarted.governors.values():
            assert gov.ledger.height == reference.store.height