"""Unit tests for atomic (total-order) broadcast."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.broadcast import AtomicBroadcast
from repro.network.simnet import Simulator, SyncNetwork


def build(members=("x", "y", "z"), max_delay=0.5, seed=3):
    sim = Simulator(seed=0)
    net = SyncNetwork(sim, min_delay=0.0, max_delay=max_delay, seed=seed)
    ab = AtomicBroadcast(net)
    ab.create_group("G", list(members))
    delivered = {m: [] for m in members}
    for m in members:
        net.register(m, lambda msg, m=m: ab.on_message(m, msg))
        ab.register_handler("G", m, lambda sender, body, m=m: delivered[m].append((sender, body)))
    return sim, net, ab, delivered


class TestGroups:
    def test_duplicate_group_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        ab.create_group("G", ["a"])
        with pytest.raises(SimulationError):
            ab.create_group("G", ["a"])

    def test_duplicate_members_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        with pytest.raises(SimulationError):
            ab.create_group("G", ["a", "a"])

    def test_unknown_group_broadcast_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        with pytest.raises(SimulationError):
            ab.broadcast("nope", "a", "x")

    def test_members_of(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        ab.create_group("G", ["a", "b"])
        assert ab.members_of("G") == ["a", "b"]

    def test_handler_for_non_member_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        ab.create_group("G", ["a"])
        with pytest.raises(SimulationError):
            ab.register_handler("G", "z", lambda s, b: None)


class TestTotalOrder:
    def test_all_members_deliver_same_sequence(self):
        sim, _net, ab, delivered = build()
        # Interleave broadcasts from two senders with random delays.
        for i in range(20):
            sender = "x" if i % 2 == 0 else "y"
            ab.broadcast("G", sender, f"m{i}")
        sim.run()
        assert delivered["x"] == delivered["y"] == delivered["z"]
        assert len(delivered["x"]) == 20

    def test_delivery_respects_sequence_numbers(self):
        sim, _net, ab, delivered = build()
        seqnos = [ab.broadcast("G", "x", f"m{i}") for i in range(5)]
        assert seqnos == [0, 1, 2, 3, 4]
        sim.run()
        assert [body for _s, body in delivered["z"]] == [f"m{i}" for i in range(5)]

    def test_out_of_order_arrival_buffered(self):
        # Large delay spread: later-seqno messages can arrive first, yet
        # delivery order must follow seqno.
        sim, _net, ab, delivered = build(max_delay=2.0, seed=99)
        for i in range(30):
            ab.broadcast("G", "x", i)
        sim.run()
        assert [body for _s, body in delivered["y"]] == list(range(30))

    def test_non_member_sender_allowed(self):
        sim, _net, ab, delivered = build()
        # Providers broadcast into collector groups without membership.
        ab.network.register("outsider", lambda m: None)
        ab.broadcast("G", "outsider", "hello")
        sim.run()
        assert delivered["x"] == [("outsider", "hello")]

    def test_delivered_count(self):
        sim, _net, ab, delivered = build()
        for i in range(7):
            ab.broadcast("G", "x", i)
        sim.run()
        assert ab.delivered_count("G", "y") == 7
        assert ab.delivered_count("G", "nobody") == 0

    def test_independent_groups_have_independent_orders(self):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim, min_delay=0.0, max_delay=0.1, seed=5)
        ab = AtomicBroadcast(net)
        ab.create_group("G1", ["a"])
        ab.create_group("G2", ["a"])
        got = {"G1": [], "G2": []}
        net.register("a", lambda msg: ab.on_message("a", msg))
        ab.register_handler("G1", "a", lambda s, b: got["G1"].append(b))
        ab.register_handler("G2", "a", lambda s, b: got["G2"].append(b))
        ab.broadcast("G1", "s", 1)
        ab.broadcast("G2", "s", 2)
        ab.broadcast("G1", "s", 3)
        sim.run()
        assert got["G1"] == [1, 3]
        assert got["G2"] == [2]

    def test_non_broadcast_message_passes_through(self):
        sim, net, ab, _delivered = build()
        other = []
        def route(msg):
            if not ab.on_message("x", msg):
                other.append(msg.payload)
        net.register("x", route)
        net.send("y", "x", "raw-payload")
        sim.run()
        assert other == ["raw-payload"]
