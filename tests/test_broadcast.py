"""Unit tests for atomic (total-order) broadcast."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.broadcast import AtomicBroadcast
from repro.network.simnet import Simulator, SyncNetwork


def build(members=("x", "y", "z"), max_delay=0.5, seed=3):
    sim = Simulator(seed=0)
    net = SyncNetwork(sim, min_delay=0.0, max_delay=max_delay, seed=seed)
    ab = AtomicBroadcast(net)
    ab.create_group("G", list(members))
    delivered = {m: [] for m in members}
    for m in members:
        net.register(m, lambda msg, m=m: ab.on_message(m, msg))
        ab.register_handler("G", m, lambda sender, body, m=m: delivered[m].append((sender, body)))
    return sim, net, ab, delivered


class TestGroups:
    def test_duplicate_group_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        ab.create_group("G", ["a"])
        with pytest.raises(SimulationError):
            ab.create_group("G", ["a"])

    def test_duplicate_members_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        with pytest.raises(SimulationError):
            ab.create_group("G", ["a", "a"])

    def test_unknown_group_broadcast_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        with pytest.raises(SimulationError):
            ab.broadcast("nope", "a", "x")

    def test_members_of(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        ab.create_group("G", ["a", "b"])
        assert ab.members_of("G") == ["a", "b"]

    def test_handler_for_non_member_rejected(self):
        sim = Simulator()
        ab = AtomicBroadcast(SyncNetwork(sim))
        ab.create_group("G", ["a"])
        with pytest.raises(SimulationError):
            ab.register_handler("G", "z", lambda s, b: None)


class TestTotalOrder:
    def test_all_members_deliver_same_sequence(self):
        sim, _net, ab, delivered = build()
        # Interleave broadcasts from two senders with random delays.
        for i in range(20):
            sender = "x" if i % 2 == 0 else "y"
            ab.broadcast("G", sender, f"m{i}")
        sim.run()
        assert delivered["x"] == delivered["y"] == delivered["z"]
        assert len(delivered["x"]) == 20

    def test_delivery_respects_sequence_numbers(self):
        sim, _net, ab, delivered = build()
        seqnos = [ab.broadcast("G", "x", f"m{i}") for i in range(5)]
        assert seqnos == [0, 1, 2, 3, 4]
        sim.run()
        assert [body for _s, body in delivered["z"]] == [f"m{i}" for i in range(5)]

    def test_out_of_order_arrival_buffered(self):
        # Large delay spread: later-seqno messages can arrive first, yet
        # delivery order must follow seqno.
        sim, _net, ab, delivered = build(max_delay=2.0, seed=99)
        for i in range(30):
            ab.broadcast("G", "x", i)
        sim.run()
        assert [body for _s, body in delivered["y"]] == list(range(30))

    def test_non_member_sender_allowed(self):
        sim, _net, ab, delivered = build()
        # Providers broadcast into collector groups without membership.
        ab.network.register("outsider", lambda m: None)
        ab.broadcast("G", "outsider", "hello")
        sim.run()
        assert delivered["x"] == [("outsider", "hello")]

    def test_delivered_count(self):
        sim, _net, ab, delivered = build()
        for i in range(7):
            ab.broadcast("G", "x", i)
        sim.run()
        assert ab.delivered_count("G", "y") == 7
        assert ab.delivered_count("G", "nobody") == 0

    def test_independent_groups_have_independent_orders(self):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim, min_delay=0.0, max_delay=0.1, seed=5)
        ab = AtomicBroadcast(net)
        ab.create_group("G1", ["a"])
        ab.create_group("G2", ["a"])
        got = {"G1": [], "G2": []}
        net.register("a", lambda msg: ab.on_message("a", msg))
        ab.register_handler("G1", "a", lambda s, b: got["G1"].append(b))
        ab.register_handler("G2", "a", lambda s, b: got["G2"].append(b))
        ab.broadcast("G1", "s", 1)
        ab.broadcast("G2", "s", 2)
        ab.broadcast("G1", "s", 3)
        sim.run()
        assert got["G1"] == [1, 3]
        assert got["G2"] == [2]

    def test_non_broadcast_message_passes_through(self):
        sim, net, ab, _delivered = build()
        other = []
        def route(msg):
            if not ab.on_message("x", msg):
                other.append(msg.payload)
        net.register("x", route)
        net.send("y", "x", "raw-payload")
        sim.run()
        assert other == ["raw-payload"]


class TestMisroutedPayloads:
    def test_foreign_group_payload_dropped_not_passed_through(self):
        """A SequencedPayload for a group the member is not in must be
        consumed (and counted) by the broadcast layer, never handed to
        the application's non-broadcast route."""
        from repro.network.broadcast import SequencedPayload

        sim, net, ab, delivered = build()
        other = []

        def route(msg):
            if not ab.on_message("x", msg):
                other.append(msg.payload)

        net.register("x", route)
        foreign = SequencedPayload(group="nope", seqno=0, sender="y", body="evil")
        net.send("y", "x", foreign)
        sim.run()
        assert other == []
        assert delivered["x"] == []
        assert ab.misrouted_dropped == 1

    def test_nonmember_of_known_group_also_dropped(self):
        from repro.network.broadcast import SequencedPayload

        sim, net, ab, _delivered = build()
        ab.create_group("H", ["y"])
        other = []

        def route(msg):
            if not ab.on_message("x", msg):
                other.append(msg.payload)

        net.register("x", route)
        net.send("y", "x", SequencedPayload(group="H", seqno=0, sender="y", body=1))
        sim.run()
        assert other == []
        assert ab.misrouted_dropped == 1


class TestGapRepair:
    def build_repair(self, members=("x", "y", "z"), **kwargs):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim, min_delay=0.0, max_delay=0.05, seed=3)
        ab = AtomicBroadcast(net)
        ab.create_group("G", list(members))
        delivered = {m: [] for m in members}
        for m in members:
            net.register(m, lambda msg, m=m: ab.on_message(m, msg))
            ab.register_handler(
                "G", m, lambda sender, body, m=m: delivered[m].append(body)
            )
        ab.enable_gap_repair("seq0", backup="seq1", **kwargs)
        return sim, net, ab, delivered

    def test_lost_payload_repaired_via_nack(self):
        sim, net, ab, delivered = self.build_repair()
        # Drop exactly the first broadcast payload sent to z.
        dropped = {"n": 0}

        def drop_first_to_z(sender, receiver, payload):
            from repro.faults.plan import FaultAction
            from repro.network.broadcast import SequencedPayload

            if (
                receiver == "z"
                and isinstance(payload, SequencedPayload)
                and dropped["n"] == 0
            ):
                dropped["n"] += 1
                return FaultAction(drop=True)
            return None

        net.fault_filter = drop_first_to_z
        ab.broadcast("G", "x", "m0")
        ab.broadcast("G", "x", "m1")  # reveals the gap at z
        sim.run()
        assert delivered["z"] == ["m0", "m1"]
        assert ab.repairs_requested >= 1
        assert ab.repairs_served >= 1
        assert ab.pending_gap_total() == 0

    def test_repair_timeout_required_positive(self):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim)
        ab = AtomicBroadcast(net)
        with pytest.raises(SimulationError):
            ab.enable_gap_repair("seq0", timeout=0.0)

    def test_sequencer_failover_to_backup(self):
        sim, net, ab, delivered = self.build_repair(failover_after=1)
        net.partition("seq0")  # primary sequencer endpoint is dead
        dropped = {"n": 0}

        def drop_first_to_z(sender, receiver, payload):
            from repro.faults.plan import FaultAction
            from repro.network.broadcast import SequencedPayload

            if (
                receiver == "z"
                and isinstance(payload, SequencedPayload)
                and dropped["n"] == 0
            ):
                dropped["n"] += 1
                return FaultAction(drop=True)
            return None

        net.fault_filter = drop_first_to_z
        ab.broadcast("G", "x", "m0")
        ab.broadcast("G", "x", "m1")
        sim.run()
        # First NACK died with the primary; the retry failed over.
        assert delivered["z"] == ["m0", "m1"]
        assert ab.repairs_requested >= 2
        assert ab.pending_gap_total() == 0

    def test_gap_closed_by_duplicate_needs_no_repair(self):
        sim, net, ab, delivered = self.build_repair()
        ab.broadcast("G", "x", "m0")
        sim.run()
        assert ab.repairs_requested == 0

    def test_force_repair_scan_finds_invisible_gap(self):
        """A member whose *last* payload was lost has nothing buffered —
        timer detection is blind, the scan is not."""
        sim, net, ab, delivered = self.build_repair()

        def drop_abcast_to_z(sender, receiver, payload):
            from repro.faults.plan import FaultAction
            from repro.network.broadcast import SequencedPayload

            if receiver == "z" and isinstance(payload, SequencedPayload):
                return FaultAction(drop=True)
            return None

        net.fault_filter = drop_abcast_to_z
        ab.broadcast("G", "x", "m0")
        sim.run()
        assert delivered["z"] == []
        net.fault_filter = None  # link heals
        assert ab.force_repair_scan() == 1
        sim.run()
        assert delivered["z"] == ["m0"]

    def test_retention_eviction_counts_expired(self):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim, min_delay=0.0, max_delay=0.05, seed=3)
        ab = AtomicBroadcast(net, retention=2)
        ab.create_group("G", ["z"])
        got = []
        net.register("z", lambda msg: ab.on_message("z", msg))
        ab.register_handler("G", "z", lambda s, b: got.append(b))
        ab.enable_gap_repair("seq0")
        net.partition("z")
        for i in range(5):
            ab.broadcast("G", "x", f"m{i}")
        sim.run()
        net.heal("z")
        assert ab.force_repair_scan() == 1
        sim.run()
        # Only the last two payloads survive retention; requests for the
        # evicted prefix are counted (the member re-NACKs until its
        # attempt budget runs dry), delivery stays blocked until a
        # skip_to (out-of-band sync) clears the gap.
        assert ab.repairs_expired >= 3
        assert got == []
        ab.skip_to("G", "z", 3)
        sim.run()
        assert got == ["m3", "m4"]
