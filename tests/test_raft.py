"""Tests for the Raft (crash-fault) baseline."""

from __future__ import annotations

import pytest

from repro.consensus.raft import RaftCluster, RaftRole
from repro.exceptions import ConsensusError


def make_cluster(n=5, seed=3, **kw):
    return RaftCluster(node_ids=[f"n{i}" for i in range(n)], seed=seed, **kw)


class TestConstruction:
    def test_minimum_size(self):
        with pytest.raises(ConsensusError):
            make_cluster(n=2)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConsensusError):
            RaftCluster(node_ids=["a", "a", "b"])

    def test_bad_timeouts_rejected(self):
        with pytest.raises(ConsensusError):
            make_cluster(election_timeout=(10, 10))

    def test_majority(self):
        assert make_cluster(n=3).majority == 2
        assert make_cluster(n=5).majority == 3
        assert make_cluster(n=7).majority == 4


class TestElections:
    def test_elects_a_leader(self):
        cluster = make_cluster()
        leader = cluster.run_until_leader()
        assert leader in cluster.nodes
        assert cluster.nodes[leader].role is RaftRole.LEADER

    def test_at_most_one_leader_per_term(self):
        cluster = make_cluster(n=7, seed=9)
        cluster.run_until_leader()
        by_term: dict[int, list[str]] = {}
        for node in cluster.nodes.values():
            if node.role is RaftRole.LEADER:
                by_term.setdefault(node.current_term, []).append(node.node_id)
        assert all(len(ids) == 1 for ids in by_term.values())

    def test_deterministic_in_seed(self):
        l1 = make_cluster(seed=4).run_until_leader()
        l2 = make_cluster(seed=4).run_until_leader()
        assert l1 == l2

    def test_no_majority_no_leader(self):
        cluster = make_cluster(n=5)
        for nid in ("n0", "n1", "n2"):
            cluster.crash(nid)
        with pytest.raises(ConsensusError):
            cluster.run_until_leader(max_ticks=100)

    def test_leader_crash_triggers_reelection(self):
        cluster = make_cluster(n=5, seed=7)
        first = cluster.run_until_leader()
        cluster.crash(first)
        second = cluster.run_until_leader()
        assert second != first


class TestReplication:
    def test_entry_commits_on_all_alive_nodes(self):
        cluster = make_cluster(n=5)
        cluster.submit({"tx": 1})
        for node in cluster.nodes.values():
            assert cluster.committed_log(node.node_id) == [{"tx": 1}]

    def test_multiple_entries_in_order(self):
        cluster = make_cluster(n=5)
        for i in range(5):
            cluster.submit(f"e{i}")
        assert cluster.committed_log("n0") == [f"e{i}" for i in range(5)]

    def test_commits_with_minority_crashed(self):
        cluster = make_cluster(n=5, seed=11)
        leader = cluster.run_until_leader()
        others = [nid for nid in cluster.node_ids if nid != leader]
        cluster.crash(others[0])
        cluster.crash(others[1])
        cluster.submit("survives")
        assert "survives" in cluster.committed_log(leader)

    def test_restarted_node_catches_up(self):
        cluster = make_cluster(n=5, seed=13)
        leader = cluster.run_until_leader()
        victim = next(nid for nid in cluster.node_ids if nid != leader)
        cluster.crash(victim)
        cluster.submit("while-down")
        cluster.restart(victim)
        cluster.submit("after-restart")
        assert cluster.committed_log(victim) == ["while-down", "after-restart"]

    def test_leader_failover_preserves_committed_entries(self):
        cluster = make_cluster(n=5, seed=17)
        cluster.submit("durable")
        old_leader = cluster.leader()
        cluster.crash(old_leader)
        cluster.submit("after-failover")
        new_leader = cluster.leader()
        log = cluster.committed_log(new_leader)
        assert log == ["durable", "after-failover"]


class TestComplexity:
    def test_replication_messages_linear_in_n(self):
        costs = {}
        for n in (3, 5, 9):
            cluster = make_cluster(n=n, seed=19)
            cluster.run_until_leader()
            before = cluster.messages_exchanged
            cluster.submit("x")
            costs[n] = cluster.messages_exchanged - before
        # Each AppendEntries round costs 2*(alive-1); submit may take a
        # couple of heartbeat rounds — linear, not quadratic.
        assert costs[9] < costs[3] * 9  # far below quadratic scaling
        assert costs[9] > costs[3]
