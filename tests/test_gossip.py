"""Tests for the reputation-gossip extension."""

from __future__ import annotations

import math

import pytest

from repro.core.gossip import ReputationGossip, ReputationSummary, make_summary
from repro.core.reputation import ReputationBook
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import Signature
from repro.exceptions import ConfigurationError


@pytest.fixture
def gossip_world():
    im = IdentityManager(seed=9)
    books = {}
    for j in range(3):
        gid = f"g{j}"
        im.enroll(gid, Role.GOVERNOR)
        book = ReputationBook(governor=gid, initial=1.0)
        book.register_collector("c0", ["p0"])
        book.register_collector("c1", ["p0"])
        books[gid] = book
    return im, books


def summary_for(im, books, gid):
    return make_summary(im.record(gid).key, books[gid])


class TestSummaries:
    def test_summary_signed_and_verifiable(self, gossip_world):
        im, books = gossip_world
        summary = summary_for(im, books, "g0")
        assert im.verify("g0", summary.signed_message(), summary.signature)

    def test_summary_contains_all_entries(self, gossip_world):
        im, books = gossip_world
        summary = summary_for(im, books, "g0")
        assert set(summary.entries) == {("c0", "p0"), ("c1", "p0")}


class TestFold:
    def test_alpha_bounds(self, gossip_world):
        im, _books = gossip_world
        with pytest.raises(ConfigurationError):
            ReputationGossip(im=im, alpha=0.0)
        with pytest.raises(ConfigurationError):
            ReputationGossip(im=im, alpha=1.0)

    def test_geometric_mean_fold(self, gossip_world):
        im, books = gossip_world
        books["g1"].vector("c0").provider_weights["p0"] = 0.25
        books["g2"].vector("c0").provider_weights["p0"] = 0.25
        gossip = ReputationGossip(im=im, alpha=0.5)
        accepted = gossip.fold(
            books["g0"],
            [summary_for(im, books, "g1"), summary_for(im, books, "g2")],
        )
        assert accepted == 2
        # own = 1.0, peers' geomean = 0.25, alpha = 0.5 -> sqrt(0.25) = 0.5
        assert books["g0"].weight("c0", "p0") == pytest.approx(0.5)

    def test_identical_views_are_fixed_point(self, gossip_world):
        im, books = gossip_world
        for gid in books:
            books[gid].vector("c0").provider_weights["p0"] = 0.7
        gossip = ReputationGossip(im=im, alpha=0.3)
        gossip.fold(
            books["g0"],
            [summary_for(im, books, "g1"), summary_for(im, books, "g2")],
        )
        assert books["g0"].weight("c0", "p0") == pytest.approx(0.7)

    def test_self_summary_ignored(self, gossip_world):
        im, books = gossip_world
        books["g0"].vector("c0").provider_weights["p0"] = 0.5
        gossip = ReputationGossip(im=im, alpha=0.5)
        accepted = gossip.fold(books["g0"], [summary_for(im, books, "g0")])
        assert accepted == 0
        assert books["g0"].weight("c0", "p0") == pytest.approx(0.5)

    def test_forged_summary_rejected(self, gossip_world):
        im, books = gossip_world
        books["g1"].vector("c0").provider_weights["p0"] = 1e-6
        honest = summary_for(im, books, "g1")
        forged = ReputationSummary(
            governor="g1",
            entries={("c0", "p0"): 1e-12},  # tampered after signing
            signature=honest.signature,
        )
        gossip = ReputationGossip(im=im, alpha=0.5)
        accepted = gossip.fold(books["g0"], [forged])
        assert accepted == 0
        assert gossip.rejected == 1
        assert books["g0"].weight("c0", "p0") == 1.0

    def test_non_governor_cannot_inject(self, gossip_world):
        im, books = gossip_world
        fake = ReputationSummary(
            governor="intruder",
            entries={("c0", "p0"): 1e-12},
            signature=Signature(signer="intruder", tag=bytes(32)),
        )
        gossip = ReputationGossip(im=im, alpha=0.5)
        assert gossip.fold(books["g0"], [fake]) == 0

    def test_fold_commutes_with_multiplicative_update(self, gossip_world):
        """Gossip-then-discount equals discount-then-gossip (both views
        discounted) — the property that justifies the geometric mean."""
        im, books = gossip_world
        gamma = 0.855

        # Path A: fold first, then discount own view.
        books_a0 = books["g0"]
        gossip = ReputationGossip(im=im, alpha=0.5)
        books["g1"].vector("c0").provider_weights["p0"] = 0.4
        gossip.fold(books_a0, [summary_for(im, books, "g1")])
        books_a0.vector("c0").scale("p0", gamma)
        path_a = books_a0.weight("c0", "p0")

        # Path B: both views discounted first, then fold.
        own = ReputationBook(governor="g0", initial=1.0)
        own.register_collector("c0", ["p0"])
        own.register_collector("c1", ["p0"])
        own.vector("c0").scale("p0", gamma)
        peer = ReputationBook(governor="g1", initial=1.0)
        peer.register_collector("c0", ["p0"])
        peer.register_collector("c1", ["p0"])
        peer.vector("c0").provider_weights["p0"] = 0.4
        peer.vector("c0").scale("p0", gamma)
        gossip_b = ReputationGossip(im=im, alpha=0.5)
        gossip_b.fold(own, [make_summary(im.record("g1").key, peer)])
        path_b = own.weight("c0", "p0")

        assert path_a == pytest.approx(path_b)

    def test_convergence_under_repeated_gossip(self, gossip_world):
        """Repeated all-to-all gossip drives divergent views together."""
        im, books = gossip_world
        books["g0"].vector("c0").provider_weights["p0"] = 1.0
        books["g1"].vector("c0").provider_weights["p0"] = 0.01
        books["g2"].vector("c0").provider_weights["p0"] = 0.1
        gossip = ReputationGossip(im=im, alpha=0.4)
        for _round in range(20):
            summaries = {g: summary_for(im, books, g) for g in books}
            for gid, book in books.items():
                gossip.fold(book, [s for g, s in summaries.items() if g != gid])
        weights = [books[g].weight("c0", "p0") for g in books]
        spread = max(math.log(w) for w in weights) - min(math.log(w) for w in weights)
        assert spread < 0.01


class TestGossipWithEngine:
    def test_periodic_gossip_across_engine_governors(self):
        """Fold summaries across a live engine's governors every few
        rounds: views of the misreporter converge across governors while
        honest collectors keep weight 1 everywhere."""
        import math

        from repro.agents.behaviors import MisreportBehavior
        from repro.core.gossip import make_summary
        from repro.core.params import ProtocolParams
        from repro.core.protocol import ProtocolEngine
        from repro.network.topology import Topology
        from repro.workloads.generator import BernoulliWorkload

        topo = Topology.regular(l=8, n=4, m=3, r=2)
        engine = ProtocolEngine(
            topo, ProtocolParams(f=0.8),
            behaviors={"c0": MisreportBehavior(0.7)},
            seed=14, leader_rotation=True,
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.6, seed=15)
        gossip = ReputationGossip(im=engine.im, alpha=0.3)
        for round_no in range(20):
            engine.run_round(workload.take(16))
            if round_no % 5 == 4:
                summaries = [
                    make_summary(engine.im.record(g).key, gov.book)
                    for g, gov in engine.governors.items()
                ]
                for gov in engine.governors.values():
                    gossip.fold(gov.book, summaries)
        engine.finalize()

        provider = topo.providers_of("c0")[0]
        liar_views = [
            gov.book.weight("c0", provider) for gov in engine.governors.values()
        ]
        honest_views = [
            gov.book.weight("c2", topo.providers_of("c2")[0])
            for gov in engine.governors.values()
        ]
        # Honest collectors untouched; liar demoted in every view, and
        # the (log) spread across governors is small after gossip.
        assert all(w == pytest.approx(1.0) for w in honest_views)
        assert all(w < 1.0 for w in liar_views)
        logs = [math.log(w) for w in liar_views]
        assert max(logs) - min(logs) < abs(sum(logs) / len(logs)) * 0.8 + 0.5
