"""Unit tests for blocks."""

from __future__ import annotations

import pytest

from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import SigningKey
from repro.exceptions import BlockLimitExceededError, LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, Block, block_hash
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    TxRecord,
    make_signed_transaction,
)


def make_records(n: int) -> tuple[TxRecord, ...]:
    key = SigningKey(owner="p0", secret=b"\x0c" * 32)
    out = []
    for i in range(n):
        tx = make_signed_transaction(key, f"payload-{i}", timestamp=1.0, nonce=i)
        out.append(TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED))
    return tuple(out)


def make_block(serial=1, n_tx=3, prev=GENESIS_PREV_HASH, **kw) -> Block:
    return Block(
        serial=serial,
        tx_list=make_records(n_tx),
        prev_hash=prev,
        proposer="g0",
        round_number=serial,
        **kw,
    )


class TestConstruction:
    def test_basic(self):
        block = make_block()
        assert block.serial == 1
        assert len(block) == 3

    def test_serial_starts_at_one(self):
        with pytest.raises(LedgerError):
            make_block(serial=0)

    def test_prev_hash_length_checked(self):
        with pytest.raises(LedgerError):
            make_block(prev=b"short")

    def test_b_limit_enforced(self):
        with pytest.raises(BlockLimitExceededError):
            make_block(n_tx=5, b_limit=4)

    def test_b_limit_exact_ok(self):
        assert len(make_block(n_tx=4, b_limit=4)) == 4

    def test_empty_block_allowed(self):
        assert len(make_block(n_tx=0)) == 0


class TestHashing:
    def test_hash_deterministic(self):
        a, b = make_block(), make_block()
        assert a.hash() == b.hash()
        assert block_hash(a) == a.hash()

    def test_hash_depends_on_content(self):
        assert make_block(n_tx=2).hash() != make_block(n_tx=3).hash()

    def test_hash_depends_on_serial(self):
        b1 = make_block(serial=1)
        b2 = Block(
            serial=2, tx_list=b1.tx_list, prev_hash=b1.prev_hash,
            proposer="g0", round_number=1,
        )
        assert b1.hash() != b2.hash()

    def test_hash_depends_on_prev(self):
        other_prev = bytes(31) + b"\x01"
        assert make_block().hash() != make_block(prev=other_prev).hash()

    def test_hash_depends_on_proposer(self):
        b1 = make_block()
        b2 = Block(
            serial=1, tx_list=b1.tx_list, prev_hash=b1.prev_hash,
            proposer="g1", round_number=1,
        )
        assert b1.hash() != b2.hash()


class TestCommitments:
    def test_tx_root_matches_merkle(self):
        block = make_block(n_tx=5)
        assert block.tx_root == MerkleTree(list(block.tx_list)).root

    def test_inclusion_proofs(self):
        block = make_block(n_tx=7)
        for i in range(7):
            proof = block.prove_inclusion(i)
            assert MerkleTree.verify_against(block.tx_root, block.tx_list[i], proof)

    def test_find_tx(self):
        block = make_block(n_tx=3)
        target = block.tx_list[1].tx
        rec = block.find_tx(target.tx_id)
        assert rec is not None and rec.tx.tx_id == target.tx_id
        assert block.find_tx("nope") is None
