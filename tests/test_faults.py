"""Unit tests for the fault-injection subsystem (repro.faults)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFaultSpec,
    NodeFaultSpec,
    PartitionWindow,
)
from repro.network.simnet import Simulator, SyncNetwork


def make_net(seed=0):
    sim = Simulator(seed=seed)
    net = SyncNetwork(sim, min_delay=0.01, max_delay=0.05, seed=seed + 1)
    return sim, net


class TestPlanValidation:
    def test_probabilities_checked(self):
        with pytest.raises(ConfigurationError):
            LinkFaultSpec(loss=1.5)
        with pytest.raises(ConfigurationError):
            LinkFaultSpec(duplicate=-0.1)
        with pytest.raises(ConfigurationError):
            LinkFaultSpec(reorder_delay=0.0)

    def test_node_fault_times_checked(self):
        with pytest.raises(ConfigurationError):
            NodeFaultSpec(node="a", crash_at=-1.0)
        with pytest.raises(ConfigurationError):
            NodeFaultSpec(node="a", crash_at=2.0, recover_at=1.0)

    def test_partition_window_checked(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(nodes=(), start=0.0, end=1.0)
        with pytest.raises(ConfigurationError):
            PartitionWindow(nodes=("a",), start=2.0, end=1.0)

    def test_fluent_builders_and_overrides(self):
        plan = (
            FaultPlan(seed=3)
            .with_loss(0.1)
            .with_link("a", "b", LinkFaultSpec(loss=0.9))
            .with_crash("c", at=1.0, recover_at=2.0)
            .with_partition(("d",), start=0.5, end=0.7)
        )
        assert plan.spec_for("a", "b").loss == 0.9
        assert plan.spec_for("b", "a").loss == 0.1
        assert plan.has_message_faults
        assert not FaultPlan().has_message_faults


class TestMessageFaults:
    def test_one_injector_per_network(self):
        from repro.exceptions import SimulationError

        _sim, net = make_net()
        injector = FaultInjector(plan=FaultPlan(seed=1).with_loss(0.5))
        injector.install(net)
        injector.install(net)  # same injector: idempotent no-op
        with pytest.raises(SimulationError):
            FaultInjector(plan=FaultPlan(seed=2)).install(net)

    def test_total_loss_drops_everything(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        injector = FaultInjector(plan=FaultPlan(seed=1).with_loss(1.0)).install(net)
        for _ in range(10):
            net.send("a", "b", "x")
        sim.run()
        assert got == []
        assert injector.stats.dropped == 10
        assert net.stats.messages_dropped == 10
        assert net.stats.messages_sent == 0

    def test_partial_loss_is_partial(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        injector = FaultInjector(plan=FaultPlan(seed=1).with_loss(0.3)).install(net)
        for _ in range(200):
            net.send("a", "b", "x")
        sim.run()
        assert 0 < injector.stats.dropped < 200
        assert len(got) == 200 - injector.stats.dropped

    def test_duplication_delivers_twice(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        plan = FaultPlan(seed=2).with_default_link(LinkFaultSpec(duplicate=1.0))
        injector = FaultInjector(plan=plan).install(net)
        net.send("a", "b", "x")
        sim.run()
        assert [m.payload for m in got] == ["x", "x"]
        assert injector.stats.duplicated == 1
        assert net.stats.messages_sent == 2  # both copies crossed the wire

    def test_reordering_breaks_channel_fifo(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        # First message is force-delayed well past the second.
        hits = {"n": 0}

        def reorder_first(sender, receiver, payload):
            hits["n"] += 1
            if hits["n"] == 1:
                from repro.faults.plan import FaultAction
                return FaultAction(extra_delay=1.0)
            return None

        net.fault_filter = reorder_first
        net.send("a", "b", "first")
        net.send("a", "b", "second")
        sim.run()
        assert [m.payload for m in got] == ["second", "first"]

    def test_injected_reorder_probability(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        plan = FaultPlan(seed=5).with_default_link(
            LinkFaultSpec(reorder=1.0, reorder_delay=2.0)
        )
        injector = FaultInjector(plan=plan).install(net)
        net.send("a", "b", "x")
        sim.run()
        assert injector.stats.reordered == 1
        assert got[0].deliver_at > net.max_delay  # escaped the synchrony bound

    def test_exempt_kinds_never_faulted(self):
        from repro.network.reliable import ReliableAck

        sim, net = make_net()
        got = []
        net.register("b", got.append)
        injector = FaultInjector(plan=FaultPlan(seed=1).with_loss(1.0)).install(net)
        net.send("a", "b", ReliableAck(msg_id=7))
        sim.run()
        assert len(got) == 1
        assert injector.stats.dropped == 0


class TestNodeAndPartitionFaults:
    def test_crash_recovery_window(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        net.register("a", lambda m: None)
        plan = FaultPlan().with_crash("b", at=1.0, recover_at=2.0)
        injector = FaultInjector(plan=plan).install(net)
        sim.schedule_at(0.5, lambda: net.send("a", "b", "before"))
        sim.schedule_at(1.5, lambda: net.send("a", "b", "during"))
        sim.schedule_at(2.5, lambda: net.send("a", "b", "after"))
        sim.run()
        assert [m.payload for m in got] == ["before", "after"]
        assert injector.stats.crashes == 1
        assert injector.stats.recoveries == 1

    def test_crash_stop_without_recovery(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        FaultInjector(plan=FaultPlan().with_crash("b", at=1.0)).install(net)
        sim.schedule_at(1.5, lambda: net.send("a", "b", "late"))
        sim.run()
        assert got == []

    def test_in_flight_message_lost_on_receiver_crash(self):
        sim, net = make_net()
        got = []
        net.register("b", got.append)
        FaultInjector(plan=FaultPlan().with_crash("b", at=0.02)).install(net)
        # Sent before the crash, delivery would land after it.
        net.send("a", "b", "in-flight")
        sim.run()
        assert got == []
        assert net.stats.messages_dropped == 1

    def test_partition_window_cuts_both_ways(self):
        sim, net = make_net()
        got_a, got_b = [], []
        net.register("a", got_a.append)
        net.register("b", got_b.append)
        plan = FaultPlan().with_partition(("b",), start=1.0, end=2.0)
        injector = FaultInjector(plan=plan).install(net)
        sim.schedule_at(1.5, lambda: net.send("a", "b", "to-b"))
        sim.schedule_at(1.5, lambda: net.send("b", "a", "from-b"))
        sim.schedule_at(2.5, lambda: net.send("a", "b", "healed"))
        sim.run()
        assert got_a == []
        assert [m.payload for m in got_b] == ["healed"]
        assert injector.stats.partitions_opened == 1
        assert injector.stats.partitions_healed == 1

    def test_engine_callbacks_used_for_node_faults(self):
        sim, net = make_net()
        calls = []
        plan = FaultPlan().with_crash("g1", at=1.0, recover_at=2.0)
        FaultInjector(
            plan=plan,
            on_crash=lambda n: calls.append(("crash", n)),
            on_recover=lambda n: calls.append(("recover", n)),
        ).install(net)
        sim.schedule_at(3.0, lambda: None)  # keep the loop alive past 2.0
        sim.run()
        assert calls == [("crash", "g1"), ("recover", "g1")]


class TestDeterminism:
    def test_same_seed_same_fault_pattern(self):
        def run(seed):
            sim, net = make_net(seed=9)
            got = []
            net.register("b", got.append)
            FaultInjector(plan=FaultPlan(seed=seed).with_loss(0.5)).install(net)
            for i in range(50):
                net.send("a", "b", i)
            sim.run()
            return [m.payload for m in got]

        assert run(4) == run(4)
        assert run(4) != run(5)
