"""Unit tests for the five-property run checker."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import LedgerError
from repro.ledger.block import Block
from repro.ledger.chain import Ledger
from repro.ledger.properties import RunTranscript, check_all_properties
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    TxRecord,
    make_signed_transaction,
)

KEY = SigningKey(owner="p0", secret=b"\x10" * 32)
_NONCE = iter(range(10_000))


def record(label=Label.VALID, status=CheckStatus.CHECKED):
    tx = make_signed_transaction(KEY, "x", 1.0, nonce=next(_NONCE))
    return TxRecord(tx=tx, label=label, status=status)


def chain_with(records_per_block):
    ledger = Ledger(owner="g0")
    for records in records_per_block:
        ledger.append(
            Block(
                serial=ledger.height + 1,
                tx_list=tuple(records),
                prev_hash=ledger.tip_hash(),
                proposer="g0",
                round_number=ledger.height + 1,
            )
        )
    return ledger


def full_transcript(ledger):
    t = RunTranscript()
    for _serial, rec in ledger.all_records():
        t.provider_broadcasts.add(rec.tx.tx_id)
        t.collector_uploads.add(rec.tx.tx_id)
    return t


class TestHappyPath:
    def test_all_properties_hold(self):
        ledger = chain_with([[record()], [record(), record()]])
        report = check_all_properties([ledger], full_transcript(ledger))
        assert report.all_hold
        assert report.violations == []

    def test_validity_checked_for_honest_tx(self):
        rec = record()
        ledger = chain_with([[rec]])
        t = full_transcript(ledger)
        t.honest_valid_tx.add(rec.tx.tx_id)
        report = check_all_properties([ledger], t)
        assert report.validity


class TestViolations:
    def test_no_replicas_rejected(self):
        with pytest.raises(LedgerError):
            check_all_properties([], RunTranscript())

    def test_almost_no_creation_missing_provider_broadcast(self):
        ledger = chain_with([[record()]])
        t = full_transcript(ledger)
        t.provider_broadcasts.clear()
        report = check_all_properties([ledger], t)
        assert not report.almost_no_creation
        assert not report.all_hold

    def test_almost_no_creation_missing_collector_upload(self):
        ledger = chain_with([[record()]])
        t = full_transcript(ledger)
        t.collector_uploads.clear()
        report = check_all_properties([ledger], t)
        assert not report.almost_no_creation

    def test_validity_missing_tx(self):
        ledger = chain_with([[record()]])
        t = full_transcript(ledger)
        t.honest_valid_tx.add("never-included")
        report = check_all_properties([ledger], t)
        assert not report.validity

    def test_validity_permanently_invalid(self):
        rec = record(label=Label.INVALID, status=CheckStatus.UNCHECKED)
        ledger = chain_with([[rec]])
        t = full_transcript(ledger)
        t.honest_valid_tx.add(rec.tx.tx_id)
        report = check_all_properties([ledger], t)
        assert not report.validity

    def test_validity_reevaluated_counts_as_ok(self):
        buried = record(label=Label.INVALID, status=CheckStatus.UNCHECKED)
        fixed = TxRecord(
            tx=buried.tx, label=Label.VALID, status=CheckStatus.REEVALUATED
        )
        ledger = chain_with([[buried], [fixed]])
        t = full_transcript(ledger)
        t.honest_valid_tx.add(buried.tx.tx_id)
        report = check_all_properties([ledger], t)
        assert report.validity

    def test_validity_skipped_when_run_incomplete(self):
        ledger = chain_with([[record()]])
        t = full_transcript(ledger)
        t.honest_valid_tx.add("still-in-flight")
        report = check_all_properties([ledger], t, run_complete=False)
        assert report.validity  # not evaluated yet

    def test_agreement_violation_reported(self):
        a = chain_with([[record()]])
        b = chain_with([[record()]])  # different contents at serial 1
        t = RunTranscript(
            provider_broadcasts={r.tx.tx_id for _s, r in a.all_records()}
            | {r.tx.tx_id for _s, r in b.all_records()},
            collector_uploads={r.tx.tx_id for _s, r in a.all_records()}
            | {r.tx.tx_id for _s, r in b.all_records()},
        )
        report = check_all_properties([a, b], t)
        assert not report.agreement
        assert any("agreement" in v for v in report.violations)
