"""Unit tests for VRF-PoS leader election (plus the E10-style stats check)."""

from __future__ import annotations

import collections

import pytest

from repro.consensus.pos import LeaderElection, announce_stakes, elect_leader
from repro.consensus.stake import StakeLedger
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.vrf import VRFOutput
from repro.exceptions import LeaderElectionError, VRFError


@pytest.fixture
def gov_im():
    im = IdentityManager(seed=2)
    for j in range(4):
        im.enroll(f"g{j}", Role.GOVERNOR)
    return im


GOVS = ["g0", "g1", "g2", "g3"]


class TestAnnouncements:
    def test_one_output_per_stake_unit(self, gov_im):
        key = gov_im.record("g0").key
        ann = announce_stakes(key, round_number=1, governor_index=0, stake_units=5)
        assert len(ann.outputs) == 5
        assert ann.governor == "g0"

    def test_outputs_distinct_across_units(self, gov_im):
        key = gov_im.record("g0").key
        ann = announce_stakes(key, 1, 0, 4)
        values = {o.value for o in ann.outputs}
        assert len(values) == 4


class TestElection:
    def _announce_all(self, gov_im, stake, round_number):
        return [
            announce_stakes(gov_im.record(g).key, round_number, j, stake.balance(g))
            for j, g in enumerate(GOVS)
            if stake.balance(g) > 0
        ]

    def test_elects_some_staked_governor(self, gov_im):
        stake = StakeLedger.from_balances({g: 1 for g in GOVS})
        anns = self._announce_all(gov_im, stake, 1)
        leader = elect_leader(gov_im, stake, GOVS, 1, anns)
        assert leader in GOVS

    def test_deterministic(self, gov_im):
        stake = StakeLedger.from_balances({g: 2 for g in GOVS})
        anns = self._announce_all(gov_im, stake, 3)
        l1 = elect_leader(gov_im, stake, GOVS, 3, anns)
        l2 = elect_leader(gov_im, stake, GOVS, 3, anns)
        assert l1 == l2

    def test_changes_across_rounds(self, gov_im):
        stake = StakeLedger.from_balances({g: 1 for g in GOVS})
        leaders = set()
        for r in range(30):
            anns = self._announce_all(gov_im, stake, r)
            leaders.add(elect_leader(gov_im, stake, GOVS, r, anns))
        assert len(leaders) > 1  # rotation happens

    def test_zero_stake_governor_never_wins(self, gov_im):
        stake = StakeLedger.from_balances({"g0": 0, "g1": 1, "g2": 1, "g3": 1})
        for r in range(40):
            anns = self._announce_all(gov_im, stake, r)
            assert elect_leader(gov_im, stake, GOVS, r, anns) != "g0"

    def test_no_stake_at_all_rejected(self, gov_im):
        stake = StakeLedger.from_balances({g: 0 for g in GOVS})
        with pytest.raises(LeaderElectionError):
            elect_leader(gov_im, stake, GOVS, 1, [])

    def test_missing_announcement_rejected(self, gov_im):
        stake = StakeLedger.from_balances({g: 1 for g in GOVS})
        anns = self._announce_all(gov_im, stake, 1)[:-1]
        with pytest.raises(LeaderElectionError):
            elect_leader(gov_im, stake, GOVS, 1, anns)

    def test_wrong_unit_count_rejected(self, gov_im):
        stake = StakeLedger.from_balances({g: 2 for g in GOVS})
        # g0 announces only 1 output while holding 2 units.
        anns = [
            announce_stakes(gov_im.record("g0").key, 1, 0, 1)
        ] + [
            announce_stakes(gov_im.record(g).key, 1, j, 2)
            for j, g in enumerate(GOVS)
            if g != "g0"
        ]
        # Fix indices for the others (they start at j=0 in the comprehension).
        anns = [announce_stakes(gov_im.record("g0").key, 1, 0, 1)] + [
            announce_stakes(gov_im.record(g).key, 1, j, 2)
            for j, g in enumerate(GOVS)
            if j > 0
        ]
        with pytest.raises(VRFError):
            elect_leader(gov_im, stake, GOVS, 1, anns)

    def test_grinding_rejected(self, gov_im):
        # g0 substitutes a more favourable hash from a different round.
        stake = StakeLedger.from_balances({g: 1 for g in GOVS})
        honest = [
            announce_stakes(gov_im.record(g).key, 5, j, 1)
            for j, g in enumerate(GOVS)
        ]
        other_round = announce_stakes(gov_im.record("g0").key, 6, 0, 1)
        tampered = type(honest[0])(
            round_number=5, governor="g0", outputs=other_round.outputs
        )
        with pytest.raises(VRFError):
            elect_leader(gov_im, stake, GOVS, 5, [tampered] + honest[1:])

    def test_forged_value_rejected(self, gov_im):
        stake = StakeLedger.from_balances({g: 1 for g in GOVS})
        honest = [
            announce_stakes(gov_im.record(g).key, 2, j, 1) for j, g in enumerate(GOVS)
        ]
        out = honest[0].outputs[0]
        forged_out = VRFOutput(
            owner=out.owner, alpha=out.alpha, value=bytes(32), proof=out.proof
        )
        forged = type(honest[0])(round_number=2, governor="g0", outputs=(forged_out,))
        with pytest.raises(VRFError):
            elect_leader(gov_im, stake, GOVS, 2, [forged] + honest[1:])


class TestProportionality:
    def test_leadership_roughly_proportional_to_stake(self, gov_im):
        """g0 holds 4x the stake of the others -> ~4x the leaderships."""
        stake = StakeLedger.from_balances({"g0": 8, "g1": 2, "g2": 2, "g3": 2})
        election = LeaderElection(im=gov_im, governor_order=GOVS)
        counts = collections.Counter(
            election.run(stake, round_number=r) for r in range(600)
        )
        share_g0 = counts["g0"] / 600
        assert 0.47 <= share_g0 <= 0.67  # expectation 8/14 = 0.571
        for g in ("g1", "g2", "g3"):
            assert counts[g] > 0
