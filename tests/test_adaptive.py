"""Tests for the adaptive-f (AIMD) controller extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveF
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_defaults_valid(self):
        ctl = AdaptiveF()
        assert ctl.f == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_mistake_rate": 0.0},
            {"target_mistake_rate": 1.0},
            {"f_min": 0.0},
            {"f_min": 0.9, "f_max": 0.5},
            {"initial_f": 0.99},
            {"increase": 0.0},
            {"decrease": 1.0},
            {"decrease": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveF(**kwargs)


class TestDynamics:
    def test_clean_reveals_raise_f(self):
        ctl = AdaptiveF(initial_f=0.3)
        for _ in range(50):
            ctl.observe_reveal(was_mistake=False)
        assert ctl.f > 0.3

    def test_mistake_cuts_f_multiplicatively(self):
        ctl = AdaptiveF(initial_f=0.8, decrease=0.5)
        ctl.observe_reveal(was_mistake=True)
        assert ctl.f == pytest.approx(0.4)

    def test_f_respects_bounds(self):
        ctl = AdaptiveF(initial_f=0.5, f_min=0.1, f_max=0.9)
        for _ in range(500):
            ctl.observe_reveal(was_mistake=False)
        assert ctl.f <= 0.9
        for _ in range(50):
            ctl.observe_reveal(was_mistake=True)
        assert ctl.f >= 0.1

    def test_observed_mistake_rate(self):
        ctl = AdaptiveF()
        ctl.observe_reveal(True)
        ctl.observe_reveal(False)
        ctl.observe_reveal(False)
        ctl.observe_reveal(False)
        assert ctl.observed_mistake_rate == pytest.approx(0.25)

    def test_additive_step_damps_near_target(self):
        """While the recent rate sits at/above target, increases stop."""
        ctl = AdaptiveF(
            target_mistake_rate=0.005, initial_f=0.5, rate_decay=0.99
        )
        ctl.observe_reveal(True)  # EWMA jumps to 0.01 > target
        f_after_cut = ctl.f
        assert ctl.recent_mistake_rate > ctl.target_mistake_rate
        ctl.observe_reveal(False)  # headroom still negative -> no step up
        assert ctl.f == pytest.approx(f_after_cut)

    def test_recovers_after_bad_phase(self):
        """The EWMA (unlike an all-time average) lets f climb again once
        mistakes stop — e.g. after reputation has demoted the defectors."""
        ctl = AdaptiveF(target_mistake_rate=0.02, initial_f=0.5)
        for _ in range(50):
            ctl.observe_reveal(True)
        assert ctl.f == ctl.f_min
        for _ in range(2000):
            ctl.observe_reveal(False)
        assert ctl.f > 0.5
        # The all-time average is still terrible; only the EWMA recovered.
        assert ctl.observed_mistake_rate > ctl.target_mistake_rate

    def test_converges_to_low_rate_regime(self):
        """Against a Bernoulli(q) mistake process with q << target, the
        controller climbs; with q >> target it collapses to the floor."""
        rng = np.random.default_rng(3)
        quiet = AdaptiveF(target_mistake_rate=0.05, initial_f=0.3)
        for _ in range(2000):
            quiet.observe_reveal(bool(rng.random() < 0.001))
        noisy = AdaptiveF(target_mistake_rate=0.05, initial_f=0.3)
        for _ in range(2000):
            noisy.observe_reveal(bool(rng.random() < 0.5))
        assert quiet.f > 0.6
        assert noisy.f == noisy.f_min

    def test_reacts_to_phase_change(self):
        """A sleeper-style phase change drags f back down quickly."""
        ctl = AdaptiveF(initial_f=0.3)
        for _ in range(500):
            ctl.observe_reveal(False)
        high = ctl.f
        for _ in range(5):
            ctl.observe_reveal(True)
        assert ctl.f < high * 0.2


class TestIntegration:
    def test_apply_to_params(self):
        ctl = AdaptiveF(initial_f=0.42)
        params = ctl.apply_to(ProtocolParams(f=0.9, beta=0.8))
        assert params.f == pytest.approx(0.42)
        assert params.beta == 0.8  # everything else preserved
