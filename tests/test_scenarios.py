"""Tests for the named scenario registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.ledger.properties import check_all_properties
from repro.workloads.scenarios import SCENARIOS, build_engine, scenario_names


class TestRegistry:
    def test_names_sorted_and_nonempty(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "paper-default" in names
        assert "smoke" in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_engine("no-such-scenario")

    def test_every_scenario_topology_valid(self):
        for scenario in SCENARIOS.values():
            topo = scenario.topology()
            topo.validate()
            assert topo.l == scenario.l and topo.m == scenario.m

    def test_every_scenario_buildable(self):
        for name in scenario_names():
            engine, workload, scenario = build_engine(name, seed=1)
            assert engine.topology.n == scenario.n
            specs = workload.take(4)
            assert len(specs) == 4


class TestExecution:
    def test_smoke_scenario_runs_clean(self):
        engine, workload, scenario = build_engine("smoke", seed=2)
        for _ in range(scenario.rounds):
            engine.run_round(workload.take(scenario.batch))
        engine.finalize()
        report = check_all_properties(engine.ledgers(), engine.transcript)
        assert report.all_hold

    def test_deterministic_per_seed(self):
        def run(seed):
            engine, workload, scenario = build_engine("smoke", seed=seed)
            hashes = []
            for _ in range(scenario.rounds):
                hashes.append(engine.run_round(workload.take(scenario.batch)).block.hash())
            return hashes

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_hostile_scenario_short_slice(self):
        engine, workload, _scenario = build_engine("hostile-majority", seed=3)
        for _ in range(5):
            engine.run_round(workload.take(16))
        engine.finalize()
        # Some damage is expected, but the chain stays consistent.
        from repro.ledger.chain import check_agreement

        check_agreement(engine.ledgers())

    def test_forgery_scenario_catches_everything(self):
        engine, workload, _scenario = build_engine("forgery-storm", seed=4)
        for _ in range(5):
            engine.run_round(workload.take(16))
        caught = [g.metrics.forgeries_caught for g in engine.governors.values()]
        assert all(c == engine.metrics.forged_uploads for c in caught)
        assert engine.metrics.forged_uploads > 0
