"""Unit tests for the Identity Manager."""

from __future__ import annotations

import pytest

from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import Signature
from repro.exceptions import UnknownIdentityError


class TestEnrolment:
    def test_enroll_returns_key_for_owner(self):
        im = IdentityManager(seed=0)
        key = im.enroll("p0", Role.PROVIDER)
        assert key.owner == "p0"

    def test_duplicate_enrolment_rejected(self):
        im = IdentityManager(seed=0)
        im.enroll("p0", Role.PROVIDER)
        with pytest.raises(UnknownIdentityError):
            im.enroll("p0", Role.COLLECTOR)

    def test_distinct_secrets_per_node(self):
        im = IdentityManager(seed=0)
        k1 = im.enroll("a", Role.PROVIDER)
        k2 = im.enroll("b", Role.PROVIDER)
        assert k1.secret != k2.secret

    def test_deterministic_in_seed(self):
        k1 = IdentityManager(seed=5).enroll("a", Role.PROVIDER)
        k2 = IdentityManager(seed=5).enroll("a", Role.PROVIDER)
        assert k1.secret == k2.secret

    def test_role_and_record(self):
        im = IdentityManager(seed=0)
        im.enroll("g0", Role.GOVERNOR)
        assert im.role_of("g0") is Role.GOVERNOR
        assert im.record("g0").node_id == "g0"

    def test_unknown_record_raises(self):
        with pytest.raises(UnknownIdentityError):
            IdentityManager(seed=0).record("ghost")

    def test_members_filter_by_role(self, im):
        collectors = set(im.members(Role.COLLECTOR))
        assert collectors == {"c0", "c1", "c2", "c3"}
        assert set(im.members()) >= collectors

    def test_is_enrolled(self, im):
        assert im.is_enrolled("p0")
        assert not im.is_enrolled("nobody")


class TestLinks:
    def test_register_and_query(self, im):
        assert im.is_linked("c0", "p0")
        assert "p1" in im.links_of("c0")

    def test_unlinked_pair(self, im):
        im2 = IdentityManager(seed=9)
        im2.enroll("cX", Role.COLLECTOR)
        im2.enroll("pX", Role.PROVIDER)
        assert not im2.is_linked("cX", "pX")

    def test_link_requires_enrolment(self):
        im = IdentityManager(seed=0)
        im.enroll("c0", Role.COLLECTOR)
        with pytest.raises(UnknownIdentityError):
            im.register_link("c0", "ghost-provider")


class TestVerification:
    def test_sign_and_verify(self, im):
        sig = im.sign_as("p0", b"msg")
        assert im.verify("p0", b"msg", sig)

    def test_reject_unknown_sender(self, im):
        sig = im.sign_as("p0", b"msg")
        assert not im.verify("stranger", b"msg", sig)

    def test_reject_cross_node_signature(self, im):
        sig = im.sign_as("p0", b"msg")
        assert not im.verify("p1", b"msg", sig)

    def test_reject_tampered_message(self, im):
        sig = im.sign_as("p0", b"msg")
        assert not im.verify("p0", b"other", sig)

    def test_collector_upload_verification_happy_path(self, im):
        inner = ("payload",)
        provider_sig = im.sign_as("p0", inner)
        outer = ("upload", inner)
        collector_sig = im.sign_as("c0", outer)
        assert im.verify_collector_upload(
            "c0", outer, collector_sig, "p0", provider_sig, inner
        )

    def test_collector_upload_rejects_unlinked_provider(self, im):
        im2 = IdentityManager(seed=3)
        im2.enroll("c9", Role.COLLECTOR)
        im2.enroll("p9", Role.PROVIDER)
        inner = ("payload",)
        provider_sig = im2.sign_as("p9", inner)
        outer = ("upload", inner)
        collector_sig = im2.sign_as("c9", outer)
        # No register_link call: must fail on the link check.
        assert not im2.verify_collector_upload(
            "c9", outer, collector_sig, "p9", provider_sig, inner
        )

    def test_collector_upload_rejects_forged_provider_sig(self, im):
        inner = ("payload",)
        fake = im.sign_as("c0", inner)  # collector pretends to be provider
        forged = Signature(signer="p0", tag=fake.tag)
        outer = ("upload", inner)
        collector_sig = im.sign_as("c0", outer)
        assert not im.verify_collector_upload(
            "c0", outer, collector_sig, "p0", forged, inner
        )

    def test_export_directory_has_no_secrets(self, im):
        directory = im.export_directory()
        assert directory["p0"] == "provider"
        assert all(isinstance(v, str) for v in directory.values())
