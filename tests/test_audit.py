"""Safety auditor: config switchboard, invariant checks, quarantine,
and the bit-identity contract (auditor on == auditor off on clean runs).
"""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditConfig,
    AuditReport,
    AuditViolation,
    SafetyAuditor,
    ViolationType,
    harness_audit,
)
from repro.audit import config as audit_config
from repro.core.netengine import NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.core.regret import rwm_bound
from repro.crypto.signatures import Signature, SigningKey, sign
from repro.consensus.messages import CommitVote
from repro.crypto.identity import IdentityManager, Role
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.transaction import (
    Label,
    make_labeled_transaction,
    make_signed_transaction,
)
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def make_engine(seed=0, resilience=False, audit=None, behaviors=None):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=0.5, delta=0.2),
        behaviors=behaviors,
        seed=seed,
        max_delay=0.05,
        resilience=resilience,
        audit=audit,
    )
    return engine, topo


def run_rounds(engine, topo, rounds, seed=1, per_round=8):
    workload = BernoulliWorkload(topo.providers, p_valid=0.85, seed=seed)
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))


def make_vote(key: SigningKey, serial: int, block_hash: bytes, rnd=1) -> CommitVote:
    message = ("audit-commit", key.owner, serial, block_hash, rnd)
    return CommitVote(
        governor=key.owner,
        serial=serial,
        block_hash=block_hash,
        round_number=rnd,
        signature=sign(key, message),
    )


class TestAuditConfig:
    def test_defaults_all_on(self):
        cfg = AuditConfig()
        assert cfg.enabled
        assert cfg.commit_votes
        assert cfg.block_integrity
        assert cfg.reputation_invariants
        assert cfg.theorem_guardrail
        assert cfg.quarantine
        assert cfg.s_min == 0.0

    def test_configure_and_restore(self):
        prior = audit_config.get_config()
        try:
            cfg = audit_config.configure(quarantine=False, s_min=2.0)
            assert cfg is audit_config.get_config()
            assert not cfg.quarantine and cfg.s_min == 2.0
        finally:
            audit_config.set_config(prior)
        assert audit_config.get_config() == prior

    def test_overridden_scoped(self):
        prior = audit_config.get_config()
        with audit_config.overridden(theorem_guardrail=False) as cfg:
            assert not cfg.theorem_guardrail
            assert not audit_config.get_config().theorem_guardrail
        assert audit_config.get_config() == prior

    def test_disabled_scoped(self):
        prior = audit_config.get_config()
        with audit_config.disabled() as cfg:
            assert not cfg.enabled
        assert audit_config.get_config() == prior

    def test_engine_snapshots_active_config(self):
        with audit_config.overridden(quarantine=False):
            engine, _ = make_engine()
        assert not engine.audit.quarantine
        # Explicit argument wins over the ambient config.
        engine, _ = make_engine(audit=AuditConfig(enabled=False))
        assert not engine.audit.enabled


class TestAuditBlock:
    def make_block(self, serial=1, prev=GENESIS_PREV_HASH):
        return Block(
            serial=serial, tx_list=(), prev_hash=prev,
            proposer="g0", round_number=1,
        )

    def test_clean_block_passes(self):
        auditor = SafetyAuditor("g0")
        block = self.make_block()
        found = auditor.audit_block(
            block, expected_serial=1, expected_prev=GENESIS_PREV_HASH,
            round_number=1, store_hash=block.hash(),
        )
        assert found == []
        assert auditor.report.clean
        assert auditor.report.checks_run >= 3

    def test_wrong_serial_and_prev_flagged(self):
        auditor = SafetyAuditor("g0")
        block = self.make_block(serial=3, prev=b"\x01" * 32)
        found = auditor.audit_block(
            block, expected_serial=1, expected_prev=GENESIS_PREV_HASH,
            round_number=1,
        )
        types = [v.type for v in found]
        assert types.count(ViolationType.CHAIN_INTEGRITY) == 2
        assert all(not v.provable for v in found)
        assert all(v.culprit == "g0" for v in found)

    def test_store_crosscheck_catches_tamper(self):
        auditor = SafetyAuditor("g0")
        block = self.make_block()
        found = auditor.audit_block(
            block, expected_serial=1, expected_prev=GENESIS_PREV_HASH,
            round_number=2, store_hash=b"\x02" * 32,
        )
        assert [v.type for v in found] == [ViolationType.BLOCK_TAMPER]
        # In-flight tampering is unattributable, hence never provable.
        assert found[0].culprit == "unknown"
        assert not found[0].provable


class TestIngestVote:
    def test_consistent_votes_are_clean(self):
        auditor = SafetyAuditor("g1")
        key = SigningKey(owner="g0", secret=b"\x01" * 32)
        h = b"\x03" * 32
        for _ in range(2):
            violation, mismatch = auditor.ingest_vote(make_vote(key, 1, h), h, 1)
            assert violation is None
            assert not mismatch

    def test_equivocation_is_provable(self):
        auditor = SafetyAuditor("g1")
        key = SigningKey(owner="g0", secret=b"\x01" * 32)
        auditor.ingest_vote(make_vote(key, 1, b"\x03" * 32), b"\x03" * 32, 1)
        violation, _ = auditor.ingest_vote(
            make_vote(key, 1, b"\x04" * 32), b"\x03" * 32, 1
        )
        assert violation is not None
        assert violation.type is ViolationType.GOVERNOR_EQUIVOCATION
        assert violation.provable
        assert violation.culprit == "g0"
        assert len(violation.evidence) == 2

    def test_mismatch_flag_signals_forwarding(self):
        auditor = SafetyAuditor("g1")
        key = SigningKey(owner="g0", secret=b"\x01" * 32)
        _, mismatch = auditor.ingest_vote(
            make_vote(key, 1, b"\x04" * 32), own_hash=b"\x03" * 32, round_number=1
        )
        assert mismatch
        # No own commit yet: nothing to contradict.
        _, mismatch = auditor.ingest_vote(
            make_vote(key, 2, b"\x04" * 32), own_hash=None, round_number=1
        )
        assert not mismatch

    def test_forged_vote_is_no_evidence(self):
        im = IdentityManager(seed=5)
        im.enroll("g0", Role.GOVERNOR)
        auditor = SafetyAuditor("g1", im=im)
        wrong_key = SigningKey(owner="g0", secret=b"\x09" * 32)
        violation, mismatch = auditor.ingest_vote(
            make_vote(wrong_key, 1, b"\x03" * 32), b"\x04" * 32, 1
        )
        assert violation is None and not mismatch
        assert [v.type for v in auditor.report.violations] == [
            ViolationType.BAD_SIGNATURE
        ]
        # The forgery names nobody: it cannot frame g0.
        assert auditor.report.violations[0].culprit == "unknown"


class TestObserveUpload:
    def setup_method(self):
        self.provider_key = SigningKey(owner="p0", secret=b"\x0a" * 32)
        self.collector_key = SigningKey(owner="c0", secret=b"\x0b" * 32)
        self.tx = make_signed_transaction(self.provider_key, "x", 1.0, nonce=0)

    def test_conflicting_signed_labels_are_provable(self):
        auditor = SafetyAuditor("g0")
        first = make_labeled_transaction(self.collector_key, self.tx, Label.VALID)
        second = make_labeled_transaction(self.collector_key, self.tx, Label.INVALID)
        assert auditor.observe_upload(first, 1) is None
        violation = auditor.observe_upload(second, 1)
        assert violation is not None
        assert violation.type is ViolationType.COLLECTOR_EQUIVOCATION
        assert violation.provable and violation.culprit == "c0"

    def test_tampered_upload_cannot_frame(self):
        im = IdentityManager(seed=6)
        key = im.enroll("c0", Role.COLLECTOR)
        auditor = SafetyAuditor("g0", im=im)
        honest = make_labeled_transaction(key, self.tx, Label.VALID)
        assert auditor.observe_upload(honest, 1) is None
        # A flipped label under the old signature never becomes evidence.
        from dataclasses import replace

        flipped = replace(honest, label=Label.INVALID)
        assert auditor.observe_upload(flipped, 1) is None
        stripped = replace(
            honest,
            label=Label.INVALID,
            collector_signature=Signature(signer="c0", tag=b"\x00" * 32),
        )
        assert auditor.observe_upload(stripped, 1) is None
        assert auditor.report.clean


class TestBookAndRegret:
    def test_healthy_book_is_clean(self):
        engine, topo = make_engine(seed=3)
        run_rounds(engine, topo, 2, seed=4)
        auditor = SafetyAuditor("harness")
        for gov in engine.governors.values():
            assert auditor.audit_book(gov.book, 2) == []
        assert auditor.report.clean

    def test_poisoned_weight_flagged(self):
        engine, topo = make_engine(seed=3)
        run_rounds(engine, topo, 1, seed=4)
        gov = engine.governors["g0"]
        cid = next(iter(gov.book.collectors()))
        vector = gov.book.vector(cid)
        provider = next(iter(vector.provider_weights))
        vector.provider_weights[provider] = -1.0
        auditor = SafetyAuditor("harness")
        found = auditor.audit_book(gov.book, 1)
        assert any(v.type is ViolationType.REPUTATION_INVARIANT for v in found)

    def test_regret_guardrail(self):
        auditor = SafetyAuditor("harness")
        bound = rwm_bound(s_min=0.0, r=2, beta=0.9)
        assert auditor.audit_regret(bound * 0.5, r=2, beta=0.9, round_number=1) is None
        violation = auditor.audit_regret(bound + 1.0, r=2, beta=0.9, round_number=2)
        assert violation is not None
        assert violation.type is ViolationType.REGRET_BOUND
        assert violation.is_safety

    def test_report_helpers(self):
        report = AuditReport(auditor="x")
        assert report.clean
        v1 = AuditViolation(
            type=ViolationType.GOVERNOR_EQUIVOCATION, culprit="g0",
            round_number=1, detail="d", provable=True,
        )
        v2 = AuditViolation(
            type=ViolationType.AGREEMENT, culprit="unknown",
            round_number=1, detail="d",
        )
        report.violations.extend([v1, v2])
        assert not report.clean
        assert report.by_type(ViolationType.AGREEMENT) == [v2]
        assert report.provable() == [v1]
        # Attributed misbehaviour of others is not a local safety failure.
        assert report.safety_violations() == [v2]


class TestHarnessAudit:
    def test_clean_networked_run(self):
        engine, topo = make_engine(seed=11)
        run_rounds(engine, topo, 3, seed=12)
        engine.finalize()
        report = harness_audit(
            "harness", engine.ledgers(), list(engine.governors.values()),
            r=topo.r, beta=engine.params.beta, round_number=3,
        )
        assert report.clean, report.violations

    def test_engine_round_audit_is_clean_on_honest_runs(self):
        engine, topo = make_engine(seed=13)
        run_rounds(engine, topo, 3, seed=14)
        assert engine.harness_auditor.report.clean
        for auditor in engine.auditors.values():
            assert auditor.report.clean, auditor.report.violations
            assert auditor.report.checks_run > 0

    def test_inprocess_engine_audit_report(self):
        topo = Topology.regular(l=8, n=4, m=3, r=2)
        engine = ProtocolEngine(topo, ProtocolParams(f=0.5), seed=21)
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=22)
        for _ in range(3):
            engine.run_round(workload.take(8))
        engine.finalize()
        assert engine.audit_report is not None
        assert engine.audit_report.clean, engine.audit_report.violations
        with audit_config.disabled():
            engine2 = ProtocolEngine(topo, ProtocolParams(f=0.5), seed=21)
            engine2.run_round(workload.take(8))
            engine2.finalize()
        assert engine2.audit_report is None


class TestBitIdentity:
    """Satellite: seeded ledgers are bit-identical auditor on vs off."""

    @pytest.mark.parametrize("resilience", [False, True])
    def test_ledgers_identical_with_auditor_on_and_off(self, resilience):
        def block_hashes(audit):
            engine, topo = make_engine(seed=7, resilience=resilience, audit=audit)
            run_rounds(engine, topo, 5, seed=8)
            engine.finalize()
            return [
                engine.store.retrieve(s).hash()
                for s in range(1, engine.store.height + 1)
            ]

        on = block_hashes(audit=AuditConfig())
        off = block_hashes(audit=AuditConfig(enabled=False))
        assert len(on) == 5
        assert on == off

    def test_audit_traffic_flows_when_enabled(self):
        engine, topo = make_engine(seed=7)
        run_rounds(engine, topo, 2, seed=8)
        voted = sum(
            len(votes)
            for auditor in engine.auditors.values()
            for votes in auditor._votes.values()
        )
        assert voted > 0
        off, _ = make_engine(seed=7, audit=AuditConfig(enabled=False))
        run_rounds(off, topo, 2, seed=8)
        assert all(not a._votes for a in off.auditors.values())


class TestQuarantine:
    def test_quarantined_collector_is_suppressed_and_dropped(self):
        engine, topo = make_engine(seed=31)
        run_rounds(engine, topo, 1, seed=32)
        violation = AuditViolation(
            type=ViolationType.COLLECTOR_EQUIVOCATION, culprit="c0",
            round_number=1, detail="test", provable=True,
        )
        engine.quarantine_node("c0", violation)
        assert "c0" in engine.quarantined_nodes
        for gov in engine.governors.values():
            assert not gov.book.is_registered("c0")
        assert engine.quarantine_log
        _t, _rnd, node, vtype = engine.quarantine_log[-1]
        assert node == "c0" and vtype == "collector-equivocation"
        # Quarantine is idempotent.
        engine.quarantine_node("c0", violation)
        assert len(engine.quarantine_log) == 1
        run_rounds(engine, topo, 2, seed=33)
        assert engine.store.height == 3
        # No fresh uploads from c0 were ingested post-quarantine.
        assert all(
            gov.ledger.height == engine.store.height
            for gov in engine.governors.values()
        )

    def test_quarantined_governor_excluded_from_leadership(self):
        engine, topo = make_engine(seed=41)
        violation = AuditViolation(
            type=ViolationType.GOVERNOR_EQUIVOCATION, culprit="g0",
            round_number=0, detail="test", provable=True,
        )
        engine.quarantine_node("g0", violation)
        run_rounds(engine, topo, 4, seed=42)
        for serial in range(1, engine.store.height + 1):
            assert engine.store.retrieve(serial).proposer != "g0"

    def test_release_readmits_collector_at_median(self):
        engine, topo = make_engine(seed=51)
        run_rounds(engine, topo, 2, seed=52)
        violation = AuditViolation(
            type=ViolationType.COLLECTOR_EQUIVOCATION, culprit="c1",
            round_number=2, detail="test", provable=True,
        )
        engine.quarantine_node("c1", violation)
        run_rounds(engine, topo, 1, seed=53)
        engine.release_quarantine("c1")
        assert "c1" not in engine.quarantined_nodes
        for gov in engine.governors.values():
            assert gov.book.is_registered("c1")
        run_rounds(engine, topo, 1, seed=54)
        engine.finalize()
        assert engine.store.height == 4

    def test_release_resyncs_governor(self):
        engine, topo = make_engine(seed=61)
        run_rounds(engine, topo, 1, seed=62)
        violation = AuditViolation(
            type=ViolationType.GOVERNOR_EQUIVOCATION, culprit="g2",
            round_number=1, detail="test", provable=True,
        )
        engine.quarantine_node("g2", violation)
        run_rounds(engine, topo, 2, seed=63)
        # Quarantined governors still receive blocks (ledgers never stall).
        assert engine.governors["g2"].ledger.height == engine.store.height
        engine.release_quarantine("g2")
        run_rounds(engine, topo, 1, seed=64)
        assert engine.governors["g2"].ledger.height == engine.store.height == 4
