"""Tests for the JSON ledger codec (round-trip + tamper evidence)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.signatures import SigningKey
from repro.exceptions import LedgerError
from repro.ledger.block import Block
from repro.ledger.chain import Ledger
from repro.ledger.codec import (
    decode_block,
    decode_labeled,
    decode_record,
    decode_transaction,
    dump_chain,
    encode_block,
    encode_labeled,
    encode_record,
    encode_transaction,
    load_chain,
)
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    TxRecord,
    make_labeled_transaction,
    make_signed_transaction,
)

PROVIDER_KEY = SigningKey(owner="p0", secret=b"\x16" * 32)
COLLECTOR_KEY = SigningKey(owner="c0", secret=b"\x17" * 32)
_NONCE = iter(range(100_000))


def make_tx(payload="x"):
    return make_signed_transaction(PROVIDER_KEY, payload, 1.5, nonce=next(_NONCE))


def make_chain(n=3) -> Ledger:
    ledger = Ledger(owner="g0")
    for serial in range(1, n + 1):
        rec = TxRecord(
            tx=make_tx({"k": serial}), label=Label.VALID, status=CheckStatus.CHECKED
        )
        ledger.append(
            Block(
                serial=serial, tx_list=(rec,), prev_hash=ledger.tip_hash(),
                proposer="g0", round_number=serial,
            )
        )
    return ledger


class TestTransactionRoundTrip:
    def test_roundtrip_preserves_identity(self):
        tx = make_tx({"amount": 12, "note": "hello"})
        back = decode_transaction(encode_transaction(tx))
        assert back.tx_id == tx.tx_id
        assert back.canonical_bytes() == tx.canonical_bytes()
        assert back.provider_signature == tx.provider_signature

    def test_json_serialisable(self):
        text = json.dumps(encode_transaction(make_tx()))
        assert decode_transaction(json.loads(text)).provider == "p0"

    def test_missing_field_rejected(self):
        obj = encode_transaction(make_tx())
        del obj["timestamp"]
        with pytest.raises(LedgerError):
            decode_transaction(obj)

    def test_malformed_signature_rejected(self):
        obj = encode_transaction(make_tx())
        obj["signature"]["tag"] = "zz-not-hex"
        with pytest.raises(LedgerError):
            decode_transaction(obj)


class TestLabeledRoundTrip:
    def test_roundtrip(self):
        labeled = make_labeled_transaction(COLLECTOR_KEY, make_tx(), Label.INVALID)
        back = decode_labeled(encode_labeled(labeled))
        assert back.canonical_bytes() == labeled.canonical_bytes()
        assert back.label is Label.INVALID

    def test_bad_label_rejected(self):
        obj = encode_labeled(
            make_labeled_transaction(COLLECTOR_KEY, make_tx(), Label.VALID)
        )
        obj["label"] = 7
        with pytest.raises(LedgerError):
            decode_labeled(obj)


class TestRecordAndBlock:
    def test_record_roundtrip_all_statuses(self):
        for status in CheckStatus:
            rec = TxRecord(tx=make_tx(), label=Label.INVALID, status=status)
            back = decode_record(encode_record(rec))
            assert back.status is status
            assert back.canonical_bytes() == rec.canonical_bytes()

    def test_block_roundtrip_preserves_hash(self):
        ledger = make_chain(1)
        block = ledger.retrieve(1)
        back = decode_block(encode_block(block))
        assert back.hash() == block.hash()
        assert back.tx_root == block.tx_root

    def test_tampered_block_detected(self):
        block = make_chain(1).retrieve(1)
        obj = encode_block(block)
        obj["proposer"] = "gX"  # payload edit, stale recorded hash
        with pytest.raises(LedgerError):
            decode_block(obj)


class TestChainFiles:
    def test_dump_load_roundtrip(self):
        ledger = make_chain(4)
        text = dump_chain(ledger)
        loaded = load_chain(text)
        assert loaded.height == 4
        assert loaded.retrieve(4).hash() == ledger.retrieve(4).hash()
        loaded.verify_integrity()

    def test_dump_to_file_object(self, tmp_path):
        ledger = make_chain(2)
        path = tmp_path / "chain.json"
        with open(path, "w") as fp:
            dump_chain(ledger, fp)
        loaded = load_chain(path.read_text())
        assert loaded.height == 2

    def test_tampered_file_rejected(self):
        ledger = make_chain(3)
        doc = json.loads(dump_chain(ledger))
        # Replace block 2's payload and refresh its recorded hash so only
        # the *chain link* can catch it.
        doc["blocks"][1]["tx_list"][0]["tx"]["payload"] = {"k": 999}
        tampered_block = decode_block({**doc["blocks"][1], "hash": None})
        doc["blocks"][1]["hash"] = tampered_block.hash().hex()
        with pytest.raises(Exception):  # ChainIntegrityError
            load_chain(json.dumps(doc))

    def test_wrong_format_version(self):
        with pytest.raises(LedgerError):
            load_chain(json.dumps({"format": 99, "blocks": []}))

    def test_garbage_rejected(self):
        with pytest.raises(LedgerError):
            load_chain("this is not json")

    def test_height_mismatch_rejected(self):
        ledger = make_chain(2)
        doc = json.loads(dump_chain(ledger))
        doc["height"] = 5
        with pytest.raises(LedgerError):
            load_chain(json.dumps(doc))


_payloads = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=8),
    lambda kids: st.lists(kids, max_size=3)
    | st.dictionaries(st.text(max_size=5), kids, max_size=3),
    max_leaves=8,
)


@given(_payloads)
def test_property_payload_roundtrip_preserves_tx_id(payload):
    """Any JSON-typed payload round-trips with its tx id (hash) intact."""
    tx = make_signed_transaction(PROVIDER_KEY, payload, 2.0, nonce=1)
    back = decode_transaction(json.loads(json.dumps(encode_transaction(tx))))
    assert back.tx_id == tx.tx_id
