"""Tests for leader expulsion and Byzantine-governor fault injection."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError, LeaderMisbehaviourError
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def make_engine(seed=0, stake=None, leader_rotation=False):
    topo = Topology.regular(l=8, n=4, m=4, r=2)
    return (
        ProtocolEngine(
            topo, ProtocolParams(f=0.5), seed=seed, stake=stake,
            leader_rotation=leader_rotation,
        ),
        topo,
    )


class TestExpulsion:
    def test_expelled_governor_never_leads(self):
        engine, topo = make_engine(leader_rotation=True)
        engine.expel_governor("g0", reason="test")
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=1)
        leaders = {engine.run_round(workload.take(8)).leader for _ in range(8)}
        assert "g0" not in leaders
        assert leaders == {"g1", "g2", "g3"}

    def test_expelled_governor_never_wins_vrf(self):
        engine, topo = make_engine(stake={"g0": 100, "g1": 1, "g2": 1, "g3": 1})
        engine.expel_governor("g0")
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=2)
        leaders = {engine.run_round(workload.take(8)).leader for _ in range(10)}
        assert "g0" not in leaders

    def test_cannot_expel_everyone(self):
        engine, _topo = make_engine()
        for gid in ("g0", "g1", "g2"):
            engine.expel_governor(gid)
        with pytest.raises(ConfigurationError):
            engine.expel_governor("g3")

    def test_unknown_governor_rejected(self):
        engine, _topo = make_engine()
        with pytest.raises(ConfigurationError):
            engine.expel_governor("ghost")
        with pytest.raises(ConfigurationError):
            engine.mark_byzantine_governor("ghost")

    def test_expulsions_recorded(self):
        engine, _topo = make_engine()
        engine.expel_governor("g2", reason="equivocation")
        assert engine.expelled_governors == frozenset({"g2"})
        assert engine.expulsions == [("g2", "equivocation")]

    def test_expelled_still_replicates_chain(self):
        engine, topo = make_engine(leader_rotation=True)
        engine.expel_governor("g0")
        workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=3)
        for _ in range(4):
            engine.run_round(workload.take(8))
        # The expelled governor still appends every block (read path).
        assert engine.governors["g0"].ledger.height == 4


class TestByzantineLeader:
    def test_byzantine_leader_expelled_and_transfer_completes(self):
        # All stake on g0: it must lead, tamper, and get expelled.
        engine, _topo = make_engine(stake={"g0": 10, "g1": 1, "g2": 1, "g3": 1})
        engine.mark_byzantine_governor("g0")
        # High probability g0 leads round 1 (10/13 stake); loop a few
        # transfers so the expulsion definitely triggers.
        engine.transfer_stake("g1", "g2", 1)
        engine.transfer_stake("g2", "g3", 1)
        engine.transfer_stake("g3", "g1", 1)
        assert "g0" in engine.expelled_governors
        # Transfers still applied by honest leaders.
        assert engine.stake.total == 13

    def test_all_byzantine_fails_loudly(self):
        engine, _topo = make_engine()
        for gid in ("g0", "g1", "g2", "g3"):
            engine.mark_byzantine_governor(gid)
        with pytest.raises((LeaderMisbehaviourError, ConfigurationError)):
            for _ in range(4):
                engine.transfer_stake("g0", "g1", 1)

    def test_honest_run_unaffected_by_marking_nonleader(self):
        engine, _topo = make_engine(stake={"g0": 100, "g1": 1, "g2": 1, "g3": 1})
        engine.mark_byzantine_governor("g3")  # tiny stake, rarely leads
        # Byzantine flag only matters when that governor actually leads.
        messages = engine.transfer_stake("g0", "g1", 5)
        assert messages > 0
        assert engine.stake.balance("g1") == 6
