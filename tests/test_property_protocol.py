"""Hypothesis property tests over whole protocol runs.

Randomised small configurations (topology shape, f, adversary mix,
workload validity rate) must always preserve the run-level invariants:

* the five Section-3.1 properties;
* Lemma 2 in expectation (unchecked count bounded);
* conservation of rewards (payouts sum to pool per round);
* determinism (same config + seed => identical chains).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
)
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.ledger.properties import check_all_properties
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload

_engine_configs = st.fixed_dictionaries(
    {
        "n": st.sampled_from([4, 6]),
        "mult": st.integers(min_value=1, max_value=3),
        "r": st.integers(min_value=2, max_value=3),
        "m": st.integers(min_value=2, max_value=4),
        "f": st.floats(min_value=0.1, max_value=0.9),
        "p_valid": st.floats(min_value=0.2, max_value=1.0),
        "adversaries": st.integers(min_value=0, max_value=2),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)

_slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(config):
    n = config["n"]
    topo = Topology.regular(l=n * config["mult"], n=n, m=config["m"], r=config["r"])
    kinds = [MisreportBehavior(0.5), ConcealBehavior(0.5), AlwaysInvertBehavior()]
    behaviors = {
        topo.collectors[i]: kinds[i % len(kinds)] for i in range(config["adversaries"])
    }
    engine = ProtocolEngine(
        topo,
        ProtocolParams(f=config["f"]),
        behaviors=behaviors,
        seed=config["seed"],
        leader_rotation=True,
    )
    workload = BernoulliWorkload(
        topo.providers, p_valid=config["p_valid"], seed=config["seed"] + 1
    )
    return engine, workload


@given(_engine_configs)
@_slow
def test_property_five_properties_always_hold(config):
    """Any small configuration keeps the Section-3.1 properties."""
    engine, workload = _build(config)
    for _ in range(4):
        engine.run_round(workload.take(8))
    engine.run_round([])  # land pending argues
    engine.finalize()
    report = check_all_properties(engine.ledgers(), engine.transcript)
    assert report.all_hold, report.violations


@given(_engine_configs)
@_slow
def test_property_rewards_conserved(config):
    """Every round's payouts sum to the configured pool."""
    engine, workload = _build(config)
    pool = engine.params.reward_pool_per_block
    for _ in range(3):
        result = engine.run_round(workload.take(8))
        assert sum(result.rewards.values()) == pytest.approx(pool)


@given(_engine_configs)
@_slow
def test_property_deterministic_chains(config):
    """Identical configuration and seed produce identical block hashes."""
    hashes = []
    for _attempt in range(2):
        engine, workload = _build(config)
        run = [engine.run_round(workload.take(8)).block.hash() for _ in range(3)]
        hashes.append(run)
    assert hashes[0] == hashes[1]


@given(_engine_configs)
@_slow
def test_property_unchecked_bounded_by_f(config):
    """Lemma 2 in aggregate: per-governor unchecked rate <= f + noise."""
    engine, workload = _build(config)
    for _ in range(6):
        engine.run_round(workload.take(8))
    for gov in engine.governors.values():
        screened = gov.metrics.transactions_screened
        if screened >= 20:
            rate = gov.metrics.unchecked / screened
            # Small-sample slack: binomial noise at 48 transactions.
            assert rate <= config["f"] + 0.25
