"""Unit tests for collector behaviour models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    FlipFlopBehavior,
    ForgeBehavior,
    HonestBehavior,
    MisreportBehavior,
    MixedAdversary,
    SleeperBehavior,
    behavior_registry,
)
from repro.exceptions import ConfigurationError
from repro.ledger.transaction import Label


class TestHonest:
    def test_truthful_labels(self, rng):
        b = HonestBehavior()
        assert b.label_for(True, rng) is Label.VALID
        assert b.label_for(False, rng) is Label.INVALID

    def test_never_forges(self, rng):
        assert not any(HonestBehavior().should_forge(rng) for _ in range(100))


class TestMisreport:
    def test_rate_zero_is_honest(self, rng):
        b = MisreportBehavior(0.0)
        assert all(b.label_for(True, rng) is Label.VALID for _ in range(50))

    def test_rate_one_always_flips(self, rng):
        b = MisreportBehavior(1.0)
        assert all(b.label_for(True, rng) is Label.INVALID for _ in range(50))

    def test_intermediate_rate(self, rng):
        b = MisreportBehavior(0.3)
        flips = sum(b.label_for(True, rng) is Label.INVALID for _ in range(5000))
        assert flips / 5000 == pytest.approx(0.3, abs=0.03)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            MisreportBehavior(1.5)


class TestConceal:
    def test_rate_one_always_silent(self, rng):
        b = ConcealBehavior(1.0)
        assert all(b.label_for(True, rng) is None for _ in range(50))

    def test_reports_truthfully_when_not_concealing(self, rng):
        b = ConcealBehavior(0.0)
        assert b.label_for(False, rng) is Label.INVALID

    def test_intermediate_rate(self, rng):
        b = ConcealBehavior(0.4)
        silences = sum(b.label_for(True, rng) is None for _ in range(5000))
        assert silences / 5000 == pytest.approx(0.4, abs=0.03)


class TestForge:
    def test_labels_honest(self, rng):
        b = ForgeBehavior(0.5)
        assert b.label_for(True, rng) is Label.VALID

    def test_forge_rate(self, rng):
        b = ForgeBehavior(0.25)
        forges = sum(b.should_forge(rng) for _ in range(5000))
        assert forges / 5000 == pytest.approx(0.25, abs=0.03)


class TestMixedAdversary:
    def test_all_zero_is_honest(self, rng):
        b = MixedAdversary()
        assert b.label_for(True, rng) is Label.VALID
        assert not b.should_forge(rng)

    def test_conceal_takes_priority(self, rng):
        b = MixedAdversary(p_misreport=1.0, p_conceal=1.0)
        assert all(b.label_for(True, rng) is None for _ in range(20))

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            MixedAdversary(p_forge=-0.1)


class TestFlipFlop:
    def test_alternates_by_period(self, rng):
        b = FlipFlopBehavior(period=3)
        labels = [b.label_for(True, rng) for _ in range(9)]
        assert labels[:3] == [Label.VALID] * 3
        assert labels[3:6] == [Label.INVALID] * 3
        assert labels[6:9] == [Label.VALID] * 3

    def test_bad_period(self):
        with pytest.raises(ConfigurationError):
            FlipFlopBehavior(period=0)


class TestSleeper:
    def test_honest_prefix(self, rng):
        b = SleeperBehavior(honest_prefix=5, p_after=1.0)
        labels = [b.label_for(True, rng) for _ in range(8)]
        assert labels[:5] == [Label.VALID] * 5
        assert labels[5:] == [Label.INVALID] * 3

    def test_partial_defection(self, rng):
        b = SleeperBehavior(honest_prefix=0, p_after=0.5)
        flips = sum(b.label_for(True, rng) is Label.INVALID for _ in range(5000))
        assert flips / 5000 == pytest.approx(0.5, abs=0.03)

    def test_negative_prefix_rejected(self):
        with pytest.raises(ConfigurationError):
            SleeperBehavior(honest_prefix=-1)


class TestInvert:
    def test_always_opposite(self, rng):
        b = AlwaysInvertBehavior()
        assert b.label_for(True, rng) is Label.INVALID
        assert b.label_for(False, rng) is Label.VALID


class TestRegistry:
    def test_registry_names(self):
        reg = behavior_registry()
        assert set(reg) == {
            "honest", "misreport", "conceal", "forge",
            "mixed", "flipflop", "sleeper", "invert",
        }

    def test_registry_instantiable(self, rng):
        reg = behavior_registry()
        assert reg["honest"]().label_for(True, rng) is Label.VALID
        assert reg["misreport"](0.5) is not None
