"""Unit tests for the shared block store."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import AgreementError, BlockNotFoundError, LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.store import BlockStore
from repro.ledger.transaction import CheckStatus, Label, TxRecord, make_signed_transaction

KEY = SigningKey(owner="p0", secret=b"\x0e" * 32)


def block(serial: int, payload: str = "x", prev: bytes = GENESIS_PREV_HASH) -> Block:
    tx = make_signed_transaction(KEY, payload, 1.0, nonce=serial)
    rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
    return Block(
        serial=serial, tx_list=(rec,), prev_hash=prev, proposer="g0", round_number=serial
    )


class TestPublish:
    def test_publish_and_retrieve(self):
        store = BlockStore()
        b = block(1)
        store.publish(b)
        assert store.retrieve(1) is b
        assert store.height == 1

    def test_republish_identical_is_noop(self):
        store = BlockStore()
        b = block(1)
        store.publish(b)
        store.publish(b)
        assert store.height == 1

    def test_conflicting_publish_rejected(self):
        store = BlockStore()
        store.publish(block(1, "a"))
        with pytest.raises(AgreementError):
            store.publish(block(1, "b"))

    def test_retrieve_missing(self):
        with pytest.raises(BlockNotFoundError):
            BlockStore().retrieve(1)


class TestCursors:
    def test_next_for_walks_in_order(self):
        store = BlockStore()
        b1, b2 = block(1), block(2)
        store.publish(b1)
        store.publish(b2)
        assert store.next_for("reader").serial == 1
        assert store.next_for("reader").serial == 2
        assert store.next_for("reader") is None

    def test_cursors_independent_per_reader(self):
        store = BlockStore()
        store.publish(block(1))
        assert store.next_for("a").serial == 1
        assert store.next_for("b").serial == 1

    def test_unread_count(self):
        store = BlockStore()
        store.publish(block(1))
        store.publish(block(2))
        assert store.unread_count("r") == 2
        store.next_for("r")
        assert store.unread_count("r") == 1

    def test_reader_resumes_after_gap_fill(self):
        store = BlockStore()
        store.publish(block(1))
        store.next_for("r")
        assert store.next_for("r") is None
        store.publish(block(2))
        assert store.next_for("r").serial == 2


class TestIncrementalHeight:
    def test_height_tracks_max_serial(self):
        store = BlockStore()
        store.publish(block(1))
        store.publish(block(3))
        assert store.height == 3
        store.publish(block(2))
        assert store.height == 3

    def test_republish_leaves_height_alone(self):
        store = BlockStore()
        b = block(2)
        store.publish(b)
        store.publish(b)
        assert store.height == 2

    def test_tip_hash_follows_latest(self):
        store = BlockStore()
        assert store.tip_hash() == GENESIS_PREV_HASH
        b1 = block(1)
        store.publish(b1)
        assert store.tip_hash() == b1.hash()


class TestForgetReader:
    def test_forget_resets_cursor(self):
        store = BlockStore()
        store.publish(block(1))
        store.publish(block(2))
        assert store.next_for("r").serial == 1
        store.forget_reader("r")
        assert store.next_for("r").serial == 1
        assert store.unread_count("r") == 1

    def test_forget_unknown_reader_is_noop(self):
        BlockStore().forget_reader("never-seen")


class TestAnchoredStore:
    TIP = b"\xaa" * 32

    def anchored(self) -> BlockStore:
        store = BlockStore()
        store.anchor(serial=5, tip_hash=self.TIP)
        return store

    def test_anchor_sets_base_and_tip(self):
        store = self.anchored()
        assert store.height == 5
        assert store.base_serial == 5
        assert store.tip_hash() == self.TIP

    def test_anchor_nonempty_rejected(self):
        store = BlockStore()
        store.publish(block(1))
        with pytest.raises(LedgerError):
            store.anchor(serial=1, tip_hash=self.TIP)

    def test_anchor_malformed_rejected(self):
        with pytest.raises(LedgerError):
            BlockStore().anchor(serial=0, tip_hash=self.TIP)
        with pytest.raises(LedgerError):
            BlockStore().anchor(serial=1, tip_hash=b"short")

    def test_publish_below_base_is_noop(self):
        store = self.anchored()
        store.publish(block(3))
        assert store.height == 5
        with pytest.raises(BlockNotFoundError, match="compacted"):
            store.retrieve(3)

    def test_publish_continues_above_base(self):
        store = self.anchored()
        b6 = block(6, prev=self.TIP)
        store.publish(b6)
        assert store.height == 6
        assert store.tip_hash() == b6.hash()

    def test_cursors_start_at_base(self):
        store = self.anchored()
        assert store.next_for("r") is None
        b6 = block(6, prev=self.TIP)
        store.publish(b6)
        assert store.unread_count("r") == 1
        assert store.next_for("r").serial == 6
