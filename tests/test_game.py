"""Tests for the Theorem-1 reputation game, including the regret bound."""

from __future__ import annotations

import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.core.game import ReputationGame
from repro.exceptions import ConfigurationError


def mixed_behaviors():
    return [
        HonestBehavior(),
        HonestBehavior(),
        MisreportBehavior(0.3),
        ConcealBehavior(0.3),
        AlwaysInvertBehavior(),
        AlwaysInvertBehavior(),
        MisreportBehavior(0.7),
        ConcealBehavior(0.7),
    ]


class TestConstruction:
    def test_needs_two_collectors(self):
        with pytest.raises(ConfigurationError):
            ReputationGame([HonestBehavior()], horizon=10)

    def test_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            ReputationGame([HonestBehavior()] * 2, horizon=0)

    def test_bad_p_valid(self):
        with pytest.raises(ConfigurationError):
            ReputationGame([HonestBehavior()] * 2, horizon=10, p_valid=1.5)

    def test_bad_selection(self):
        with pytest.raises(ConfigurationError):
            ReputationGame([HonestBehavior()] * 2, horizon=10, selection="magic")


class TestBasicDynamics:
    def test_all_honest_zero_loss(self):
        game = ReputationGame([HonestBehavior()] * 4, horizon=200, seed=1)
        result = game.run()
        assert result.expected_loss == 0.0
        assert result.realized_loss == 0.0
        assert result.s_min == 0.0
        assert all(w == 1.0 for w in result.final_weights.values())

    def test_deterministic_in_seed(self):
        r1 = ReputationGame(mixed_behaviors(), horizon=100, seed=3).run()
        r2 = ReputationGame(mixed_behaviors(), horizon=100, seed=3).run()
        assert r1.expected_loss == r2.expected_loss
        assert r1.final_weights == r2.final_weights

    def test_different_seeds_differ(self):
        r1 = ReputationGame(mixed_behaviors(), horizon=200, seed=3).run()
        r2 = ReputationGame(mixed_behaviors(), horizon=200, seed=4).run()
        assert r1.expected_loss != r2.expected_loss

    def test_inverter_weight_collapses(self):
        game = ReputationGame(
            [HonestBehavior(), AlwaysInvertBehavior()], horizon=300, seed=2
        )
        result = game.run()
        assert result.final_weights["c1"] < 1e-3
        assert result.final_weights["c0"] == 1.0

    def test_concealer_discounted_by_beta(self):
        game = ReputationGame(
            [HonestBehavior(), ConcealBehavior(1.0)], horizon=50, beta=0.9, seed=2
        )
        result = game.run()
        assert result.final_weights["c1"] == pytest.approx(0.9**50, rel=1e-9)

    def test_collector_losses_accounting(self):
        # Deterministic behaviours: inverter loses 2/tx, concealer 1/tx.
        game = ReputationGame(
            [HonestBehavior(), AlwaysInvertBehavior(), ConcealBehavior(1.0)],
            horizon=40,
            seed=2,
        )
        result = game.run()
        assert result.collector_losses["c0"] == 0.0
        assert result.collector_losses["c1"] == 80.0
        assert result.collector_losses["c2"] == 40.0
        assert result.best_collector == "c0"

    def test_curves_tracked(self):
        result = ReputationGame(mixed_behaviors(), horizon=64, seed=1).run()
        assert len(result.expected_loss_curve) == 64
        assert result.expected_loss_curve[-1] == pytest.approx(result.expected_loss)
        # Cumulative curves are nondecreasing.
        assert all(
            a <= b + 1e-12
            for a, b in zip(result.expected_loss_curve, result.expected_loss_curve[1:])
        )


class TestTheorem1:
    @pytest.mark.parametrize("horizon", [100, 400, 1600])
    def test_loss_within_bound(self, horizon):
        result = ReputationGame(mixed_behaviors(), horizon=horizon, seed=7).run()
        assert result.expected_loss <= result.theorem1_rhs()

    def test_loss_within_rwm_bound_fixed_beta(self):
        result = ReputationGame(
            mixed_behaviors(), horizon=800, beta=0.5, seed=7
        ).run()
        assert result.expected_loss <= result.rwm_rhs()

    def test_regret_sublinear(self):
        r_small = ReputationGame(mixed_behaviors(), horizon=200, seed=9).run()
        r_large = ReputationGame(mixed_behaviors(), horizon=3200, seed=9).run()
        # 16x the horizon must yield far less than 16x the regret.
        assert r_large.regret < 16 * max(r_small.regret, 1.0) / 2

    def test_sleeper_damage_bounded(self):
        """Reputation farming cannot break the bound."""
        behaviors = [HonestBehavior()] + [SleeperBehavior(100) for _ in range(7)]
        result = ReputationGame(behaviors, horizon=2000, seed=5).run()
        assert result.expected_loss <= result.theorem1_rhs()
        # Sleepers end up with negligible weight.
        assert all(result.final_weights[f"c{i}"] < 1e-6 for i in range(1, 8))


class TestRevealLag:
    def test_lag_slows_but_does_not_break_learning(self):
        immediate = ReputationGame(
            mixed_behaviors(), horizon=1000, seed=11, reveal_lag=0
        ).run()
        lagged = ReputationGame(
            mixed_behaviors(), horizon=1000, seed=11, reveal_lag=50
        ).run()
        # The lagged run can only be worse (or equal), but must stay bounded.
        assert lagged.expected_loss >= immediate.expected_loss - 1e-9
        assert lagged.expected_loss <= lagged.theorem1_rhs()

    def test_all_reveals_flushed_at_end(self):
        game = ReputationGame(
            [HonestBehavior(), ConcealBehavior(1.0)],
            horizon=20,
            beta=0.9,
            seed=2,
            reveal_lag=1000,  # longer than the horizon
        )
        result = game.run()
        # Every concealment still discounted at flush time.
        assert result.final_weights["c1"] == pytest.approx(0.9**20, rel=1e-9)


class TestSelectionAblation:
    def test_uniform_selection_suffers_against_inverters(self):
        behaviors = [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6
        prop = ReputationGame(
            behaviors, horizon=1500, seed=13, selection="proportional"
        ).run()
        behaviors2 = [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6
        unif = ReputationGame(
            behaviors2, horizon=1500, seed=13, selection="uniform"
        ).run()
        # Uniform keeps sampling the lying majority: linear loss.
        assert unif.expected_loss > 5 * prop.expected_loss

    def test_greedy_selection_runs(self):
        result = ReputationGame(
            mixed_behaviors(), horizon=200, seed=3, selection="greedy"
        ).run()
        assert result.expected_loss >= 0.0


class TestWeightedMajorityVariant:
    def test_wmajority_runs_and_learns(self):
        behaviors = [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6
        result = ReputationGame(
            behaviors, horizon=800, seed=3, selection="wmajority"
        ).run()
        # Deterministic WM eventually follows the honest pair once the
        # inverters' mass falls below half.
        assert result.final_weights["c2"] < 1e-3
        assert result.expected_loss < 800  # far below always-wrong

    def test_wmajority_vs_rwm_same_adversary(self):
        behaviors = lambda: [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6
        wm = ReputationGame(
            behaviors(), horizon=800, seed=3, selection="wmajority"
        ).run()
        rwm = ReputationGame(
            behaviors(), horizon=800, seed=3, selection="proportional"
        ).run()
        # Both are sublinear; WM pays the full loss-2 until the majority
        # flips, RWM pays in expectation from the start — both bounded.
        assert wm.expected_loss <= wm.theorem1_rhs() * 2
        assert rwm.expected_loss <= rwm.theorem1_rhs()
