"""Unit tests for the PBFT baseline."""

from __future__ import annotations

import pytest

from repro.consensus.pbft import PBFTCluster, pbft_quorum
from repro.crypto.identity import IdentityManager, Role
from repro.exceptions import ConsensusError


def make_cluster(m=4, seed=6):
    im = IdentityManager(seed=seed)
    ids = [f"r{i}" for i in range(m)]
    for rid in ids:
        im.enroll(rid, Role.GOVERNOR)
    return PBFTCluster(im=im, replica_ids=ids)


class TestQuorum:
    def test_quorum_values(self):
        assert pbft_quorum(4) == 3
        assert pbft_quorum(7) == 5
        assert pbft_quorum(10) == 7
        assert pbft_quorum(13) == 9

    def test_too_few_replicas(self):
        with pytest.raises(ConsensusError):
            pbft_quorum(3)
        with pytest.raises(ConsensusError):
            make_cluster(m=3)


class TestNormalCase:
    def test_decides_payload(self):
        cluster = make_cluster()
        decided = cluster.run({"block": 1})
        assert decided == {"block": 1}

    def test_all_honest_replicas_decide_same(self):
        cluster = make_cluster(m=7)
        cluster.run(("payload",))
        digests = {r.decided_digest for r in cluster.replicas.values()}
        assert len(digests) == 1

    def test_message_count_quadratic_shape(self):
        counts = {}
        for m in (4, 7, 10, 13):
            cluster = make_cluster(m=m)
            cluster.run("p")
            counts[m] = cluster.messages_exchanged
        # Ratio of counts should grow superlinearly with m.
        ratio_low = counts[7] / counts[4]
        ratio_high = counts[13] / counts[7]
        assert counts[13] > counts[10] > counts[7] > counts[4]
        assert ratio_low > 7 / 4  # superlinear
        assert ratio_high > 13 / 7

    def test_fresh_instance_per_run(self):
        cluster = make_cluster()
        cluster.run("a")
        # Cluster state machines are single-instance; a new cluster is
        # needed for a second decision.
        cluster2 = make_cluster()
        assert cluster2.run("b") == "b"


class TestFaults:
    def test_tolerates_f_silent_replicas(self):
        cluster = make_cluster(m=7)  # f = 2
        cluster.mark_byzantine("r5")
        cluster.mark_byzantine("r6")
        assert cluster.run("payload") == "payload"

    def test_too_many_faults_fails(self):
        cluster = make_cluster(m=4)  # f = 1
        cluster.mark_byzantine("r2")
        cluster.mark_byzantine("r3")
        with pytest.raises(ConsensusError):
            cluster.run("payload")

    def test_silent_primary_triggers_view_change(self):
        cluster = make_cluster(m=7)
        cluster.mark_byzantine("r0")  # primary of view 0
        assert cluster.run("payload") == "payload"
        # View change costs extra all-to-all traffic.
        honest = make_cluster(m=7)
        honest.run("payload")
        assert cluster.messages_exchanged > honest.messages_exchanged

    def test_unknown_byzantine_id_rejected(self):
        cluster = make_cluster()
        with pytest.raises(Exception):
            cluster.mark_byzantine("ghost")

    def test_max_faulty(self):
        assert make_cluster(m=4).max_faulty == 1
        assert make_cluster(m=10).max_faulty == 3
