"""Edge cases of the pure reshuffle math (:mod:`repro.sharding.assignment`).

Complements the happy-path coverage in ``test_sharding.py`` with the
degenerate configurations an epoch scheduler can legitimately reach:
the single-shard deployment (the permutation must be a no-op in effect,
never a crash), fully tied reputation masses (the seeded permutation is
the *only* tie-breaker and must be deterministic), and the validation
guards on malformed universes.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.sharding import Migration, migration_moves, reshuffle_assignment


def uniform(ids, mass=1.0):
    return {cid: mass for cid in ids}


class TestSingleShard:
    def test_single_shard_assignment_is_identity(self):
        # With S=1 every epoch's permutation collapses to the same
        # assignment: everyone stays on shard 0, no migrations ever.
        current = {f"c{i}": 0 for i in range(6)}
        masses = {f"c{i}": float(i) for i in range(6)}
        for epoch in range(1, 5):
            target = reshuffle_assignment(current, masses, 1, seed=3, epoch=epoch)
            assert target == current
            assert migration_moves(current, target) == []

    def test_single_collector_single_shard(self):
        target = reshuffle_assignment({"c0": 0}, {"c0": 5.0}, 1, seed=0, epoch=1)
        assert target == {"c0": 0}

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            reshuffle_assignment({"c0": 0}, {"c0": 1.0}, 0, seed=0, epoch=1)

    def test_uneven_split_rejected(self):
        current = {f"c{i}": 0 for i in range(5)}
        with pytest.raises(ConfigurationError, match="evenly"):
            reshuffle_assignment(current, uniform(current), 2, seed=0, epoch=1)


class TestTiedMasses:
    def test_tied_masses_resolve_by_seeded_permutation(self):
        # All-equal masses give the greedy packer no signal: the seeded
        # permutation alone decides placement, so identical (seed,
        # epoch) pairs must agree and the result must stay balanced.
        current = {f"c{i}": i % 4 for i in range(12)}
        masses = uniform(current)
        a = reshuffle_assignment(current, masses, 4, seed=11, epoch=2)
        b = reshuffle_assignment(current, masses, 4, seed=11, epoch=2)
        assert a == b
        for k in range(4):
            assert sum(1 for s in a.values() if s == k) == 3

    def test_tied_masses_vary_across_epochs(self):
        current = {f"c{i}": i % 2 for i in range(8)}
        masses = uniform(current)
        assignments = {
            tuple(sorted(reshuffle_assignment(current, masses, 2, 11, e).items()))
            for e in range(1, 8)
        }
        assert len(assignments) > 1

    def test_tied_masses_insensitive_to_input_dict_order(self):
        ids = [f"c{i}" for i in range(8)]
        current_fwd = {cid: i % 2 for i, cid in enumerate(ids)}
        current_rev = dict(reversed(list(current_fwd.items())))
        a = reshuffle_assignment(current_fwd, uniform(ids), 2, seed=4, epoch=3)
        b = reshuffle_assignment(current_rev, uniform(ids), 2, seed=4, epoch=3)
        assert a == b


class TestMoves:
    def test_no_op_assignment_yields_no_moves(self):
        current = {"c0": 0, "c1": 1}
        assert migration_moves(current, dict(current)) == []

    def test_full_swap_is_size_preserving_and_sorted(self):
        current = {"c0": 0, "c1": 1, "c2": 0, "c3": 1}
        target = {"c0": 1, "c1": 0, "c2": 1, "c3": 0}
        moves = migration_moves(current, target)
        assert moves == [
            Migration("c0", 0, 1),
            Migration("c1", 1, 0),
            Migration("c2", 0, 1),
            Migration("c3", 1, 0),
        ]

    def test_extra_collector_in_target_rejected(self):
        with pytest.raises(ConfigurationError, match="different collector"):
            migration_moves({"c0": 0, "c1": 0}, {"c0": 0, "c1": 0, "c2": 0})
