"""Unit tests for provider, collector, and governor agents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    ForgeBehavior,
    HonestBehavior,
)
from repro.agents.collector import Collector
from repro.agents.governor import Governor
from repro.agents.provider import Provider
from repro.core.params import ProtocolParams
from repro.crypto.identity import IdentityManager, Role
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    TxRecord,
    make_labeled_transaction,
)
from repro.ledger.validation import CountingOracle, GroundTruthOracle
from repro.network.topology import Topology


@pytest.fixture
def world():
    """A tiny world: IM, topology, oracle."""
    topo = Topology.regular(l=4, n=4, m=2, r=2)
    im = IdentityManager(seed=8)
    for p in topo.providers:
        im.enroll(p, Role.PROVIDER)
    for c in topo.collectors:
        im.enroll(c, Role.COLLECTOR)
    for g in topo.governors:
        im.enroll(g, Role.GOVERNOR)
    for c in topo.collectors:
        for p in topo.providers_of(c):
            im.register_link(c, p)
    oracle = GroundTruthOracle()
    return topo, im, oracle


def make_provider(world, pid="p0", active=True):
    topo, im, _oracle = world
    return Provider(
        provider_id=pid,
        key=im.record(pid).key,
        linked_collectors=topo.collectors_of(pid),
        active=active,
    )


def make_collector(world, cid="c0", behavior=None, seed=0):
    topo, im, _oracle = world
    return Collector(
        collector_id=cid,
        key=im.record(cid).key,
        linked_providers=topo.providers_of(cid),
        behavior=behavior or HonestBehavior(),
        rng=np.random.default_rng(seed),
    )


def make_governor(world, gid="g0", params=None):
    topo, im, oracle = world
    gov = Governor(
        governor_id=gid,
        key=im.record(gid).key,
        params=params or ProtocolParams(f=0.5),
        im=im,
        oracle=CountingOracle(inner=oracle),
        rng=np.random.default_rng(99),
    )
    gov.register_topology(topo)
    return gov


class TestProvider:
    def test_key_ownership_checked(self, world):
        _topo, im, _oracle = world
        with pytest.raises(ValueError):
            Provider(
                provider_id="p0", key=im.record("p1").key, linked_collectors=("c0",)
            )

    def test_transactions_have_fresh_nonces(self, world):
        provider = make_provider(world)
        a = provider.create_transaction("x", 1.0)
        b = provider.create_transaction("x", 1.0)
        assert a.tx_id != b.tx_id
        assert provider.sent_tx_ids == {a.tx_id, b.tx_id}

    def test_review_block_argues_on_mislabel(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        block = Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )
        assert provider.review_block(block, oracle) == [tx.tx_id]

    def test_review_block_skips_valid_records(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        block = Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )
        assert provider.review_block(block, oracle) == []

    def test_review_block_skips_truly_invalid(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, False)
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        block = Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )
        assert provider.review_block(block, oracle) == []

    def test_inactive_provider_never_argues(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world, active=False)
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        block = Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )
        assert provider.review_block(block, oracle) == []

    def test_argues_only_once(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        block = Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )
        assert provider.review_block(block, oracle) == [tx.tx_id]
        assert provider.review_block(block, oracle) == []

    def test_ignores_other_providers_tx(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world, "p0")
        other = make_provider(world, "p1")
        tx = other.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        block = Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        )
        assert provider.review_block(block, oracle) == []


class TestCollector:
    def test_honest_processing(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        collector = make_collector(world)
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        labeled = collector.process(tx, oracle)
        assert labeled is not None
        assert labeled.label is Label.VALID
        assert collector.uploads == 1

    def test_inverter_flips(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        collector = make_collector(world, behavior=AlwaysInvertBehavior())
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        assert collector.process(tx, oracle).label is Label.INVALID

    def test_concealer_returns_none(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        collector = make_collector(world, behavior=ConcealBehavior(1.0))
        tx = provider.create_transaction("x", 1.0)
        oracle.assign(tx, True)
        assert collector.process(tx, oracle) is None
        assert collector.conceals == 1

    def test_forged_upload_fails_verification(self, world):
        _topo, im, _oracle = world
        collector = make_collector(world, behavior=ForgeBehavior(1.0))
        forged = collector.maybe_forge(timestamp=1.0)
        assert forged is not None
        tx = forged.tx
        assert not im.verify(tx.provider, tx.signed_message(), tx.provider_signature)

    def test_honest_never_forges(self, world):
        collector = make_collector(world)
        assert collector.maybe_forge(1.0) is None


class TestGovernor:
    def _upload(self, world, payload="x", valid=True, label=None, cid="c0"):
        topo, im, oracle = world
        pid = topo.providers_of(cid)[0]
        provider = Provider(
            provider_id=pid, key=im.record(pid).key,
            linked_collectors=topo.collectors_of(pid),
        )
        tx = provider.create_transaction(payload, 1.0)
        oracle.assign(tx, valid)
        use_label = label if label is not None else Label.from_bool(valid)
        return make_labeled_transaction(im.record(cid).key, tx, use_label), tx

    def test_ingest_valid_upload(self, world):
        gov = make_governor(world)
        upload, _tx = self._upload(world)
        assert gov.ingest_upload(upload)
        assert gov.metrics.uploads_received == 1

    def test_ingest_detects_forgery(self, world):
        gov = make_governor(world)
        collector = make_collector(world, behavior=ForgeBehavior(1.0))
        forged = collector.maybe_forge(1.0)
        assert not gov.ingest_upload(forged)
        assert gov.metrics.forgeries_caught == 1
        assert gov.book.vector("c0").forge == -1

    def test_ingest_rejects_bad_collector_signature(self, world):
        topo, im, oracle = world
        gov = make_governor(world)
        upload, tx = self._upload(world)
        # Re-sign claiming a different collector.
        from repro.ledger.transaction import LabeledTransaction

        impostor = LabeledTransaction(
            tx=upload.tx,
            label=upload.label,
            collector="c1",
            collector_signature=upload.collector_signature,
        )
        assert not gov.ingest_upload(impostor)
        # No reputational damage to c1: unattributable messages are dropped.
        assert gov.book.vector("c1").forge == 0

    def test_duplicate_upload_ignored(self, world):
        gov = make_governor(world)
        upload, _tx = self._upload(world)
        assert gov.ingest_upload(upload)
        assert not gov.ingest_upload(upload)

    def test_screen_pending_produces_records(self, world):
        gov = make_governor(world)
        upload, _tx = self._upload(world, valid=True)
        gov.ingest_upload(upload)
        records = gov.screen_pending()
        assert len(records) == 1
        assert records[0].label is Label.VALID
        assert gov.metrics.transactions_screened == 1

    def test_checked_invalid_discarded(self, world):
        gov = make_governor(world)
        upload, _tx = self._upload(world, valid=False)
        gov.ingest_upload(upload)
        records = gov.screen_pending()
        assert records == []

    def test_case2_updates_applied(self, world):
        gov = make_governor(world)
        upload, _tx = self._upload(world, valid=True)
        gov.ingest_upload(upload)
        gov.screen_pending()
        assert gov.book.vector("c0").misreport == 1

    def test_argue_flow(self, world):
        # Force an unchecked-invalid record for a valid transaction: the
        # collector lies and the governor's rng is made to skip the check.
        topo, im, oracle = world

        class SkippyRng:
            def choice(self, n, p=None):
                return 0
            def random(self):
                return 0.0

        gov = Governor(
            governor_id="g0", key=im.record("g0").key,
            params=ProtocolParams(f=0.99), im=im,
            oracle=CountingOracle(inner=oracle), rng=SkippyRng(),
        )
        gov.register_topology(topo)
        upload, tx = self._upload(world, valid=True, label=Label.INVALID)
        gov.ingest_upload(upload)
        records = gov.screen_pending()
        assert records[0].status is CheckStatus.UNCHECKED
        assert gov.metrics.unchecked == 1

        reevaluated = gov.handle_argue(tx.tx_id)
        assert reevaluated is not None
        assert reevaluated.label is Label.VALID
        assert reevaluated.status is CheckStatus.REEVALUATED
        assert gov.metrics.mistakes == 1
        assert gov.metrics.realized_loss == 2.0
        # The lying collector's weight was discounted.
        assert gov.book.weight("c0", tx.provider) < 1.0

    def test_argue_for_unknown_tx_rejected(self, world):
        gov = make_governor(world)
        assert gov.handle_argue("ghost") is None

    def test_reveal_truth_accounts_loss(self, world):
        topo, im, oracle = world

        class SkippyRng:
            def choice(self, n, p=None):
                return 0
            def random(self):
                return 0.0

        gov = Governor(
            governor_id="g0", key=im.record("g0").key,
            params=ProtocolParams(f=0.99), im=im,
            oracle=CountingOracle(inner=oracle), rng=SkippyRng(),
        )
        gov.register_topology(topo)
        upload, tx = self._upload(world, valid=True, label=Label.INVALID)
        gov.ingest_upload(upload)
        gov.screen_pending()
        gov.reveal_truth(tx.tx_id, oracle)
        assert gov.metrics.mistakes == 1
        assert gov.metrics.expected_loss > 0
        # A later argue is rejected: already resolved.
        assert gov.handle_argue(tx.tx_id) is None


class TestAbusiveArguer:
    def _invalid_unchecked_block(self, world, provider):
        topo, _im, oracle = world
        tx = provider.create_transaction("junk", 1.0)
        oracle.assign(tx, False)  # genuinely invalid
        rec = TxRecord(tx=tx, label=Label.INVALID, status=CheckStatus.UNCHECKED)
        return Block(
            serial=1, tx_list=(rec,), prev_hash=GENESIS_PREV_HASH,
            proposer="g0", round_number=1,
        ), tx

    def test_honest_provider_never_argues_correct_records(self, world):
        _topo, _im, oracle = world
        provider = make_provider(world)
        block, _tx = self._invalid_unchecked_block(world, provider)
        assert provider.review_block(block, oracle) == []

    def test_abusive_provider_argues_spuriously(self, world):
        topo, im, oracle = world
        provider = Provider(
            provider_id="p0",
            key=im.record("p0").key,
            linked_collectors=topo.collectors_of("p0"),
            argue_abuse_rate=1.0,
            abuse_rng=np.random.default_rng(1),
        )
        block, tx = self._invalid_unchecked_block(world, provider)
        assert provider.review_block(block, oracle) == [tx.tx_id]
        assert provider.spurious_argues == 1

    def test_spurious_argue_cannot_flip_record(self, world):
        """The governor re-validates and the truth stands: no record is
        produced, the griefing cost is one validation."""
        topo, im, oracle = world

        class SkippyRng:
            def choice(self, n, p=None):
                return 0
            def random(self):
                return 0.0

        gov = Governor(
            governor_id="g0", key=im.record("g0").key,
            params=ProtocolParams(f=0.99), im=im,
            oracle=CountingOracle(inner=oracle), rng=SkippyRng(),
        )
        gov.register_topology(topo)
        provider = Provider(
            provider_id="p0", key=im.record("p0").key,
            linked_collectors=topo.collectors_of("p0"),
            argue_abuse_rate=1.0, abuse_rng=np.random.default_rng(2),
        )
        tx = provider.create_transaction("junk", 1.0)
        oracle.assign(tx, False)
        upload = make_labeled_transaction(
            im.record("c0").key, tx, Label.INVALID
        )
        gov.ingest_upload(upload)
        records = gov.screen_pending()
        assert records[0].status is CheckStatus.UNCHECKED
        validations_before = gov.oracle.calls
        result = gov.handle_argue(tx.tx_id)
        assert result is None  # truth is invalid: nothing re-enters a block
        assert gov.oracle.calls == validations_before + 1  # the griefing cost
        assert gov.metrics.mistakes == 0  # record was right all along

    def test_abuse_rate_validation(self, world):
        _topo, im, _oracle = world
        with pytest.raises(ValueError):
            Provider(
                provider_id="p0", key=im.record("p0").key,
                linked_collectors=("c0",), argue_abuse_rate=1.5,
            )
        with pytest.raises(ValueError):
            Provider(
                provider_id="p0", key=im.record("p0").key,
                linked_collectors=("c0",), argue_abuse_rate=0.5,  # no rng
            )
