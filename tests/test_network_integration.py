"""Integration: protocol message flow over the packet-level substrate.

The in-process engine accounts messages analytically; these tests push
real payloads through :class:`SyncNetwork` + :class:`AtomicBroadcast`
to check the distributed-systems assumptions the engine relies on:

* every governor delivers the *same ordered sequence* of collector
  uploads (so screening inputs agree);
* the screening window Delta is sufficient under the synchrony bound;
* a crashed collector silently disappears without stalling others'
  deliveries (its uploads simply never arrive).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.behaviors import HonestBehavior
from repro.agents.collector import Collector
from repro.agents.provider import Provider
from repro.crypto.identity import IdentityManager, Role
from repro.ledger.transaction import LabeledTransaction
from repro.ledger.validation import GroundTruthOracle
from repro.network.broadcast import AtomicBroadcast
from repro.network.simnet import Simulator, SyncNetwork
from repro.network.topology import Topology


@pytest.fixture
def wired_world():
    """Topology + IM + network + broadcast groups, fully wired."""
    topo = Topology.regular(l=4, n=4, m=3, r=2)
    im = IdentityManager(seed=13)
    oracle = GroundTruthOracle()
    sim = Simulator(seed=0)
    net = SyncNetwork(sim, min_delay=0.001, max_delay=0.05, seed=17)
    ab = AtomicBroadcast(net)

    providers = {}
    for pid in topo.providers:
        key = im.enroll(pid, Role.PROVIDER)
        providers[pid] = Provider(
            provider_id=pid, key=key, linked_collectors=topo.collectors_of(pid)
        )
    collectors = {}
    rng = np.random.default_rng(5)
    for cid in topo.collectors:
        key = im.enroll(cid, Role.COLLECTOR)
        collectors[cid] = Collector(
            collector_id=cid,
            key=key,
            linked_providers=topo.providers_of(cid),
            behavior=HonestBehavior(),
            rng=np.random.default_rng(rng.integers(2**63)),
        )
        for pid in topo.providers_of(cid):
            im.register_link(cid, pid)
    for gid in topo.governors:
        im.enroll(gid, Role.GOVERNOR)

    # One broadcast group per collector (its provider feed), one group
    # for uploads to governors.
    for cid in topo.collectors:
        ab.create_group(f"feed:{cid}", [cid])
    ab.create_group("uploads", list(topo.governors))

    return topo, im, oracle, sim, net, ab, providers, collectors


class TestUploadFlow:
    def test_governors_deliver_identical_upload_sequences(self, wired_world):
        topo, im, oracle, sim, net, ab, providers, collectors = wired_world
        governor_logs = {g: [] for g in topo.governors}

        # Collector side: on delivery of a provider tx, label and upload.
        def collector_handler(cid):
            def handle(sender, tx):
                labeled = collectors[cid].process(tx, oracle)
                if labeled is not None:
                    ab.broadcast("uploads", cid, labeled)
            return handle

        for cid in topo.collectors:
            net.register(cid, lambda msg, cid=cid: ab.on_message(cid, msg))
            ab.register_handler(f"feed:{cid}", cid, collector_handler(cid))

        for gid in topo.governors:
            net.register(gid, lambda msg, gid=gid: ab.on_message(gid, msg))
            ab.register_handler(
                "uploads",
                gid,
                lambda sender, labeled, gid=gid: governor_logs[gid].append(
                    (sender, labeled.tx.tx_id, int(labeled.label))
                ),
            )

        # Providers broadcast transactions into their collectors' feeds.
        for i, (pid, provider) in enumerate(sorted(providers.items())):
            tx = provider.create_transaction({"n": i}, timestamp=float(i))
            oracle.assign(tx, True)
            for cid in provider.linked_collectors:
                ab.broadcast(f"feed:{cid}", pid, tx)
        sim.run()

        logs = list(governor_logs.values())
        assert logs[0] == logs[1] == logs[2]
        # Each of 4 providers' txs reaches 2 collectors -> 8 uploads.
        assert len(logs[0]) == 8

    def test_uploads_verify_at_governor(self, wired_world):
        topo, im, oracle, sim, net, ab, providers, collectors = wired_world
        received: list[LabeledTransaction] = []

        for cid in topo.collectors:
            net.register(cid, lambda msg, cid=cid: ab.on_message(cid, msg))
            ab.register_handler(
                f"feed:{cid}",
                cid,
                lambda sender, tx, cid=cid: ab.broadcast(
                    "uploads", cid, collectors[cid].process(tx, oracle)
                ),
            )
        gid0 = topo.governors[0]
        for gid in topo.governors:
            net.register(gid, lambda msg, gid=gid: ab.on_message(gid, msg))
        ab.register_handler("uploads", gid0, lambda s, up: received.append(up))

        pid = topo.providers[0]
        tx = providers[pid].create_transaction("x", 0.0)
        oracle.assign(tx, True)
        for cid in providers[pid].linked_collectors:
            ab.broadcast(f"feed:{cid}", pid, tx)
        sim.run()

        assert len(received) == 2
        for upload in received:
            assert im.verify(
                upload.collector, upload.signed_message(), upload.collector_signature
            )
            inner = upload.tx
            assert im.verify(
                inner.provider, inner.signed_message(), inner.provider_signature
            )

    def test_delta_window_covers_report_spread(self, wired_world):
        """All copies of one tx arrive within the network synchrony bound,
        so a screening timer of Delta >= max_delay spread suffices."""
        topo, im, oracle, sim, net, ab, providers, collectors = wired_world
        arrivals: dict[str, list[float]] = {}

        for cid in topo.collectors:
            net.register(cid, lambda msg, cid=cid: ab.on_message(cid, msg))
            ab.register_handler(
                f"feed:{cid}",
                cid,
                lambda sender, tx, cid=cid: ab.broadcast(
                    "uploads", cid, collectors[cid].process(tx, oracle)
                ),
            )
        gid0 = topo.governors[0]
        for gid in topo.governors:
            net.register(gid, lambda msg, gid=gid: ab.on_message(gid, msg))
        ab.register_handler(
            "uploads",
            gid0,
            lambda s, up: arrivals.setdefault(up.tx.tx_id, []).append(sim.now),
        )

        for i, pid in enumerate(topo.providers):
            tx = providers[pid].create_transaction({"i": i}, timestamp=0.0)
            oracle.assign(tx, True)
            for cid in providers[pid].linked_collectors:
                ab.broadcast(f"feed:{cid}", pid, tx)
        sim.run()

        for times in arrivals.values():
            spread = max(times) - min(times)
            # Two network hops of at most max_delay each bound the spread.
            assert spread <= 2 * net.max_delay + 1e-9

    def test_crashed_collector_does_not_stall_others(self, wired_world):
        topo, im, oracle, sim, net, ab, providers, collectors = wired_world
        received = []

        for cid in topo.collectors:
            net.register(cid, lambda msg, cid=cid: ab.on_message(cid, msg))
            ab.register_handler(
                f"feed:{cid}",
                cid,
                lambda sender, tx, cid=cid: ab.broadcast(
                    "uploads", cid, collectors[cid].process(tx, oracle)
                ),
            )
        gid0 = topo.governors[0]
        for gid in topo.governors:
            net.register(gid, lambda msg, gid=gid: ab.on_message(gid, msg))
        ab.register_handler("uploads", gid0, lambda s, up: received.append(up))

        crashed = topo.collectors[0]
        net.partition(crashed)

        pid = topo.providers[0]
        tx = providers[pid].create_transaction("x", 0.0)
        oracle.assign(tx, True)
        for cid in providers[pid].linked_collectors:
            ab.broadcast(f"feed:{cid}", pid, tx)
        sim.run()

        # The crashed collector (if linked) contributes nothing; the
        # other linked collector's upload still arrives.
        linked = set(providers[pid].linked_collectors)
        expected = len(linked - {crashed})
        assert len(received) == expected
