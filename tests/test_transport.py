"""Transport backend tests: framing, robustness machinery, parity.

Three layers, cheapest first:

* pure-function framing tests (no sockets);
* :class:`RealNetwork` against in-process :class:`NodeServer` peers —
  conveyance, reconnect-with-backoff, send-deadline retransmission,
  heartbeat suspicion, and the structured give-up
  (:class:`PeerUnreachableError`, never a hang);
* the headline parity gate — the identical seeded scenario committed
  over the simulator and over real TCP (with and without logical fault
  plans, and under socket-boundary chaos) produces bit-identical tips.

The heavier socket tests carry the ``realnet`` marker so CI can run
them as a dedicated job (``-m realnet``); all of them are budgeted to
stay inside the tier-1 wall-clock envelope.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.exceptions import ConfigurationError, FrameError, PeerUnreachableError
from repro.faults.plan import FaultPlan, LinkFaultSpec
from repro.faults.proxy import start_proxy_thread
from repro.network.cluster import ClusterScenario, run_scenario
from repro.network.realnet import (
    FRAME_HEADER,
    KIND_ACK,
    KIND_MSG,
    MAX_FRAME_PAYLOAD,
    FrameReader,
    RealNetwork,
    TransportConfig,
    encode_frame,
    start_server_thread,
    transport_metrics,
)
from repro.network.simnet import Simulator, SyncNetwork
from repro.network.transport import Transport
from repro.obs.registry import MetricsRegistry

#: Wall-clock-fast robustness knobs for the socket tests.
FAST = TransportConfig(
    connect_timeout=1.0,
    connect_attempts=8,
    backoff_base=0.01,
    backoff_max=0.1,
    send_deadline=0.25,
    deadline_poll=0.02,
    max_retries=16,
    heartbeat_interval=0.2,
    heartbeat_budget=3,
    session_floor=0.02,
    stall_timeout=15.0,
)


# -- framing -----------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        reader = FrameReader()
        wire = encode_frame(7, KIND_MSG, b"hello") + encode_frame(8, KIND_ACK)
        assert reader.feed(wire) == [(7, KIND_MSG, b"hello"), (8, KIND_ACK, b"")]

    def test_incremental_feed(self):
        reader = FrameReader()
        wire = encode_frame(1, KIND_MSG, b"x" * 100)
        out = []
        for i in range(0, len(wire), 7):
            out.extend(reader.feed(wire[i : i + 7]))
        assert out == [(1, KIND_MSG, b"x" * 100)]

    def test_crc_mismatch_raises(self):
        wire = bytearray(encode_frame(1, KIND_MSG, b"payload"))
        wire[-1] ^= 0xFF
        with pytest.raises(FrameError, match="CRC"):
            FrameReader().feed(bytes(wire))

    def test_zero_length_raises(self):
        header = FRAME_HEADER.pack(0, 0, 1)
        with pytest.raises(FrameError, match="out of range"):
            FrameReader().feed(header)

    def test_oversize_refused_on_encode_and_decode(self):
        with pytest.raises(FrameError):
            encode_frame(1, KIND_MSG, b"x" * MAX_FRAME_PAYLOAD)
        header = FRAME_HEADER.pack(MAX_FRAME_PAYLOAD + 1, 0, 1)
        with pytest.raises(FrameError, match="out of range"):
            FrameReader().feed(header)


# -- protocol conformance ----------------------------------------------------


class TestTransportProtocol:
    def test_syncnetwork_satisfies_transport(self):
        sim = Simulator(seed=0)
        net = SyncNetwork(sim, seed=1)
        assert isinstance(net, Transport)
        net.recv("a", lambda *args: None)
        assert net.peers() == ("a",)
        net.close()  # no-op, part of the narrow surface

    def test_realnetwork_requires_custodians(self):
        with pytest.raises(ConfigurationError, match="custodian"):
            RealNetwork(Simulator(seed=0))


# -- real sockets: conveyance and robustness ---------------------------------


def _twin_sends(net):
    """Issue the same seeded traffic on any Transport; return the log."""
    log = []
    for node in ("a", "b", "c"):
        net.recv(
            node,
            lambda msg, n=node: log.append(
                (n, msg.sender, msg.payload, msg.deliver_at)
            ),
        )
    for i in range(12):
        net.send("a", ("b", "c")[i % 2], ("tx", i))
    net.run_until(5.0)
    return log


def _blackhole():
    """A TCP listener that accepts and reads but never answers."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    sock.settimeout(0.05)
    port = sock.getsockname()[1]
    stop = threading.Event()

    def run():
        conns = []
        while not stop.is_set():
            try:
                conn, _ = sock.accept()
                conn.settimeout(0.05)
                conns.append(conn)
            except OSError:
                pass
            for conn in conns:
                try:
                    conn.recv(65536)
                except OSError:
                    pass
        for conn in conns:
            conn.close()
        sock.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, stop, thread


@pytest.mark.realnet
class TestRealNetwork:
    def test_conveyed_delivery_matches_simulator(self):
        sim_log = _twin_sends(SyncNetwork(Simulator(seed=0), seed=1))
        server, stop = start_server_thread()
        reg = MetricsRegistry()
        net = RealNetwork(
            Simulator(seed=0),
            seed=1,
            custodians=(("p0", server.host, server.port),),
            config=FAST,
            obs=reg,
        )
        try:
            assert isinstance(net, Transport)
            real_log = _twin_sends(net)
        finally:
            net.close()
            stop()
        assert real_log == sim_log
        assert server.frames_acked == len(real_log)
        metrics = transport_metrics(reg)
        assert metrics["frames"].value_of(direction="out") >= len(real_log)
        assert metrics["bytes"].value_of(direction="in") > 0

    def test_unreachable_peer_raises_structured_error(self):
        # Bind-then-close guarantees nothing listens on the port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        cfg = TransportConfig(
            connect_timeout=0.5,
            connect_attempts=3,
            backoff_base=0.005,
            backoff_max=0.02,
            stall_timeout=5.0,
        )
        net = RealNetwork(
            Simulator(seed=0),
            seed=1,
            custodians=(("ghost", "127.0.0.1", dead_port),),
            config=cfg,
        )
        try:
            net.recv("a", lambda *args: None)
            net.send("a", "a", "doomed")
            with pytest.raises(PeerUnreachableError) as excinfo:
                net.run_until(5.0)
        finally:
            net.close()
        assert excinfo.value.peer == "ghost"
        assert excinfo.value.attempts == 3

    def test_reconnect_after_peer_restart(self):
        server, stop = start_server_thread()
        port = server.port
        reg = MetricsRegistry()
        net = RealNetwork(
            Simulator(seed=0),
            seed=1,
            custodians=(("p0", "127.0.0.1", port),),
            config=FAST,
            obs=reg,
        )
        stop2 = None
        try:
            net.recv("a", lambda *args: None)
            net.recv("b", lambda *args: None)
            net.send("a", "b", "before")
            net.run_until(1.0)
            stop()  # kill the peer...
            time.sleep(0.05)
            server2, stop2 = start_server_thread(port=port)  # ...and revive it
            net.send("a", "b", "after")
            net.run_until(2.0)
            assert server2.frames_acked >= 1
        finally:
            net.close()
            if stop2 is not None:
                stop2()
        metrics = transport_metrics(reg)
        assert metrics["reconnects"].value_of(peer="p0") >= 1

    def test_silent_peer_goes_suspect_via_heartbeats(self):
        port, stop, thread = _blackhole()
        reg = MetricsRegistry()
        cfg = TransportConfig(
            connect_attempts=4,
            backoff_base=0.01,
            backoff_max=0.05,
            heartbeat_interval=0.05,
            heartbeat_budget=2,
            session_floor=0.01,
            stall_timeout=5.0,
        )
        net = RealNetwork(
            Simulator(seed=0),
            seed=1,
            custodians=(("mute", "127.0.0.1", port),),
            config=cfg,
            obs=reg,
        )
        metrics = transport_metrics(reg)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if metrics["suspects"].value >= 1:
                    break
                time.sleep(0.02)
        finally:
            net.close()
            stop.set()
            thread.join(timeout=2.0)
        assert metrics["suspects"].value >= 1
        assert metrics["heartbeat_misses"].value_of(peer="mute") >= cfg.heartbeat_budget

    def test_lossy_proxy_forces_deadline_retransmits(self):
        server, stop = start_server_thread()
        plan = FaultPlan(seed=97).with_default_link(LinkFaultSpec(loss=0.3))
        proxy, pstop = start_proxy_thread("127.0.0.1", server.port, plan)
        reg = MetricsRegistry()
        net = RealNetwork(
            Simulator(seed=0),
            seed=1,
            custodians=(("p0", "127.0.0.1", proxy.port),),
            config=FAST,
            obs=reg,
        )
        try:
            log = _twin_sends(net)
        finally:
            net.close()
            pstop()
            stop()
        # Every message still arrives, through retransmission.
        assert len(log) == 12
        assert proxy.frames_dropped > 0
        metrics = transport_metrics(reg)
        assert metrics["deadline_expiries"].value > 0
        assert metrics["retransmits"].value > 0


# -- parity: the same seeded scenario over both backends ---------------------

SCENARIO = ClusterScenario(rounds=2, batch=8, seed=5)

FAULTED = ClusterScenario(
    rounds=2,
    batch=8,
    seed=5,
    plan=FaultPlan(seed=71).with_default_link(
        LinkFaultSpec(loss=0.02, duplicate=0.05)
    ),
)


def _servers(count):
    pairs = [start_server_thread() for _ in range(count)]
    custodians = [
        (f"peer-{i}", server.host, server.port)
        for i, (server, _) in enumerate(pairs)
    ]
    def stop_all():
        for _, stop in pairs:
            stop()
    return custodians, stop_all


@pytest.mark.realnet
class TestBackendParity:
    @pytest.mark.parametrize("scenario", [SCENARIO, FAULTED], ids=["clean", "faulted"])
    def test_identical_tip_over_real_sockets(self, scenario):
        sim = run_scenario(scenario, backend="sim")
        custodians, stop_all = _servers(2)
        try:
            real = run_scenario(
                scenario, backend="real", custodians=custodians, config=FAST
            )
        finally:
            stop_all()
        assert real["tip"] == sim["tip"]
        assert real["height"] == sim["height"]
        assert real["clock"] == sim["clock"]
        assert real["audit_clean"] and sim["audit_clean"]
        assert real["violations"] == 0

    def test_socket_chaos_commits_identical_tip(self):
        """Loss+dup+reorder+partition at the wire; history unchanged.

        The chaos plan lives at the *socket* boundary (proxies), so the
        simulator run sees no faults at all — yet the real run must
        commit the same tip: socket chaos may delay, never corrupt.
        """
        sim = run_scenario(SCENARIO, backend="sim")
        custodians, stop_all = _servers(2)
        chaos = (
            FaultPlan(seed=31)
            .with_default_link(
                LinkFaultSpec(loss=0.05, duplicate=0.05, reorder=0.03)
            )
            .with_partition(("any",), start=0.4, end=0.9)
        )
        proxies = [
            start_proxy_thread(host, port, chaos) for _, host, port in custodians
        ]
        proxied = [
            (name, "127.0.0.1", proxy.port)
            for (name, _, _), (proxy, _) in zip(custodians, proxies)
        ]
        reg = MetricsRegistry()
        try:
            real = run_scenario(
                SCENARIO, backend="real", custodians=proxied,
                config=FAST, obs=reg,
            )
        finally:
            for _, pstop in proxies:
                pstop()
            stop_all()
        assert real["tip"] == sim["tip"]
        assert real["height"] == sim["height"]
        assert real["audit_clean"]
        assert real["violations"] == 0
        # The robustness machinery actually fired: the partition window
        # killed connections and the drivers reconnected with backoff.
        dropped = sum(proxy.frames_dropped for proxy, _ in proxies)
        killed = sum(proxy.connections_killed for proxy, _ in proxies)
        metrics = transport_metrics(reg)
        reconnects = sum(
            metrics["reconnects"].value_of(peer=name) for name, _, _ in proxied
        )
        assert dropped > 0
        assert killed > 0 or reconnects > 0
        assert metrics["retransmits"].value > 0
