"""Tests for replica catch-up (ledger sync)."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import ChainIntegrityError, LedgerError
from repro.ledger.block import Block
from repro.ledger.chain import Ledger
from repro.ledger.store import BlockStore
from repro.ledger.sync import sync_replica, verify_sync
from repro.ledger.transaction import CheckStatus, Label, TxRecord, make_signed_transaction

KEY = SigningKey(owner="p0", secret=b"\x15" * 32)
_NONCE = iter(range(100_000))


def publish_chain(store: BlockStore, n: int) -> list[Block]:
    prev = b"\x00" * 32
    blocks = []
    for serial in range(1, n + 1):
        tx = make_signed_transaction(KEY, f"b{serial}", 1.0, nonce=next(_NONCE))
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        block = Block(
            serial=serial, tx_list=(rec,), prev_hash=prev,
            proposer="g0", round_number=serial,
        )
        store.publish(block)
        blocks.append(block)
        prev = block.hash()
    return blocks


class TestSyncReplica:
    def test_full_catchup_from_genesis(self):
        store = BlockStore()
        publish_chain(store, 5)
        replica = Ledger(owner="late")
        appended = sync_replica(replica, store)
        assert appended == 5
        assert verify_sync(replica, store)

    def test_partial_catchup_with_limit(self):
        store = BlockStore()
        publish_chain(store, 6)
        replica = Ledger(owner="late")
        assert sync_replica(replica, store, limit=2) == 2
        assert replica.height == 2
        assert not verify_sync(replica, store)
        assert sync_replica(replica, store) == 4
        assert verify_sync(replica, store)

    def test_noop_when_caught_up(self):
        store = BlockStore()
        blocks = publish_chain(store, 3)
        replica = Ledger(owner="r")
        for block in blocks:
            replica.append(block)
        assert sync_replica(replica, store) == 0
        assert verify_sync(replica, store)

    def test_negative_limit_rejected(self):
        with pytest.raises(LedgerError):
            sync_replica(Ledger(), BlockStore(), limit=-1)

    def test_corrupt_replica_detected(self):
        store = BlockStore()
        publish_chain(store, 3)
        # A replica holding a divergent block cannot link the next one.
        replica = Ledger(owner="corrupt")
        tx = make_signed_transaction(KEY, "evil", 1.0, nonce=next(_NONCE))
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        replica.append(
            Block(serial=1, tx_list=(rec,), prev_hash=b"\x00" * 32,
                  proposer="gX", round_number=1)
        )
        with pytest.raises(ChainIntegrityError):
            sync_replica(replica, store)

    def test_verify_sync_empty_both(self):
        assert verify_sync(Ledger(), BlockStore())

    def test_verify_sync_height_mismatch(self):
        store = BlockStore()
        publish_chain(store, 2)
        assert not verify_sync(Ledger(), store)


class TestLocalCorruptionRecovery:
    """Satellite: what a node does when its own replica is the bad one.

    ``sync_replica`` refuses to extend a divergent replica; the operator
    guidance (DESIGN.md §durability) is to discard it and rebuild from
    genesis — or, when the peer's store is compacted, from the peer's
    checkpoint base via ``Ledger.from_checkpoint``.
    """

    def _divergent_replica(self) -> Ledger:
        replica = Ledger(owner="corrupt")
        tx = make_signed_transaction(KEY, "evil", 1.0, nonce=next(_NONCE))
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        replica.append(
            Block(serial=1, tx_list=(rec,), prev_hash=b"\x00" * 32,
                  proposer="gX", round_number=1)
        )
        return replica

    def test_corrupt_replica_never_partially_extended(self):
        store = BlockStore()
        publish_chain(store, 4)
        replica = self._divergent_replica()
        with pytest.raises(ChainIntegrityError):
            sync_replica(replica, store)
        # The failed sync must not have smuggled any peer blocks in.
        assert replica.height == 1

    def test_rebuild_from_genesis_recovers(self):
        store = BlockStore()
        publish_chain(store, 4)
        replica = self._divergent_replica()
        with pytest.raises(ChainIntegrityError):
            sync_replica(replica, store)
        # Guidance: throw the corrupt replica away, start fresh.
        rebuilt = Ledger(owner="corrupt")
        assert sync_replica(rebuilt, store) == 4
        assert verify_sync(rebuilt, store)
        rebuilt.verify_integrity()

    def test_rebuild_from_checkpoint_base_when_peer_compacted(self):
        store = BlockStore()
        blocks = publish_chain(store, 6)
        # A compacted peer can only serve serials above its base; the
        # rebuilt replica must anchor at the matching checkpoint.
        compacted = BlockStore()
        compacted.anchor(serial=4, tip_hash=blocks[3].hash())
        for b in blocks[4:]:
            compacted.publish(b)
        rebuilt = Ledger.from_checkpoint(
            owner="corrupt", serial=4, tip_hash=blocks[3].hash()
        )
        assert sync_replica(rebuilt, compacted) == 2
        assert rebuilt.height == 6
        assert rebuilt.tip_hash() == blocks[-1].hash()
        rebuilt.verify_integrity()

    def test_mismatched_anchor_detected_not_absorbed(self):
        store = BlockStore()
        publish_chain(store, 5)
        # Anchored on a tip hash the peer chain never produced: the very
        # first pulled block fails to link.
        rebuilt = Ledger.from_checkpoint(
            owner="corrupt", serial=2, tip_hash=b"\x99" * 32
        )
        with pytest.raises(ChainIntegrityError):
            sync_replica(rebuilt, store)
        assert rebuilt.height == 2  # still only the bad anchor, nothing loaded


class _CorruptingPeerStore(BlockStore):
    """A peer whose transfer hands over a tampered block for one serial.

    Models mid-transfer corruption (a wire bit-flip, a bad disk read on
    the peer): the block arrives with the right serial but a broken
    hash link.  ``poisoned`` counts how many retrievals of that serial
    corrupt before the peer serves clean copies again; ``None`` poisons
    forever (a persistently bad peer).
    """

    def __init__(self, corrupt_serial: int, poisoned: int | None = 1):
        super().__init__()
        self._corrupt_serial = corrupt_serial
        self._poisoned = poisoned

    def retrieve(self, serial: int) -> Block:
        block = super().retrieve(serial)
        if serial != self._corrupt_serial or self._poisoned == 0:
            return block
        if self._poisoned is not None:
            self._poisoned -= 1
        return Block(
            serial=block.serial, tx_list=block.tx_list,
            prev_hash=b"\x77" * 32, proposer=block.proposer,
            round_number=block.round_number,
        )


class TestMidTransferCorruption:
    """Satellite: catch-up retried against a peer that corrupts in flight.

    The replica's own append checks are the integrity boundary: a
    tampered block fails to link, the sync aborts at the good prefix,
    and a retry resumes from ``height + 1`` — either against the healed
    peer or against a different one.  Nothing corrupt is ever absorbed,
    and no progress is lost.
    """

    def test_transient_corruption_retried_to_convergence(self):
        peer = _CorruptingPeerStore(corrupt_serial=3, poisoned=1)
        publish_chain(peer, 5)
        replica = Ledger(owner="late")
        with pytest.raises(ChainIntegrityError):
            sync_replica(replica, peer)
        # Aborted exactly at the good prefix: serials 1-2 kept, the
        # tampered serial 3 rejected before it could take effect.
        assert replica.height == 2
        replica.verify_integrity()
        # Retry once the corruption clears: resumes, not restarts.
        assert sync_replica(replica, peer) == 3
        assert verify_sync(replica, peer)
        replica.verify_integrity()

    def test_persistent_corruptor_never_absorbed_then_peer_switch(self):
        bad_peer = _CorruptingPeerStore(corrupt_serial=3, poisoned=None)
        blocks = publish_chain(bad_peer, 5)
        good_peer = BlockStore()
        for block in blocks:
            good_peer.publish(block)
        replica = Ledger(owner="late")
        for _ in range(3):  # every retry fails identically, no creep
            with pytest.raises(ChainIntegrityError):
                sync_replica(replica, bad_peer)
            assert replica.height == 2
        # Operator gives up on the bad peer; an honest one finishes.
        assert sync_replica(replica, good_peer) == 3
        assert verify_sync(replica, good_peer)
        replica.verify_integrity()
