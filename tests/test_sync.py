"""Tests for replica catch-up (ledger sync)."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import SigningKey
from repro.exceptions import ChainIntegrityError, LedgerError
from repro.ledger.block import Block
from repro.ledger.chain import Ledger
from repro.ledger.store import BlockStore
from repro.ledger.sync import sync_replica, verify_sync
from repro.ledger.transaction import CheckStatus, Label, TxRecord, make_signed_transaction

KEY = SigningKey(owner="p0", secret=b"\x15" * 32)
_NONCE = iter(range(100_000))


def publish_chain(store: BlockStore, n: int) -> list[Block]:
    prev = b"\x00" * 32
    blocks = []
    for serial in range(1, n + 1):
        tx = make_signed_transaction(KEY, f"b{serial}", 1.0, nonce=next(_NONCE))
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        block = Block(
            serial=serial, tx_list=(rec,), prev_hash=prev,
            proposer="g0", round_number=serial,
        )
        store.publish(block)
        blocks.append(block)
        prev = block.hash()
    return blocks


class TestSyncReplica:
    def test_full_catchup_from_genesis(self):
        store = BlockStore()
        publish_chain(store, 5)
        replica = Ledger(owner="late")
        appended = sync_replica(replica, store)
        assert appended == 5
        assert verify_sync(replica, store)

    def test_partial_catchup_with_limit(self):
        store = BlockStore()
        publish_chain(store, 6)
        replica = Ledger(owner="late")
        assert sync_replica(replica, store, limit=2) == 2
        assert replica.height == 2
        assert not verify_sync(replica, store)
        assert sync_replica(replica, store) == 4
        assert verify_sync(replica, store)

    def test_noop_when_caught_up(self):
        store = BlockStore()
        blocks = publish_chain(store, 3)
        replica = Ledger(owner="r")
        for block in blocks:
            replica.append(block)
        assert sync_replica(replica, store) == 0
        assert verify_sync(replica, store)

    def test_negative_limit_rejected(self):
        with pytest.raises(LedgerError):
            sync_replica(Ledger(), BlockStore(), limit=-1)

    def test_corrupt_replica_detected(self):
        store = BlockStore()
        publish_chain(store, 3)
        # A replica holding a divergent block cannot link the next one.
        replica = Ledger(owner="corrupt")
        tx = make_signed_transaction(KEY, "evil", 1.0, nonce=next(_NONCE))
        rec = TxRecord(tx=tx, label=Label.VALID, status=CheckStatus.CHECKED)
        replica.append(
            Block(serial=1, tx_list=(rec,), prev_hash=b"\x00" * 32,
                  proposer="gX", round_number=1)
        )
        with pytest.raises(ChainIntegrityError):
            sync_replica(replica, store)

    def test_verify_sync_empty_both(self):
        assert verify_sync(Ledger(), BlockStore())

    def test_verify_sync_height_mismatch(self):
        store = BlockStore()
        publish_chain(store, 2)
        assert not verify_sync(Ledger(), store)
