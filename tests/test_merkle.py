"""Unit and property tests for Merkle trees."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.merkle import EMPTY_ROOT, MerkleProof, MerkleTree, merkle_root


class TestConstruction:
    def test_empty_tree_root(self):
        assert MerkleTree([]).root == EMPTY_ROOT
        assert merkle_root([]) == EMPTY_ROOT

    def test_single_leaf(self):
        tree = MerkleTree(["only"])
        assert len(tree) == 1
        assert tree.root != EMPTY_ROOT

    def test_root_depends_on_content(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["a", "c"]).root

    def test_root_depends_on_order(self):
        assert MerkleTree(["a", "b"]).root != MerkleTree(["b", "a"]).root

    def test_root_depends_on_length(self):
        assert MerkleTree(["a"]).root != MerkleTree(["a", "a"]).root

    def test_deterministic(self):
        items = list(range(13))
        assert MerkleTree(items).root == MerkleTree(items).root


class TestProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 16, 31])
    def test_every_leaf_provable(self, size):
        items = [f"tx{i}" for i in range(size)]
        tree = MerkleTree(items)
        for i in range(size):
            proof = tree.prove(i)
            assert tree.verify(proof)
            assert MerkleTree.verify_against(tree.root, items[i], proof)

    def test_out_of_range_index(self):
        tree = MerkleTree(["a", "b"])
        with pytest.raises(IndexError):
            tree.prove(2)
        with pytest.raises(IndexError):
            tree.prove(-1)

    def test_proof_fails_against_other_root(self):
        t1 = MerkleTree(["a", "b", "c"])
        t2 = MerkleTree(["a", "b", "d"])
        proof = t1.prove(0)
        assert not MerkleTree.verify_against(t2.root, "a", proof)

    def test_proof_fails_for_wrong_item(self):
        tree = MerkleTree(["a", "b", "c"])
        proof = tree.prove(1)
        assert not MerkleTree.verify_against(tree.root, "x", proof)

    def test_tampered_path_fails(self):
        tree = MerkleTree(["a", "b", "c", "d"])
        proof = tree.prove(2)
        bad_path = ((bytes(32), proof.path[0][1]),) + proof.path[1:]
        tampered = MerkleProof(index=proof.index, leaf=proof.leaf, path=bad_path)
        assert not tree.verify(tampered)

    def test_proof_depth_logarithmic(self):
        tree = MerkleTree(list(range(64)))
        assert len(tree.prove(0).path) == 6


@given(st.lists(st.integers(), min_size=1, max_size=40))
def test_property_all_proofs_verify(items):
    """Inclusion proofs verify for every leaf at every size."""
    tree = MerkleTree(items)
    for i in range(len(items)):
        assert MerkleTree.verify_against(tree.root, items[i], tree.prove(i))


@given(
    st.lists(st.integers(), min_size=1, max_size=20),
    st.lists(st.integers(), min_size=1, max_size=20),
)
def test_property_distinct_lists_distinct_roots(a, b):
    """Roots commit to the full ordered list."""
    assert (merkle_root(a) == merkle_root(b)) == (a == b)
