"""OBSERVABILITY.md must stay a complete, non-stale telemetry inventory.

Two directions:

* every metric the engines actually register is documented;
* every token in the doc that looks like a metric name is actually
  registered (no stale entries surviving a rename).
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.byzantine.tampering import MessageTamperer, TamperSpec
from repro.core.netengine import NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.workloads.generator import BernoulliWorkload

DOC = pathlib.Path(__file__).parent.parent / "OBSERVABILITY.md"

#: Anything shaped like one of our metric names.
_METRIC_TOKEN = re.compile(
    r"\b(?:net|abcast|rel|gov|rep|engine|audit|byz|shard|storage|par|tpt|stream)_[a-z0-9_]+\b"
)


@pytest.fixture(scope="module")
def registered() -> MetricsRegistry:
    """One registry that has seen every instrumented constructor."""
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    reg = MetricsRegistry()
    NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=0.5, delta=0.2),
        seed=0,
        max_delay=0.05,
        resilience=True,
        obs=reg,
    )
    ProtocolEngine(topo, ProtocolParams(f=0.5), seed=0, obs=reg)
    MessageTamperer(TamperSpec(flip_label=0.1), seed=0, obs=reg)
    # The sharding layer: coordinator metrics plus the cross-shard
    # auditor's counters ride on the same registry.
    from repro.sharding import ShardCoordinator

    ShardCoordinator(
        Topology.sharded(l=4, n=2, m=2, r=1, shards=2),
        ProtocolParams(f=0.5, delta=0.2),
        seed=0,
        obs=reg,
    )
    # The transport family registers lazily inside RealNetwork; use the
    # fetch-or-register helper so no sockets are needed here.
    from repro.network.realnet import transport_metrics

    transport_metrics(reg)
    # The streaming family likewise exposes a fetch-or-register helper.
    from repro.streaming import stream_metrics

    stream_metrics(reg)
    return reg


def test_every_registered_metric_is_documented(registered):
    doc = DOC.read_text()
    missing = [name for name in registered.names() if f"`{name}`" not in doc]
    assert not missing, f"metrics exported but absent from OBSERVABILITY.md: {missing}"


def test_no_stale_metric_names_in_doc(registered):
    doc = DOC.read_text()
    known = set(registered.names())
    stale = sorted(
        {
            token
            for token in _METRIC_TOKEN.findall(doc)
            if token not in known
            # histogram series suffixes appear in the format description
            and not token.endswith(("_bucket", "_sum", "_count"))
        }
    )
    assert not stale, f"OBSERVABILITY.md documents unknown metrics: {stale}"


def test_every_recorded_span_name_is_documented():
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    reg = MetricsRegistry()
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=0.5, delta=0.2),
        seed=5,
        max_delay=0.05,
        resilience=True,
        obs=reg,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=6)
    for _ in range(2):
        engine.run_round(workload.take(6))
    engine.finalize()
    engine.drain_recovery()
    doc = DOC.read_text()
    recorded = {span.name for span in reg.spans}
    assert recorded == {"round", "argue_phase", "drain_recovery"}
    missing = [name for name in sorted(recorded) if f"`{name}`" not in doc]
    assert not missing, f"spans recorded but absent from OBSERVABILITY.md: {missing}"


def test_bench_schema_version_is_documented():
    import importlib.util

    helpers_path = (
        pathlib.Path(__file__).parent.parent / "benchmarks" / "_helpers.py"
    )
    spec = importlib.util.spec_from_file_location("_bench_helpers", helpers_path)
    helpers = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(helpers)
    assert f"`{helpers.BENCH_SCHEMA}`" in DOC.read_text()
