"""E11 — Section 5: the two application case studies end-to-end.

Car-sharing (5.1): merged platforms dispatch on one chain; flaky and
reputation-farming drivers lose revenue share.
Insurance (5.2): commission-biased agents whitewash fraud; fraud leakage
stays low and the biased agents' income collapses.
"""

from __future__ import annotations

from _helpers import emit
from repro.agents.behaviors import MisreportBehavior, SleeperBehavior
from repro.analysis.reporting import format_table
from repro.apps import CarSharingMarket, CommissionBiasedAgent, InsuranceAlliance
from repro.core.params import ProtocolParams


def _carsharing_report():
    market = CarSharingMarket(
        n_users=24,
        n_drivers=8,
        n_schedulers=4,
        drivers_per_user=4,
        dishonest_drivers={
            "c0": MisreportBehavior(0.6),
            "c1": SleeperBehavior(60),
        },
        params=ProtocolParams(f=0.6),
        unfunded_rate=0.2,
        seed=41,
    )
    for _ in range(30):
        market.run_round(16)
    return market.report()


def test_e11_carsharing(benchmark):
    """E11a: car-sharing market metrics."""
    report = benchmark.pedantic(_carsharing_report, rounds=1, iterations=1)
    total = report.honest_driver_revenue + report.dishonest_driver_revenue
    table = format_table(
        ["metric", "value"],
        [
            ("requests offered", report.requests_offered),
            ("requests on chain", report.requests_on_chain),
            ("assignment rate", f"{report.assignment_rate:.3f}"),
            ("mean pickup distance", f"{report.mean_pickup_distance:.2f}"),
            ("honest drivers' (6) revenue share", f"{report.honest_driver_revenue / total:.1%}"),
            ("dishonest drivers' (2) revenue share", f"{report.dishonest_driver_revenue / total:.1%}"),
        ],
    )
    emit("E11a_carsharing", "E11a (Section 5.1): car-sharing market, 480 requests", table)
    per_honest = report.honest_driver_revenue / 6
    per_dishonest = report.dishonest_driver_revenue / 2
    assert per_dishonest < per_honest
    assert report.assignment_rate > 0.5


def _insurance_report():
    alliance = InsuranceAlliance(
        n_applicants=20,
        n_agents=10,
        n_companies=4,
        agents_per_applicant=5,
        biased_agents={
            "c0": CommissionBiasedAgent(0.9),
            "c1": CommissionBiasedAgent(0.6),
        },
        params=ProtocolParams(f=0.5),
        fraud_rate=0.25,
        seed=43,
    )
    for _ in range(40):
        alliance.run_round(10)
    return alliance.report()


def test_e11_insurance(benchmark):
    """E11b: insurance underwriting metrics."""
    report = benchmark.pedantic(_insurance_report, rounds=1, iterations=1)
    total = report.honest_agent_revenue + report.biased_agent_revenue
    table = format_table(
        ["metric", "value"],
        [
            ("applications", report.applications),
            ("fraudulent applications", report.fraudulent_applications),
            ("fraud recorded as valid", report.fraud_on_chain_as_valid),
            ("fraud leakage", f"{report.fraud_leakage:.1%}"),
            ("honest agents' (8) revenue share", f"{report.honest_agent_revenue / total:.1%}"),
            ("biased agents' (2) revenue share", f"{report.biased_agent_revenue / total:.1%}"),
        ],
    )
    emit("E11b_insurance", "E11b (Section 5.2): insurance underwriting, 400 applications", table)
    per_honest = report.honest_agent_revenue / 8
    per_biased = report.biased_agent_revenue / 2
    assert per_biased < per_honest
    assert report.fraud_leakage < 0.5
