"""P1/P2 — hot-path throughput and latency of the protocol itself.

Every other bench in this directory measures *protocol properties*
(agreement, regret, loss bounds); this one measures *speed*: how many
transactions per second the engines push end-to-end, and how fast the
individual hot operations (canonical encoding, HMAC sign/verify,
screening decisions, event-loop steps) run — each with the performance
caches enabled vs. force-disabled through :mod:`repro.perf`, so the
table doubles as the before/after record (disabled mode is the pre-cache
code path).

The suite also re-checks the determinism contract on every run: the
ledger tip hashes of the cached and uncached end-to-end runs must be
identical (see PERFORMANCE.md and tests/test_perf.py).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_perf.py          # full scale
    PYTHONPATH=src python benchmarks/bench_perf.py --quick  # CI smoke

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py -q
"""

from __future__ import annotations

import pathlib
import sys
import time

if __name__ == "__main__":  # script mode: make _helpers + repro importable
    _here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(_here))
    _src = _here.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from _helpers import emit

import numpy as np

from repro import ProtocolEngine, ProtocolParams, Topology, perf
from repro.agents.behaviors import ConcealBehavior, MisreportBehavior
from repro.analysis.reporting import format_table
from repro.core.netengine import NetworkedProtocolEngine
from repro.core.reputation import ReputationBook
from repro.core.screening import ReportSet, screen_transaction
from repro.crypto.hashing import canonical_encode
from repro.crypto.identity import IdentityManager, Role
from repro.crypto.signatures import sign
from repro.ledger.transaction import Label, make_signed_transaction
from repro.network.simnet import Simulator
from repro.workloads.generator import BernoulliWorkload

#: Work scales.  ``quick`` is the CI smoke configuration: same code
#: paths and files, small enough to finish in seconds.
SCALES = {
    "full": dict(rounds=20, per_round=32, net_rounds=10, net_per_round=8, micro=20_000),
    "quick": dict(rounds=5, per_round=16, net_rounds=4, net_per_round=8, micro=2_000),
}


# -- end-to-end throughput (P1) -----------------------------------------


def _run_inprocess(rounds: int, per_round: int) -> tuple[int, float, str]:
    """One seeded in-process run; returns (txs, seconds, tip hash)."""
    topo = Topology.regular(l=16, n=8, m=4, r=4)
    params = ProtocolParams(f=0.5, b_limit=1024)
    behaviors = {"c0": MisreportBehavior(0.4), "c1": ConcealBehavior(0.4)}
    engine = ProtocolEngine(topo, params, behaviors=behaviors, seed=7)
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=8)
    t0 = time.perf_counter()
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))
    engine.finalize()
    elapsed = time.perf_counter() - t0
    tip = next(iter(engine.governors.values())).ledger.tip_hash().hex()
    return rounds * per_round, elapsed, tip


def _run_networked(rounds: int, per_round: int) -> tuple[int, float, str]:
    """One seeded networked (discrete-event) run."""
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    params = ProtocolParams(f=0.5, delta=0.2)
    engine = NetworkedProtocolEngine(topo, params, seed=3)
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=4)
    t0 = time.perf_counter()
    for _ in range(rounds):
        engine.run_round(workload.take(per_round))
    elapsed = time.perf_counter() - t0
    tip = next(iter(engine.governors.values())).ledger.tip_hash().hex()
    return rounds * per_round, elapsed, tip


def bench_throughput(scale: dict) -> tuple[list, dict]:
    """Cached-vs-uncached end-to-end tx/s for both engines."""
    rows = []
    metrics: dict = {}
    for label, runner, args in (
        ("in-process", _run_inprocess, (scale["rounds"], scale["per_round"])),
        ("networked", _run_networked, (scale["net_rounds"], scale["net_per_round"])),
    ):
        txs, t_cached, tip_cached = runner(*args)
        with perf.all_disabled():
            _, t_uncached, tip_uncached = runner(*args)
        identical = tip_cached == tip_uncached
        speedup = t_uncached / t_cached
        rows.append((label, "caches off", txs, round(t_uncached, 3),
                     round(txs / t_uncached, 1), 1.0, identical))
        rows.append((label, "caches on", txs, round(t_cached, 3),
                     round(txs / t_cached, 1), round(speedup, 2), identical))
        metrics[label.replace("-", "_")] = {
            "txs": txs,
            "seconds_cached": t_cached,
            "seconds_uncached": t_uncached,
            "tx_per_s_cached": txs / t_cached,
            "tx_per_s_uncached": txs / t_uncached,
            "speedup": speedup,
            "identical_ledger_tip": identical,
            "tip": tip_cached,
        }
    return rows, metrics


# -- micro-operations (P2) ----------------------------------------------


def _ops_row(operation: str, mode: str, ops: int, seconds: float):
    return (operation, mode, ops, round(seconds, 4), round(ops / seconds, 1))


def _time_loop(fn, n: int) -> float:
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return time.perf_counter() - t0


def bench_micro(scale: dict) -> tuple[list, dict]:
    """Per-operation throughput for the individual hot paths."""
    n = scale["micro"]
    rows = []

    # Canonical encoding of the dominant payload shape.
    payload = {"kind": "transfer", "amount": 125, "memo": "bench", "n": 42}
    rows.append(_ops_row(
        "canonical_encode(payload)", "-", n,
        _time_loop(lambda: canonical_encode(payload), n),
    ))

    # HMAC signing over pre-encoded bytes.
    im = IdentityManager(seed=11)
    key = im.enroll("p0", Role.PROVIDER)
    message = canonical_encode(("tx", b"\x01" * 32, 0.5))
    rows.append(_ops_row(
        "sign(message)", "-", n, _time_loop(lambda: sign(key, message), n)
    ))

    # Verification: cold (distinct payloads, every call a full HMAC)
    # vs. warm (the r-fold/per-governor case — repeats hit the LRU).
    cold_msgs = [canonical_encode(("tx", i.to_bytes(8, "big"), 0.5)) for i in range(n)]
    cold_sigs = [sign(key, m) for m in cold_msgs]
    sig = sign(key, message)
    t0 = time.perf_counter()
    for m, s in zip(cold_msgs, cold_sigs):
        im.verify("p0", m, s)
    t_cold = time.perf_counter() - t0
    rows.append(_ops_row("verify(message)", "cold (all misses)", n, t_cold))
    rows.append(_ops_row(
        "verify(message)", "warm (cache hits)", n,
        _time_loop(lambda: im.verify("p0", message, sig), n),
    ))
    with perf.overridden(signature_cache=False):
        rows.append(_ops_row(
            "verify(message)", "cache disabled", n,
            _time_loop(lambda: im.verify("p0", message, sig), n),
        ))

    # Screening decisions (Algorithm 2) over a fixed report set.
    decisions = max(n // 4, 500)
    book = ReputationBook(governor="g0")
    reporters = [f"c{i}" for i in range(4)]
    for c in reporters:
        book.register_collector(c, ["p0"])
    tx = make_signed_transaction(key, {"v": 1}, timestamp=1.0, nonce=0)
    reports = ReportSet(
        tx=tx,
        provider="p0",
        labels={c: (Label.VALID if i % 2 == 0 else Label.INVALID)
                for i, c in enumerate(reporters)},
        linked_collectors=tuple(reporters),
    )
    params = ProtocolParams(f=0.5)
    for mode, knobs in (("cached", {}), ("cache disabled", {"reputation_cache": False})):
        with perf.overridden(**knobs):
            rng = np.random.default_rng(5)
            rows.append(_ops_row(
                "screen_transaction", mode, decisions,
                _time_loop(
                    lambda: screen_transaction(
                        params, book, reports, lambda _tx: True, rng
                    ),
                    decisions,
                ),
            ))

    # Raw event-loop dispatch: schedule + drain no-op events.
    events = max(n, 5_000)
    sim = Simulator(seed=0)
    noop = lambda: None  # noqa: E731
    t0 = time.perf_counter()
    for i in range(events):
        sim.schedule_at(float(i) * 1e-6, noop)
    sim.run()
    t_events = time.perf_counter() - t0
    rows.append(_ops_row("event schedule+dispatch", "-", events, t_events))

    metrics = {
        row[0] + (f" [{row[1]}]" if row[1] != "-" else ""): {
            "ops": row[2], "seconds": row[3], "ops_per_s": row[4]
        }
        for row in rows
    }
    return rows, metrics


# -- suite --------------------------------------------------------------


def run_suite(quick: bool = False) -> dict:
    """Run P1 + P2 and emit both result twins; returns the P1 metrics."""
    scale = SCALES["quick" if quick else "full"]
    suite_t0 = time.perf_counter()

    p1_rows, p1_metrics = bench_throughput(scale)
    table = format_table(
        ["engine", "mode", "txs", "seconds", "tx/s", "speedup", "tips identical"],
        p1_rows,
    )
    emit(
        "P1_throughput",
        "P1 — end-to-end throughput, caches on vs. force-disabled (before/after)",
        table,
        metrics=p1_metrics,
        duration_s=time.perf_counter() - suite_t0,
    )

    p2_t0 = time.perf_counter()
    p2_rows, p2_metrics = bench_micro(scale)
    table = format_table(
        ["operation", "mode", "ops", "seconds", "ops/s"], p2_rows
    )
    emit(
        "P2_microbench",
        "P2 — hot-path micro-operations (crypto, screening, event loop)",
        table,
        metrics=p2_metrics,
        duration_s=time.perf_counter() - p2_t0,
    )
    return p1_metrics


def test_perf_suite(benchmark):
    """pytest-benchmark entry point (full scale, like the other benches)."""
    metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert metrics["in_process"]["identical_ledger_tip"]
    assert metrics["networked"]["identical_ledger_tip"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke scale (same code paths, seconds not minutes)",
    )
    args = parser.parse_args(argv)
    metrics = run_suite(quick=args.quick)
    ok = all(m["identical_ledger_tip"] for m in metrics.values())
    if not ok:
        print("FATAL: cached and uncached runs diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
