"""E6 — incentives: collector revenue falls with every kind of misconduct.

Runs the full engine with one collector per misconduct class and reports
each collector's cumulative reward share — the paper's incentive claim
(Section 4.2): revenue proportional to
prod(w) * mu^w_misreport * nu^w_forge is decreasing in misbehaviour.
"""

from __future__ import annotations

from _helpers import emit
from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    ForgeBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.analysis.reporting import format_table
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload

BEHAVIOUR_TABLE = {
    "c0": ("honest", None),
    "c1": ("misreport p=0.3", MisreportBehavior(0.3)),
    "c2": ("misreport p=0.8", MisreportBehavior(0.8)),
    "c3": ("conceal q=0.5", ConcealBehavior(0.5)),
    "c4": ("invert (p=1)", AlwaysInvertBehavior()),
    "c5": ("forge w=0.3", ForgeBehavior(0.3)),
    "c6": ("sleeper (100 honest)", SleeperBehavior(100)),
    "c7": ("honest", None),
}


def _incentive_table() -> tuple[str, dict[str, float]]:
    topo = Topology.regular(l=16, n=8, m=4, r=4)
    behaviors = {
        cid: behavior
        for cid, (_name, behavior) in BEHAVIOUR_TABLE.items()
        if behavior is not None
    }
    engine = ProtocolEngine(
        topo, ProtocolParams(f=0.6), behaviors=behaviors, seed=11,
        leader_rotation=True,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.6, seed=12)
    for _ in range(40):
        engine.run_round(workload.take(24))
    engine.finalize()
    paid = engine.metrics.rewards_paid
    total = sum(paid.values())
    rows = []
    for cid, (name, _behavior) in BEHAVIOUR_TABLE.items():
        share = paid.get(cid, 0.0) / total
        rows.append((cid, name, round(paid.get(cid, 0.0), 2), f"{share:.2%}"))
    return (
        format_table(["collector", "behaviour", "revenue", "share"], rows),
        paid,
    )


def test_e6_incentives(benchmark):
    """E6: revenue by misconduct class."""
    table, paid = benchmark.pedantic(_incentive_table, rounds=1, iterations=1)
    emit(
        "E6_incentives",
        "E6: collector revenue under the reputation-linked reward rule "
        "(960 tx, 40 rounds, f = 0.6)",
        table,
    )
    honest = (paid["c0"] + paid["c7"]) / 2
    # Every misbehaving collector earns less than the honest average.
    for cid in ("c1", "c2", "c3", "c4", "c5"):
        assert paid[cid] < honest
    # The more severe misreporter earns less than the milder one.
    assert paid["c2"] < paid["c1"]
