"""E17 — transport parity and robustness on a localhost cluster.

One seeded :class:`~repro.network.cluster.ClusterScenario` is committed
three times:

1. **sim** — the discrete-event :class:`SyncNetwork` baseline;
2. **real** — the same engine over :class:`RealNetwork`, every admitted
   message physically conveyed (framed, CRC-checked, acknowledged) to a
   cluster of ``repro serve`` custodian subprocesses on localhost;
3. **chaos** — the real run again, but with every custodian fronted by
   a seeded :class:`~repro.faults.proxy.TransportFaultProxy` injecting
   frame loss, duplication, reordering and a partition blackout window
   at the socket boundary.

The acceptance criteria of the transport backend are asserted directly:

* all three runs commit the **bit-identical chain tip** (same height,
  same sim clock) — socket chaos may delay commitment, never change it;
* every run ends with a clean safety audit and zero violations;
* under chaos the robustness machinery demonstrably fired (dropped
  frames at the proxy, retransmissions and reconnect-backoffs at the
  driver) rather than the run merely getting lucky.

The table reports wall-clock cost of physical conveyance next to the
sim baseline, plus the ``tpt_*`` counters for both real runs.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_transport.py           # E17 full
    PYTHONPATH=src python benchmarks/bench_transport.py --quick   # CI smoke

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_transport.py -q
"""

from __future__ import annotations

import pathlib
import sys
import time

if __name__ == "__main__":  # script mode: make _helpers + repro importable
    _here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(_here))
    _src = _here.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from _helpers import emit

import pytest

from repro.analysis.reporting import format_table
from repro.faults.plan import FaultPlan, LinkFaultSpec
from repro.faults.proxy import start_proxy_thread
from repro.network.cluster import ClusterScenario, launch_custodians, run_scenario
from repro.network.realnet import TransportConfig, transport_metrics
from repro.obs import MetricsRegistry

SEED = 5
PEERS = 2

SCALES = {
    "quick": dict(rounds=2, batch=8, partition=(0.3, 0.7)),
    "full": dict(rounds=4, batch=12, partition=(0.5, 1.2)),
}

#: Wall-clock-snappy robustness knobs — the same machinery as the
#: defaults, tightened so the chaos run converges in seconds.
CONFIG = TransportConfig(
    connect_timeout=1.0,
    connect_attempts=10,
    backoff_base=0.02,
    backoff_max=0.25,
    send_deadline=0.3,
    deadline_poll=0.02,
    max_retries=24,
    heartbeat_interval=0.25,
    heartbeat_budget=3,
    session_floor=0.02,
    stall_timeout=30.0,
)


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    result["wall_s"] = time.perf_counter() - t0
    return result


def _tpt_snapshot(registry: MetricsRegistry, peers: list[str]) -> dict:
    metrics = transport_metrics(registry)
    return {
        "frames_out": metrics["frames"].value_of(direction="out"),
        "frames_in": metrics["frames"].value_of(direction="in"),
        "bytes_out": metrics["bytes"].value_of(direction="out"),
        "bytes_in": metrics["bytes"].value_of(direction="in"),
        "retransmits": metrics["retransmits"].value,
        "deadline_expiries": metrics["deadline_expiries"].value,
        "backoff_sleeps": metrics["backoff_sleeps"].value,
        "reconnects": sum(
            metrics["reconnects"].value_of(peer=p) for p in peers
        ),
        "heartbeat_misses": sum(
            metrics["heartbeat_misses"].value_of(peer=p) for p in peers
        ),
        "suspects": metrics["suspects"].value,
        "crc_errors": metrics["crc_errors"].value,
    }


def run_suite(quick: bool = False) -> dict:
    """Run the E17 sweep and emit both result twins; returns metrics."""
    scale = SCALES["quick" if quick else "full"]
    t0 = time.perf_counter()
    scenario = ClusterScenario(
        rounds=scale["rounds"], batch=scale["batch"], seed=SEED
    )

    sim = _timed(run_scenario, scenario, backend="sim")

    handle = launch_custodians(PEERS)
    peer_names = [name for name, _, _ in handle.addresses]
    try:
        real_reg = MetricsRegistry()
        real = _timed(
            run_scenario, scenario, backend="real",
            custodians=handle.addresses, config=CONFIG, obs=real_reg,
        )
        real_tpt = _tpt_snapshot(real_reg, peer_names)

        start, end = scale["partition"]
        plan = (
            FaultPlan(seed=SEED + 26)
            .with_default_link(
                LinkFaultSpec(loss=0.05, duplicate=0.05, reorder=0.03)
            )
            .with_partition(("any",), start=start, end=end)
        )
        proxies = [
            start_proxy_thread(host, port, plan)
            for _, host, port in handle.addresses
        ]
        try:
            proxied = [
                (name, "127.0.0.1", proxy.port)
                for (name, _, _), (proxy, _) in zip(handle.addresses, proxies)
            ]
            chaos_reg = MetricsRegistry()
            chaos = _timed(
                run_scenario, scenario, backend="real",
                custodians=proxied, config=CONFIG, obs=chaos_reg,
            )
            chaos_tpt = _tpt_snapshot(chaos_reg, peer_names)
            chaos_tpt["proxy_frames_dropped"] = sum(
                proxy.frames_dropped for proxy, _ in proxies
            )
            chaos_tpt["proxy_frames_duplicated"] = sum(
                proxy.frames_duplicated for proxy, _ in proxies
            )
            chaos_tpt["proxy_connections_killed"] = sum(
                proxy.connections_killed for proxy, _ in proxies
            )
        finally:
            for _, pstop in proxies:
                pstop()
    finally:
        handle.close()

    runs = {"sim": sim, "real": real, "chaos": chaos}
    tips_identical = (
        sim["tip"] == real["tip"] == chaos["tip"]
        and sim["height"] == real["height"] == chaos["height"]
        and sim["clock"] == real["clock"] == chaos["clock"]
    )
    audits_clean = all(
        r["audit_clean"] and r["violations"] == 0 for r in runs.values()
    )
    chaos_exercised = (
        chaos_tpt["proxy_frames_dropped"] > 0
        and chaos_tpt["retransmits"] > 0
        and (chaos_tpt["reconnects"] > 0 or chaos_tpt["backoff_sleeps"] > 0)
    )
    all_ok = tips_identical and audits_clean and chaos_exercised

    rows = [
        (
            name, r["committed"], r["height"], f"{r['clock']:.3f}",
            f"{r['wall_s']:.2f}", r["tip"][:16],
            r["tip"] == sim["tip"], r["audit_clean"],
        )
        for name, r in runs.items()
    ]
    table = format_table(
        ["backend", "committed", "height", "sim clock", "wall s",
         "tip (prefix)", "tip == sim", "audit clean"],
        rows,
    )
    table += (
        f"\nlocalhost cluster: {PEERS} `repro serve` custodian processes; "
        f"chaos = 5% loss, 5% dup, 3% reorder,\n"
        f"partition blackout {scale['partition'][0]:.1f}s-"
        f"{scale['partition'][1]:.1f}s at the socket boundary\n"
    )
    tpt_rows = [
        (key, int(real_tpt.get(key, 0)), int(chaos_tpt[key]))
        for key in chaos_tpt
    ]
    table += "\n" + format_table(
        ["transport counter", "real", "chaos"], tpt_rows
    )
    table += (
        f"\nall three tips bit-identical: {'yes' if tips_identical else 'NO'}\n"
    )

    metrics = {
        "runs": {
            name: {k: v for k, v in r.items()} for name, r in runs.items()
        },
        "transport": {"real": real_tpt, "chaos": chaos_tpt},
        "tips_identical": tips_identical,
        "audits_clean": audits_clean,
        "chaos_exercised": chaos_exercised,
        "all_ok": all_ok,
    }
    emit(
        "E17_transport",
        "E17 — one seeded scenario, three transports: simulator, real "
        "TCP cluster, real TCP under socket chaos",
        table,
        metrics=metrics,
        registry=chaos_reg,
        duration_s=time.perf_counter() - t0,
    )
    return metrics


@pytest.mark.realnet
def test_transport_suite(benchmark):
    """pytest-benchmark entry point (full scale, like the other benches)."""
    metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert metrics["tips_identical"]
    assert metrics["audits_clean"]
    assert metrics["all_ok"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke scale (same code paths, seconds not minutes)",
    )
    args = parser.parse_args(argv)
    metrics = run_suite(quick=args.quick)
    if not metrics["all_ok"]:
        print("FATAL: E17 acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
