"""Pytest wiring for the benchmark harness.

Keeps the benchmarks directory on sys.path so bench modules can import
the shared helpers in ``_helpers.py`` regardless of invocation style.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
