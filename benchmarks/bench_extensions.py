"""Extension benches — features beyond the paper (DESIGN.md §5+).

X1: adaptive f (AIMD) vs static f — does the controller find a larger f
    at the same mistake budget, and does it react to sleeper defection?
X2: reputation gossip — how much faster do partially-informed governors
    converge on a misreporter when they share views?
X3: partial visibility — screening quality as each governor's collector
    view thins.
"""

from __future__ import annotations

from _helpers import emit
from repro.agents.behaviors import HonestBehavior, MisreportBehavior, SleeperBehavior
from repro.analysis.reporting import format_table
from repro.baselines.base import PolicySimulation, ReputationPolicy
from repro.core.adaptive import AdaptiveF
from repro.core.gossip import ReputationGossip, make_summary
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.core.reputation import ReputationBook
from repro.crypto.identity import IdentityManager, Role
from repro.network.topology import Topology
from repro.network.visibility import VisibilityMap
from repro.workloads.generator import BernoulliWorkload

COLLECTOR_IDS = [f"c{i}" for i in range(8)]


class _AdaptivePolicy:
    """ReputationPolicy whose f follows an AdaptiveF controller."""

    def __init__(self, controller: AdaptiveF):
        self.controller = controller
        self.params = ProtocolParams(f=controller.f)
        self.inner = ReputationPolicy(params=self.params, collector_ids=COLLECTOR_IDS)

    def screen(self, labels, rng):
        self.inner.params = self.controller.apply_to(self.params)
        return self.inner.screen(labels, rng)

    def on_truth(self, labels, truth, was_checked):
        if not was_checked:
            # An unchecked record is a mistake when the recorded
            # (invalid) label contradicts the truth.
            from repro.ledger.transaction import Label

            self.controller.observe_reveal(was_mistake=(truth is Label.VALID))
        self.inner.on_truth(labels, truth, was_checked)


def _adaptive_table() -> str:
    def sleeper_mix():
        return [HonestBehavior()] * 4 + [SleeperBehavior(600) for _ in range(4)]

    horizon = 3000
    rows = []
    for name, policy_factory in [
        ("static f = 0.3", lambda: ReputationPolicy(
            params=ProtocolParams(f=0.3), collector_ids=COLLECTOR_IDS)),
        ("static f = 0.7", lambda: ReputationPolicy(
            params=ProtocolParams(f=0.7), collector_ids=COLLECTOR_IDS)),
        ("adaptive (target 2%)", lambda: _AdaptivePolicy(
            AdaptiveF(target_mistake_rate=0.02, initial_f=0.3))),
    ]:
        sim = PolicySimulation(sleeper_mix(), horizon=horizon, seed=51)
        policy = policy_factory()
        stats = sim.run(policy, policy_seed=52)
        final_f = (
            policy.controller.f if isinstance(policy, _AdaptivePolicy) else None
        )
        rows.append(
            (
                name,
                stats.validations,
                stats.mistakes,
                f"{stats.mistake_rate:.4f}",
                "-" if final_f is None else f"{final_f:.3f}",
            )
        )
    return format_table(
        ["policy", "validations", "mistakes", "mistake rate", "final f"], rows
    )


def test_x1_adaptive_f(benchmark):
    """X1: AIMD f controller vs static f under sleeper defection."""
    table = benchmark.pedantic(_adaptive_table, rounds=1, iterations=1)
    emit(
        "X1_adaptive_f",
        "X1 (extension): adaptive f vs static f, 4 honest + 4 sleepers "
        "defecting at t = 600",
        table,
    )


def _gossip_table() -> str:
    """An informed governor observes the reveals about a misreporter; a
    blind one (partial information) sees none.  Gossip propagates the
    informed view to the blind governor, whose screening would otherwise
    keep trusting the liar."""
    im = IdentityManager(seed=61)
    for j in range(2):
        im.enroll(f"g{j}", Role.GOVERNOR)

    def fresh_book(gid):
        book = ReputationBook(governor=gid, initial=1.0)
        book.register_collector("liar", ["p0"])
        book.register_collector("honest", ["p0"])
        return book

    reveals = 200
    rows = []
    for label, use_gossip in [("no gossip", False), ("gossip every 10", True)]:
        books = {"g0": fresh_book("g0"), "g1": fresh_book("g1")}
        gossip = ReputationGossip(im=im, alpha=0.4)
        for t in range(reveals):
            # Only g0 observes truths (g1 has no argue path to p0).
            books["g0"].apply_revealed_truth(
                "p0", {"liar": "wrong", "honest": "correct"}, beta=0.9, gamma=0.855
            )
            if use_gossip and t % 10 == 9:
                summaries = {
                    g: make_summary(im.record(g).key, books[g]) for g in books
                }
                for gid, book in books.items():
                    gossip.fold(book, [s for g, s in summaries.items() if g != gid])
        rows.append(
            (
                label,
                f"{books['g0'].weight('liar', 'p0'):.2e}",
                f"{books['g1'].weight('liar', 'p0'):.2e}",
            )
        )
    return format_table(
        ["configuration", "informed g0's view of liar", "blind g1's view"], rows
    )


def test_x2_gossip(benchmark):
    """X2: gossip accelerates convergence of split observations."""
    table = benchmark.pedantic(_gossip_table, rounds=1, iterations=1)
    emit(
        "X2_gossip",
        "X2 (extension): reputation gossip — an informed governor "
        "propagates a liar's reputation to a blind peer",
        table,
    )


def _visibility_table() -> str:
    rows = []
    for keep in [1.0, 0.5, 0.25, 0.0]:
        topo = Topology.regular(l=12, n=6, m=4, r=3)
        vmap = VisibilityMap.random_partial(topo, keep_fraction=keep, seed=71)
        engine = ProtocolEngine(
            topo, ProtocolParams(f=0.6),
            behaviors={"c0": MisreportBehavior(0.6)},
            seed=72, visibility=vmap, leader_rotation=True,
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=73)
        for _ in range(25):
            engine.run_round(workload.take(24))
        engine.finalize()
        mistakes = sum(g.metrics.mistakes for g in engine.governors.values())
        screened = sum(
            g.metrics.transactions_screened for g in engine.governors.values()
        )
        rows.append(
            (
                f"{vmap.mean_visibility(topo):.2f}",
                screened,
                mistakes,
                f"{mistakes / screened:.4f}" if screened else "-",
            )
        )
    return format_table(
        ["mean visibility", "screened (all governors)", "mistakes", "mistake rate"],
        rows,
    )


def test_x3_partial_visibility(benchmark):
    """X3: screening quality as governors' collector views thin."""
    table = benchmark.pedantic(_visibility_table, rounds=1, iterations=1)
    emit(
        "X3_visibility",
        "X3 (extension): partial governor visibility (coverage-preserving)",
        table,
    )


def _griefing_table() -> str:
    """X4: argue-abuse griefing — extra validations, zero corruption."""
    topo = Topology.regular(l=12, n=6, m=4, r=3)
    rows = []
    for abuse_rate in (0.0, 0.5, 1.0):
        engine = ProtocolEngine(
            topo,
            ProtocolParams(f=0.8),
            behaviors={"c0": MisreportBehavior(0.4)},
            seed=81,
            leader_rotation=True,
            abusive_providers=(
                {p: abuse_rate for p in topo.providers} if abuse_rate else None
            ),
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.5, seed=82)
        for _ in range(20):
            engine.run_round(workload.take(24))
        engine.run_round([])
        engine.finalize()
        validations = sum(g.metrics.validations for g in engine.governors.values())
        spurious = sum(p.spurious_argues for p in engine.providers.values())
        from repro.ledger.properties import check_all_properties

        ok = check_all_properties(engine.ledgers(), engine.transcript).all_hold
        rows.append((abuse_rate, engine.metrics.argues_total, spurious,
                     validations, "yes" if ok else "NO"))
    return format_table(
        ["abuse rate", "argues total", "spurious", "governor validations",
         "properties hold"],
        rows,
    )


def test_x4_argue_griefing(benchmark):
    """X4: spurious argues burn validations but cannot corrupt the chain."""
    table = benchmark.pedantic(_griefing_table, rounds=1, iterations=1)
    emit(
        "X4_griefing",
        "X4 (extension): argue-abuse griefing cost (480 tx, f = 0.8)",
        table,
    )
