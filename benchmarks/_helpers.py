"""Shared helpers for the benchmark harness.

Each bench regenerates one experiment from DESIGN.md's index (E1-E12),
prints the paper-style table, and persists it twice under
``benchmarks/results/``:

* ``<name>.txt`` — the aligned monospace table, diff-able into
  EXPERIMENTS.md (unchanged format);
* ``BENCH_<name>.json`` — a schema-versioned machine-readable twin
  (``repro.bench.v1``) holding the same rows as typed values, plus any
  structured metrics the bench passes and, optionally, a full
  observability snapshot (see OBSERVABILITY.md for the schema).

Timing is reported by pytest-benchmark; the tables are the scientific
output.  The JSON twin's ``meta`` block records the wall-clock duration
and the python/numpy versions of the producing run; everything else is
seed-determined, so reruns with the same seeds are byte-identical
outside ``meta``.
"""

from __future__ import annotations

import json
import pathlib
import platform
import re
import time

import numpy as np

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
)
from repro.obs import snapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Import time of this module; the default wall-clock reference for a
#: bench run's ``meta.duration_s`` when no explicit duration is passed.
_T0 = time.perf_counter()

#: Version tag stamped into every BENCH_*.json. Bump on breaking schema
#: changes and document the migration in OBSERVABILITY.md.
BENCH_SCHEMA = "repro.bench.v1"

#: A table rule line: runs of dashes separated by the two-space column
#: gap that :func:`repro.analysis.reporting.format_table` emits.
_RULE_RE = re.compile(r"^ *-+(?:  +-+)* *$")


def _coerce(cell: str):
    """Best-effort typed value for one table cell.

    ``yes``/``no`` (how ``format_table`` renders booleans) become
    booleans, numerics (including ``1,234.5`` and ``9.61e+01``) become
    int/float, everything else stays a string.
    """
    if cell == "yes":
        return True
    if cell == "no":
        return False
    raw = cell.replace(",", "")
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return cell


def _column_spans(rule: str) -> list[tuple[int, int]]:
    return [(m.start(), m.end()) for m in re.finditer(r"-+", rule)]


def _slice_row(line: str, spans: list[tuple[int, int]]) -> list[str]:
    """Cut one table line at the rule's column boundaries.

    Cells are right-justified, so each cell lives in
    ``(previous column's end, this column's end]``; slicing there is
    robust even when a cell's text contains single spaces.
    """
    cells = []
    prev_end = 0
    for i, (_start, end) in enumerate(spans):
        hi = len(line) if i == len(spans) - 1 else end
        cells.append(line[prev_end:hi].strip())
        prev_end = hi
    return cells


def parse_tables(text: str) -> list[dict]:
    """Parse ``format_table`` output (possibly several captioned tables).

    Returns a list of ``{"caption", "columns", "rows"}`` dicts where
    each row is a column-name -> typed-value mapping.  A table is a
    header line followed by a dash rule; any non-blank line immediately
    preceding the header (e.g. ``-- loss sweep --``) is its caption.
    """
    lines = text.split("\n")
    tables: list[dict] = []
    caption: str | None = None
    i = 0
    while i < len(lines):
        line = lines[i]
        nxt = lines[i + 1] if i + 1 < len(lines) else ""
        if line.strip() and "-" in nxt and _RULE_RE.match(nxt):
            spans = _column_spans(nxt)
            columns = _slice_row(line, spans)
            rows = []
            i += 2
            while i < len(lines) and lines[i].strip():
                cells = [_coerce(c) for c in _slice_row(lines[i], spans)]
                rows.append(dict(zip(columns, cells, strict=True)))
                i += 1
            tables.append({"caption": caption, "columns": columns, "rows": rows})
            caption = None
        else:
            if line.strip():
                caption = line.strip()
            i += 1
    return tables


def runtime_meta(duration_s: float | None = None) -> dict:
    """The metadata block stamped into every BENCH twin.

    Records the producing run's wall-clock duration (seconds) and the
    python/numpy versions — enough to interpret throughput numbers and
    spot environment drift between otherwise byte-identical reruns.
    """
    if duration_s is None:
        duration_s = time.perf_counter() - _T0
    return {
        "duration_s": round(float(duration_s), 3),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def emit(
    name: str,
    title: str,
    table: str,
    metrics: dict | None = None,
    registry=None,
    duration_s: float | None = None,
) -> None:
    """Print an experiment table and persist both result files.

    Args:
        name: Experiment id, e.g. ``"E12_faults"``; names the files.
        title: Human-readable headline written atop the .txt file.
        table: The ``format_table`` text (captions allowed between
            tables); parsed into the JSON twin's ``tables`` field.
        metrics: Optional structured per-scenario values the bench
            computed directly (richer types than the rendered cells).
        registry: Optional :class:`repro.obs.MetricsRegistry`; when
            given, its full :func:`repro.obs.snapshot` is embedded under
            ``"observability"``.
        duration_s: Wall-clock seconds the bench took; defaults to the
            elapsed time since this module was imported.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"{title}\n{table}\n"
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)

    doc: dict = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "title": title,
        "tables": parse_tables(table),
        "meta": runtime_meta(duration_s),
    }
    if metrics is not None:
        doc["metrics"] = metrics
    if registry is not None:
        doc["observability"] = snapshot(registry)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )


def standard_adversary_mix():
    """The r = 8 collector mix used across experiments: 2 honest, 6 bad."""
    return [
        HonestBehavior(),
        HonestBehavior(),
        MisreportBehavior(0.4),
        ConcealBehavior(0.4),
        AlwaysInvertBehavior(),
        AlwaysInvertBehavior(),
        MisreportBehavior(0.8),
        ConcealBehavior(0.8),
    ]
