"""Shared helpers for the benchmark harness.

Each bench regenerates one experiment from DESIGN.md's index (E1-E11),
prints the paper-style table, and writes it under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from disk.
Timing is reported by pytest-benchmark; the tables are the scientific
output.
"""

from __future__ import annotations

import pathlib

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    HonestBehavior,
    MisreportBehavior,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, title: str, table: str) -> None:
    """Print an experiment table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = f"{title}\n{table}\n"
    print()
    print(text)
    (RESULTS_DIR / f"{name}.txt").write_text(text)


def standard_adversary_mix():
    """The r = 8 collector mix used across experiments: 2 honest, 6 bad."""
    return [
        HonestBehavior(),
        HonestBehavior(),
        MisreportBehavior(0.4),
        ConcealBehavior(0.4),
        AlwaysInvertBehavior(),
        AlwaysInvertBehavior(),
        MisreportBehavior(0.8),
        ConcealBehavior(0.8),
    ]
