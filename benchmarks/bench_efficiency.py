"""E5 — the efficiency claim: larger f => fewer validations => faster.

Sweeps f over the full protocol engine and reports, per transaction:
governor validations (the protocol's dominant cost), wall-clock time,
unchecked rate, and mistakes.  The paper's claim: f tunes a smooth
efficiency/correctness trade-off, with mistakes staying O(sqrt(T))
thanks to the reputation mechanism.
"""

from __future__ import annotations

import time

from _helpers import emit
from repro.agents.behaviors import AlwaysInvertBehavior, MisreportBehavior
from repro.analysis.metrics import SweepTable, summarize_run
from repro.analysis.reporting import format_sweep
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload

ROUNDS = 25
PER_ROUND = 24


def _run_at_f(f: float, seed: int = 0):
    topo = Topology.regular(l=12, n=6, m=4, r=3)
    behaviors = {
        "c0": MisreportBehavior(0.5),
        "c1": AlwaysInvertBehavior(),
    }
    engine = ProtocolEngine(
        topo, ProtocolParams(f=f), behaviors=behaviors, seed=seed,
        leader_rotation=True,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=seed + 1)
    start = time.perf_counter()
    for _ in range(ROUNDS):
        engine.run_round(workload.take(PER_ROUND))
    elapsed = time.perf_counter() - start
    engine.finalize()
    return engine, elapsed


def _f_sweep_table() -> str:
    table = SweepTable(parameter="f")
    for f in [0.1, 0.3, 0.5, 0.7, 0.9]:
        engine, elapsed = _run_at_f(f)
        summary = summarize_run(engine)
        n_tx = summary.transactions
        table.add(
            f,
            {
                "validations/tx": round(summary.total_validations / (n_tx * 4), 4),
                "unchecked rate": round(summary.mean_unchecked_rate, 4),
                "mistakes": float(summary.total_mistakes),
                "ms/tx": round(1000.0 * elapsed / n_tx, 3),
            },
        )
    text = format_sweep(table)
    # The headline check: validation cost strictly decreases in f.
    checks = table.column("validations/tx")
    text += (
        "\n\nvalidation cost decreasing in f: "
        + ("yes" if all(a >= b for a, b in zip(checks, checks[1:])) else "NO")
    )
    return text


def test_e5_f_sweep(benchmark):
    """E5: the f efficiency/correctness trade-off table."""
    table = benchmark.pedantic(_f_sweep_table, rounds=1, iterations=1)
    emit(
        "E5_efficiency",
        "E5: efficiency tuning with f (4 governors, 600 tx, 2 dishonest collectors)",
        table,
    )


def test_e5_round_throughput(benchmark):
    """Timing target: one full protocol round at f = 0.5."""
    topo = Topology.regular(l=12, n=6, m=4, r=3)
    engine = ProtocolEngine(
        topo, ProtocolParams(f=0.5), seed=3, leader_rotation=True
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=4)

    def one_round():
        engine.run_round(workload.take(PER_ROUND))

    benchmark(one_round)
