"""E15 — crash-restart recovery cost of the durable segment log.

Grows standalone durable chains to several lengths, then measures what
a restart pays: the wall-clock :func:`repro.storage.recover` replay,
with and without Merkle checkpoints.  Checkpoint compaction bounds the
replay to the post-checkpoint window, so recovery time is flat in
chain length; the no-checkpoint configuration replays from genesis and
grows linearly — that contrast is the headline table.

A seeded torn-tail crash (``DiskFaultPlan``'s ``torn_record``) rides
along at the largest scale: the bench asserts the corruption is
*detected*, the recovered state is a verified prefix of the original
chain, and a peer fill converges back to the bit-identical tip.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_recovery.py          # full scale
    PYTHONPATH=src python benchmarks/bench_recovery.py --quick  # CI smoke

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -q
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import time

if __name__ == "__main__":  # script mode: make _helpers + repro importable
    _here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(_here))
    _src = _here.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from _helpers import emit

from repro.analysis.reporting import format_table
from repro.crypto.signatures import SigningKey
from repro.faults import DiskFaultPlan
from repro.ledger.block import Block
from repro.ledger.transaction import CheckStatus, Label, TxRecord, make_signed_transaction
from repro.obs import MetricsRegistry
from repro.storage import StorageConfig, open_durable_store, recover
from repro.storage.durable import storage_metrics

KEY = SigningKey(owner="p0", secret=b"\x44" * 32)
SEED = 11
CHECKPOINT_INTERVAL = 16
SEGMENT_BYTES = 16 * 1024
TX_PER_BLOCK = 4

#: Work scales.  ``quick`` is the CI smoke configuration: same code
#: paths, fault, and files, small enough to finish in seconds.
SCALES = {
    "full": dict(lengths=(200, 400)),
    "quick": dict(lengths=(60,)),
}


def _build_chain(directory, n: int, checkpoint_interval: int) -> list[Block]:
    """Commit ``n`` deterministic blocks through a durable store."""
    store, _ = open_durable_store(
        StorageConfig(
            directory=directory,
            checkpoint_interval=checkpoint_interval,
            segment_bytes=SEGMENT_BYTES,
            fsync=False,  # measuring replay, not the OS page cache
        )
    )
    nonce = iter(range(10 * n * TX_PER_BLOCK))
    prev = store.tip_hash()
    blocks = []
    for serial in range(1, n + 1):
        records = tuple(
            TxRecord(
                tx=make_signed_transaction(
                    KEY, f"b{serial}.{i}", 1.0, nonce=next(nonce)
                ),
                label=Label.VALID,
                status=CheckStatus.CHECKED,
            )
            for i in range(TX_PER_BLOCK)
        )
        block = Block(
            serial=serial, tx_list=records, prev_hash=prev,
            proposer="g0", round_number=serial,
        )
        store.publish(block)
        blocks.append(block)
        prev = block.hash()
    return blocks


def _measure(directory, blocks: list[Block]) -> dict:
    """One timed recovery pass over an existing ledger directory."""
    t0 = time.perf_counter()
    report = recover(directory)
    elapsed = time.perf_counter() - t0
    by_serial = {b.serial: b for b in blocks}
    prefix_ok = all(
        b.hash() == by_serial[b.serial].hash() for b in report.blocks
    ) and (
        report.base_serial == 0
        or report.base_hash == by_serial[report.base_serial].hash()
    )
    tip_ok = (
        report.height == len(blocks)
        and (report.blocks[-1].hash() if report.blocks else report.base_hash)
        == blocks[-1].hash()
    )
    return {
        "replayed": len(report.blocks),
        "base_serial": report.base_serial,
        "height": report.height,
        "corruptions": [c.kind for c in report.corruptions],
        "clean": report.clean,
        "prefix_ok": prefix_ok,
        "tip_ok": tip_ok,
        "replay_ms": round(elapsed * 1e3, 3),
        "blocks_per_s": round(len(report.blocks) / elapsed, 1) if report.blocks else 0.0,
    }


def run_case(n: int, checkpoint_interval: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        blocks = _build_chain(tmp, n, checkpoint_interval)
        stats = _measure(tmp, blocks)
    stats.update(blocks=n, checkpoint_interval=checkpoint_interval, fault="none")
    stats["ok"] = stats["clean"] and stats["prefix_ok"] and stats["tip_ok"]
    return stats


def run_torn_tail_case(n: int, registry: MetricsRegistry | None = None) -> dict:
    """Crash mid-append at scale ``n``: detect, truncate, peer-fill."""
    with tempfile.TemporaryDirectory(prefix="bench-recovery-torn-") as tmp:
        blocks = _build_chain(tmp, n, CHECKPOINT_INTERVAL)
        applied = DiskFaultPlan(seed=SEED).with_fault("torn_record").apply(tmp)
        stats = _measure(tmp, blocks)
        # Degrade-and-rejoin: reopen the scarred directory, pull the
        # missing suffix from an (in-memory) peer copy of the chain.
        store, report = open_durable_store(
            StorageConfig(
                directory=tmp,
                checkpoint_interval=CHECKPOINT_INTERVAL,
                segment_bytes=SEGMENT_BYTES,
                fsync=False,
            ),
            obs=registry,
        )
        peer_filled = 0
        for block in blocks[store.height :]:
            store.publish(block)
            peer_filled += 1
        if registry is not None:
            handles = storage_metrics(registry)
            handles["recovered"].labels(source="peer").inc(peer_filled)
        converged = store.tip_hash() == blocks[-1].hash()
    stats.update(
        blocks=n,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        fault="torn_record" if applied else "none",
        detected="torn-tail" in stats["corruptions"],
        peer_filled=peer_filled,
        converged=converged,
    )
    stats["ok"] = (
        bool(applied)
        and stats["detected"]
        and stats["prefix_ok"]
        and not stats["clean"]
        and converged
    )
    return stats


def run_suite(quick: bool = False) -> dict:
    """Run the E15 sweep and emit both result twins; returns metrics."""
    scale = SCALES["quick" if quick else "full"]
    t0 = time.perf_counter()
    registry = MetricsRegistry()

    sweep = []
    for n in scale["lengths"]:
        sweep.append(run_case(n, checkpoint_interval=0))  # genesis replay
        sweep.append(run_case(n, checkpoint_interval=CHECKPOINT_INTERVAL))
    torn = run_torn_tail_case(scale["lengths"][-1], registry=registry)

    # Checkpoints bound the replay window regardless of chain length.
    bounded = all(
        s["replayed"] <= 2 * CHECKPOINT_INTERVAL
        for s in sweep
        if s["checkpoint_interval"]
    )
    all_ok = bounded and all(s["ok"] for s in sweep) and torn["ok"]

    rows = [
        (
            s["blocks"], s["checkpoint_interval"] or "off", s["fault"],
            s["base_serial"], s["replayed"], f"{s['replay_ms']:.1f}",
            ",".join(s["corruptions"]) or "-", s["ok"],
        )
        for s in [*sweep, torn]
    ]
    table = format_table(
        ["blocks", "ckpt every", "fault", "base", "replayed",
         "replay ms", "corruptions", "ok"],
        rows,
    )
    table += (
        f"\ncheckpoints bound replay to <= {2 * CHECKPOINT_INTERVAL} blocks "
        f"at every length: {'yes' if bounded else 'NO'}\n"
        f"torn-tail crash detected and peer-fill converged to the "
        f"original tip: {'yes' if torn['ok'] else 'NO'}\n"
    )
    metrics = {
        "recovery_sweep": sweep,
        "torn_tail": torn,
        "checkpoint_replay_bounded": bounded,
        "all_ok": all_ok,
    }
    emit(
        "E15_recovery",
        "E15 — crash-restart recovery: segment-log replay with and "
        "without Merkle checkpoints, plus a seeded torn-tail crash",
        table,
        metrics=metrics,
        registry=registry,
        duration_s=time.perf_counter() - t0,
    )
    return metrics


def test_recovery_suite(benchmark):
    """pytest-benchmark entry point (full scale, like the other benches)."""
    metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert metrics["checkpoint_replay_bounded"]
    assert metrics["torn_tail"]["ok"]
    assert metrics["all_ok"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke scale (same code paths, fault, and files)",
    )
    args = parser.parse_args(argv)
    metrics = run_suite(quick=args.quick)
    if not metrics["all_ok"]:
        print("FATAL: E15 acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())