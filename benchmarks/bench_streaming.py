"""E18 — streaming population scaling: memory vs registered universe.

One seeded open-loop streaming run (Poisson arrivals, uniform provider
selection over the virtual universe) is committed at three registered
population scales — 10^4, 10^5 and 10^6 providers — with the same
arrival rate.  Because providers are *virtual* (instantiated on first
arrival, retired on inactivity) and reputation rows are *sparse*
(default + touched overrides), the resident state should track the
**active set**, which is rate-bound and scale-independent — not the
universe.

Acceptance criteria asserted directly:

* per-scale traced-heap peak (``tracemalloc``, reset between scales) at
  10^6 providers stays within ``SUBLINEAR_FACTOR``x of the 10^4 peak,
  while the universe grew 100x — the sublinearity criterion;
* the active set stays rate-bound (within ``ACTIVE_SLACK`` of each
  other across scales);
* every run finalises with a clean safety audit;
* two identically-seeded small runs commit bit-identical ledger tips
  (streaming determinism).

The table reports committed transactions, throughput, peak active /
touched reputation rows, and the traced-heap peak per scale; process
peak RSS (monotone high-water, so only meaningful once) is recorded in
the JSON twin.  ``--quick`` runs the 10^5 scale only and asserts the
CI peak-RSS ceiling.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_streaming.py           # E18 full
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick   # CI smoke

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py -q
"""

from __future__ import annotations

import pathlib
import resource
import sys
import time
import tracemalloc

if __name__ == "__main__":  # script mode: make _helpers + repro importable
    _here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(_here))
    _src = _here.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from _helpers import emit

import pytest

from repro.analysis.reporting import format_table
from repro.core.params import ProtocolParams
from repro.obs import MetricsRegistry
from repro.streaming import StreamingSession, StreamingWorkload, VirtualUniverse
from repro.workloads.arrivals import PoissonArrivals

SEED = 18
SCALES_FULL = (10_000, 100_000, 1_000_000)
SCALES_QUICK = (100_000,)
ROUNDS = {"quick": 8, "full": 12}
ARRIVAL_RATE = 60.0

#: 10^6 / 10^4 universe is 100x; a linear structure would blow the
#: traced heap up accordingly.  Active-set-bound state should stay
#: nearly flat — 8x absorbs allocator noise while still failing any
#: linear regression by an order of magnitude.
SUBLINEAR_FACTOR = 8.0
#: Peak active sets across scales may differ only by sampling noise
#: (uniform selection collides less in bigger universes).
ACTIVE_SLACK = 0.25
#: CI ceiling for --quick at 10^5 providers: far above the interpreter
#: + numpy baseline, far below any universe-proportional blow-up.
QUICK_RSS_CEILING_BYTES = 512 * 1024 * 1024


def _peak_rss_bytes() -> int:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


def _run_scale(universe: int, rounds: int, seed: int = SEED) -> dict:
    """One streaming run at ``universe`` registered providers."""
    obs = MetricsRegistry()
    tracemalloc.start()
    t0 = time.perf_counter()
    virtual = VirtualUniverse(universe=universe, n=8, m=4, r=4)
    workload = StreamingWorkload(
        virtual,
        arrivals=PoissonArrivals(ARRIVAL_RATE, seed=seed),
        validity="bernoulli",
        selection="uniform",
        seed=seed,
        p_valid=0.8,
    )
    session = StreamingSession(
        virtual,
        ProtocolParams(f=0.5, b_limit=96),
        workload=workload,
        seed=seed,
        retirement_rounds=6,
        obs=obs,
    )
    session.run(rounds)
    session.finalize()
    wall = time.perf_counter() - t0
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    m = session.metrics
    return {
        "universe": universe,
        "rounds": m.rounds,
        "committed": m.transactions,
        "tx_per_s": m.transactions / wall if wall > 0 else 0.0,
        "peak_active": m.peak_active,
        "instantiations": m.instantiations,
        "retirements": m.retirements,
        "peak_backlog": m.peak_backlog,
        "touched_rows": session.touched_rows(),
        "traced_peak_bytes": traced_peak,
        "peak_rss_bytes": _peak_rss_bytes(),
        "tip": session.ledgers()[0].tip_hash().hex(),
        "audit_clean": (
            session.audit_report is None
            or not session.audit_report.violations
        ),
        "wall_s": wall,
    }


def _determinism_check(rounds: int = 4) -> bool:
    """Two identically-seeded runs must commit identical tips."""
    tips = []
    for _ in range(2):
        run = _run_scale(10_000, rounds, seed=SEED + 1)
        tips.append(run["tip"])
    return tips[0] == tips[1]


def run_suite(quick: bool = False) -> dict:
    """Run the E18 sweep and emit both result twins; returns metrics."""
    t0 = time.perf_counter()
    scales = SCALES_QUICK if quick else SCALES_FULL
    rounds = ROUNDS["quick" if quick else "full"]

    runs = [_run_scale(universe, rounds) for universe in scales]
    deterministic = _determinism_check()

    base, top = runs[0], runs[-1]
    growth = top["traced_peak_bytes"] / max(base["traced_peak_bytes"], 1)
    scale_ratio = top["universe"] / base["universe"]
    sublinear = quick or growth <= SUBLINEAR_FACTOR
    actives = [r["peak_active"] for r in runs]
    active_bound = (
        max(actives) - min(actives) <= ACTIVE_SLACK * max(actives)
    )
    audits_clean = all(r["audit_clean"] for r in runs)
    rss_ok = (not quick) or runs[0]["peak_rss_bytes"] <= QUICK_RSS_CEILING_BYTES
    all_ok = sublinear and active_bound and audits_clean and deterministic and rss_ok

    rows = [
        (
            f"{r['universe']:.0e}", r["rounds"], r["committed"],
            f"{r['tx_per_s']:.1f}", r["peak_active"], r["retirements"],
            r["touched_rows"],
            f"{r['traced_peak_bytes'] / 1024 / 1024:.2f}",
            r["audit_clean"],
        )
        for r in runs
    ]
    table = format_table(
        ["universe", "rounds", "committed", "tx/s", "peak active",
         "retired", "touched rows", "heap peak MiB", "audit clean"],
        rows,
    )
    table += (
        f"\nopen-loop Poisson({ARRIVAL_RATE:.0f}/round), uniform selection; "
        f"virtual identities retire after 6 idle rounds.\n"
        f"traced-heap growth {growth:.2f}x across a {scale_ratio:.0f}x "
        f"universe (sublinear: {'yes' if sublinear else 'NO'}); "
        f"identically-seeded tips bit-identical: "
        f"{'yes' if deterministic else 'NO'}\n"
    )

    metrics = {
        "runs": runs,
        "traced_peak_growth": growth,
        "universe_scale_ratio": scale_ratio,
        "sublinear": sublinear,
        "active_set_rate_bound": active_bound,
        "audits_clean": audits_clean,
        "deterministic": deterministic,
        "rss_ceiling_bytes": QUICK_RSS_CEILING_BYTES if quick else None,
        "rss_ok": rss_ok,
        "all_ok": all_ok,
    }
    emit(
        "E18_streaming",
        "E18 — streaming population scaling: active-set-bound memory "
        "across 10^4..10^6 registered providers",
        table,
        metrics=metrics,
        duration_s=time.perf_counter() - t0,
    )
    return metrics


def test_streaming_suite(benchmark):
    """pytest-benchmark entry point (quick scale; the full 10^6 sweep is
    the script/CI path)."""
    metrics = benchmark.pedantic(run_suite, kwargs={"quick": True},
                                 rounds=1, iterations=1)
    assert metrics["audits_clean"]
    assert metrics["deterministic"]
    assert metrics["all_ok"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="10^5 scale only with the CI peak-RSS ceiling assertion",
    )
    args = parser.parse_args(argv)
    metrics = run_suite(quick=args.quick)
    if not metrics["all_ok"]:
        print("FATAL: E18 acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
