"""E8 — baseline comparison: the reputation mechanism vs alternatives.

All policies face identical adversary streams.  The claims to hold:
* accuracy within a whisker of check-all at a fraction of its cost;
* far fewer mistakes than no-reputation (uniform) selection;
* robust where majority vote collapses (adversarial majority) and
  where static trust collapses (sleepers).
"""

from __future__ import annotations

from _helpers import emit
from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    HonestBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.analysis.reporting import format_table
from repro.baselines import (
    CheckAllPolicy,
    CheckNonePolicy,
    MajorityVotePolicy,
    PolicySimulation,
    ReputationPolicy,
    StaticTrustPolicy,
    UniformSelectionPolicy,
)
from repro.core.params import ProtocolParams

HORIZON = 3000
COLLECTOR_IDS = [f"c{i}" for i in range(8)]

MIXES = {
    "mild noise (6H/2M)": lambda: [HonestBehavior()] * 6 + [MisreportBehavior(0.4)] * 2,
    "adversarial majority (2H/6I)": lambda: [HonestBehavior()] * 2
    + [AlwaysInvertBehavior()] * 6,
    "sleepers (2H/6S)": lambda: [HonestBehavior()] * 2
    + [SleeperBehavior(150) for _ in range(6)],
}


def _policies(params: ProtocolParams):
    return {
        "reputation (paper)": lambda: ReputationPolicy(
            params=params, collector_ids=COLLECTOR_IDS
        ),
        "check-all": lambda: CheckAllPolicy(),
        "check-none": lambda: CheckNonePolicy(),
        "uniform (no reputation)": lambda: UniformSelectionPolicy(params=params),
        "majority vote": lambda: MajorityVotePolicy(),
        "static trust (flat)": lambda: StaticTrustPolicy(
            params=params, trust={c: 1.0 for c in COLLECTOR_IDS}
        ),
    }


def _baseline_table() -> tuple[str, dict]:
    params = ProtocolParams(f=0.7)
    rows = []
    cells: dict[tuple[str, str], tuple[int, int]] = {}
    for mix_name, mix_factory in MIXES.items():
        for policy_name, policy_factory in _policies(params).items():
            sim = PolicySimulation(mix_factory(), horizon=HORIZON, seed=21)
            stats = sim.run(policy_factory(), policy_seed=22)
            cells[(mix_name, policy_name)] = (stats.mistakes, stats.validations)
            rows.append(
                (
                    mix_name,
                    policy_name,
                    stats.mistakes,
                    stats.validations,
                    f"{stats.mistake_rate:.4f}",
                    f"{stats.check_rate:.3f}",
                )
            )
    table = format_table(
        ["adversary mix", "policy", "mistakes", "validations", "mistake rate", "check rate"],
        rows,
    )
    return table, cells


def test_e8_baseline_comparison(benchmark):
    """E8: mistakes and validation cost across policies x adversary mixes."""
    table, cells = benchmark.pedantic(_baseline_table, rounds=1, iterations=1)
    emit(
        "E8_baselines",
        f"E8: screening policies on identical {HORIZON}-tx streams (f = 0.7)",
        table,
    )
    adversarial = "adversarial majority (2H/6I)"
    rep_mistakes, rep_checks = cells[(adversarial, "reputation (paper)")]
    _unif_m, _ = cells[(adversarial, "uniform (no reputation)")]
    maj_m, _ = cells[(adversarial, "majority vote")]
    _all_m, all_checks = cells[(adversarial, "check-all")]
    # Who wins, by roughly what factor (the shape the paper implies):
    assert rep_mistakes < _unif_m            # reputation beats no-reputation
    assert rep_mistakes < maj_m / 10         # majority collapses vs adversarial majority
    assert rep_checks < all_checks           # and is cheaper than check-all
    sleeper = "sleepers (2H/6S)"
    rep_s, _ = cells[(sleeper, "reputation (paper)")]
    static_s, _ = cells[(sleeper, "static trust (flat)")]
    assert rep_s < static_s                  # static trust cannot demote sleepers
