"""E14/E16 — throughput scaling of the sharded deployment.

**E14 (sim-time).**  Fixes the deployment totals (l=24 providers, n=8
collectors, m=8 governors, r=2) and splits them across S ∈ {1, 2, 4}
shards driven by one :class:`~repro.sharding.ShardCoordinator` under
saturating offered load.  Because the shards' rounds overlap on the
shared simulator clock, S shards commit up to ``S * b_limit`` records
in the sim-time one shard commits ``b_limit`` — the table reports the
realised aggregate origin-tx throughput and its speedup over S=1.

**E16 (wall-clock, ``--workers N``).**  The same fixed workload swept
over S ∈ {1, 2, 4} × execution backends {serial, N-process}: the
parallel backend (:mod:`repro.parallel`) hosts each shard's engine in
its own spawned worker, so the sim-time scaling of E14 becomes
*wall-clock* scaling on multi-core hosts.  The table reports measured
wall-clock throughput of the drive loop (worker spawn/teardown
excluded, reported separately) and asserts that the parallel ledger
tips are **bit-identical** to the serial ones for every S.  The ≥2x
speedup assertion is enforced only when the host actually has ≥4 CPU
cores (recorded in the JSON twin); tip identity and a clean
cross-shard audit are asserted unconditionally.

Every configuration runs under an active fault plan (link loss +
duplication on every shard, plus a governor crash/recovery on shard 0)
with 15% cross-shard traffic and epoch reshuffles every 4 super-rounds,
so the headline numbers carry the full relay/retry/migration overhead.
The bench asserts the acceptance criteria directly:

* S=4 achieves at least 2x the aggregate committed-tx throughput of
  S=1 at equal totals (E14, sim-time);
* the cross-shard auditor records zero atomicity violations (no
  receipt half-applied or replayed) despite the faults;
* an identically seeded repeat of the S=4 run is bit-identical
  (chain tips, committed counts, sim clock), and under ``--workers``
  the parallel backend reproduces the serial tips exactly (E16).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_shards.py              # E14 full
    PYTHONPATH=src python benchmarks/bench_shards.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_shards.py --workers 4  # E16 full

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_shards.py -q
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

if __name__ == "__main__":  # script mode: make _helpers + repro importable
    _here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(_here))
    _src = _here.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from _helpers import emit

from repro.analysis.reporting import format_table
from repro.core.params import ProtocolParams
from repro.faults.plan import FaultPlan, LinkFaultSpec
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.sharding import ShardCoordinator
from repro.workloads.generator import BernoulliWorkload
from repro.workloads.xshard import CrossShardWorkload

#: Deployment-wide totals, identical for every shard count.
L, N, M, R = 24, 8, 8, 2
PARAMS = ProtocolParams(f=0.5, delta=0.2, b_limit=16)
SHARD_COUNTS = (1, 2, 4)
P_CROSS = 0.15
EPOCH_ROUNDS = 4
SEED = 11
#: Specs offered per super-round — saturates even the S=4 configuration
#: (4 shards x b_limit=16 = 64 slots), so every block packs full.
OFFERED = 128

#: Work scales.  ``quick`` is the CI smoke configuration: same code
#: paths, faults, and files, small enough to finish in seconds.
SCALES = {
    "full": dict(rounds=12),
    "quick": dict(rounds=6),
}


def _install_faults(coordinator, sharded, seed: int) -> None:
    """The E14 fault plan: loss + duplication everywhere, one crash."""
    for k in range(sharded.num_shards):
        plan = FaultPlan(seed=seed + 100 + k).with_default_link(
            LinkFaultSpec(loss=0.02, duplicate=0.05)
        )
        if k == 0:
            victim = sharded.shards[0].governors[-1]
            plan.with_crash(victim, at=0.8, recover_at=1.6)
        coordinator.install_faults(k, plan)


def run_config(
    shards: int,
    rounds: int,
    seed: int = SEED,
    registry: MetricsRegistry | None = None,
) -> dict:
    """One sharded deployment at fixed totals; returns its stats."""
    sharded = Topology.sharded(l=L, n=N, m=M, r=R, shards=shards, seed=seed)
    coordinator = ShardCoordinator(
        sharded,
        PARAMS,
        seed=seed,
        epoch_rounds=EPOCH_ROUNDS,
        resilience=True,
        obs=registry,
    )
    _install_faults(coordinator, sharded, seed)
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner,
        sharded.provider_shard,
        p_cross=P_CROSS if shards > 1 else 0.0,
        seed=seed + 2,
    )
    minted = 0
    for _ in range(rounds):
        coordinator.submit(workload.take(OFFERED))
        result = coordinator.run_super_round()
        minted += result.receipts_minted
    report = coordinator.finalize()
    return {
        "shards": shards,
        "committed": coordinator.committed_total,
        "sim_seconds": round(coordinator.sim.now, 6),
        "throughput": round(coordinator.throughput(), 4),
        "receipts_minted": minted,
        "receipts_pending": len(coordinator.auditor.pending()),
        "migrations": sum(len(m) for _, _, m in coordinator.reshuffle_log),
        "atomicity_violations": len(coordinator.auditor.atomicity_violations()),
        "audit_clean": report.clean,
        "tips": coordinator.tip_hashes(),
    }


def run_suite(quick: bool = False) -> dict:
    """Run the E14 sweep and emit both result twins; returns metrics."""
    scale = SCALES["quick" if quick else "full"]
    t0 = time.perf_counter()

    registry = MetricsRegistry()
    sweep = []
    for shards in SHARD_COUNTS:
        stats = run_config(
            shards, scale["rounds"],
            registry=registry if shards == SHARD_COUNTS[-1] else None,
        )
        sweep.append(stats)

    base = sweep[0]["throughput"]
    for stats in sweep:
        stats["speedup"] = round(stats["throughput"] / base, 4)

    # Determinism: an identically seeded repeat of the S=4 run must be
    # bit-identical — same chain tips, same counts, same clock.
    repeat = run_config(SHARD_COUNTS[-1], scale["rounds"])
    reference = sweep[-1]
    deterministic = all(
        repeat[key] == reference[key]
        for key in ("committed", "sim_seconds", "tips", "receipts_minted")
    )

    all_ok = (
        deterministic
        and sweep[-1]["speedup"] >= 2.0
        and all(s["audit_clean"] for s in sweep)
        and all(s["atomicity_violations"] == 0 for s in sweep)
        and all(s["receipts_pending"] == 0 for s in sweep)
    )

    rows = [
        (
            s["shards"], s["committed"], f"{s['sim_seconds']:.2f}",
            f"{s['throughput']:.2f}", f"{s['speedup']:.2f}x",
            s["receipts_minted"], s["migrations"],
            s["atomicity_violations"], s["audit_clean"],
        )
        for s in sweep
    ]
    table = format_table(
        ["shards", "committed", "sim s", "tx/s", "speedup",
         "receipts", "migrations", "atomicity viol.", "audit clean"],
        rows,
    )
    table += (
        f"\nfault plan active on every run: link loss 2%, duplication 5%, "
        f"governor crash/recovery on shard 0\n"
        f"seeded S=4 repeat bit-identical: "
        f"{'yes' if deterministic else 'NO'}\n"
    )
    metrics = {
        "shard_sweep": [
            {k: v for k, v in s.items() if k != "tips"} for s in sweep
        ],
        "speedup_s4_vs_s1": sweep[-1]["speedup"],
        "deterministic": deterministic,
        "all_ok": all_ok,
    }
    emit(
        "E14_shards",
        "E14 — sharded aggregate throughput at fixed totals "
        "(l=24, n=8, m=8), faults + cross-shard traffic on",
        table,
        metrics=metrics,
        registry=registry,
        duration_s=time.perf_counter() - t0,
    )
    return metrics


def run_wallclock_config(
    shards: int,
    workers: int,
    rounds: int,
    seed: int = SEED,
    registry: MetricsRegistry | None = None,
) -> dict:
    """One E16 deployment: fixed workload, measured in wall-clock.

    ``workers=1`` runs the serial in-process backend (the single-core
    baseline); ``workers>1`` spawns that many shard worker processes.
    The drive loop (submit + super-rounds + finalize) is timed; backend
    spawn/teardown is reported separately as ``setup_seconds``.
    """
    sharded = Topology.sharded(l=L, n=N, m=M, r=R, shards=shards, seed=seed)
    t_setup = time.perf_counter()
    coordinator = ShardCoordinator(
        sharded,
        PARAMS,
        seed=seed,
        epoch_rounds=EPOCH_ROUNDS,
        resilience=True,
        obs=registry,
        workers=workers if workers > 1 else None,
    )
    setup_seconds = time.perf_counter() - t_setup
    _install_faults(coordinator, sharded, seed)
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner,
        sharded.provider_shard,
        p_cross=P_CROSS if shards > 1 else 0.0,
        seed=seed + 2,
    )
    t0 = time.perf_counter()
    for _ in range(rounds):
        coordinator.submit(workload.take(OFFERED))
        coordinator.run_super_round()
    report = coordinator.finalize()
    wall_seconds = time.perf_counter() - t0
    stats = {
        "shards": shards,
        "workers": workers,
        "backend": coordinator.backend.kind,
        "committed": coordinator.committed_total,
        "wall_seconds": round(wall_seconds, 4),
        "setup_seconds": round(setup_seconds, 4),
        "wall_throughput": round(coordinator.committed_total / wall_seconds, 2),
        "sim_throughput": round(coordinator.throughput(), 2),
        "atomicity_violations": len(coordinator.auditor.atomicity_violations()),
        "audit_clean": report.clean,
        "tips": coordinator.tip_hashes(),
    }
    coordinator.close()
    return stats


def run_e16_suite(workers: int, quick: bool = False) -> dict:
    """E16: wall-clock serial-vs-parallel sweep; emits the result twins.

    For every S in the shard sweep, runs the identical seeded workload
    on the serial backend and on a ``min(workers, S)``-process parallel
    backend, asserting bit-identical chain tips between the two.  The
    ≥2x wall-clock speedup criterion applies to the largest sweep point
    and is enforced only on hosts with ≥4 CPU cores — a single-core
    container cannot exhibit multi-core scaling, so there the bench
    still validates identity, audit cleanliness, and the IPC machinery,
    and records ``cpu_count`` in the JSON twin for the reader.
    """
    scale = SCALES["quick" if quick else "full"]
    cpus = os.cpu_count() or 1
    t0 = time.perf_counter()

    registry = MetricsRegistry()
    sweep = []
    tips_identical = True
    for shards in SHARD_COUNTS:
        nworkers = min(workers, shards)
        serial = run_wallclock_config(shards, 1, scale["rounds"])
        row = {**serial, "parallel": None}
        if nworkers > 1:
            parallel = run_wallclock_config(
                shards, nworkers, scale["rounds"],
                registry=registry if shards == SHARD_COUNTS[-1] else None,
            )
            identical = parallel["tips"] == serial["tips"] and (
                parallel["committed"] == serial["committed"]
            )
            tips_identical = tips_identical and identical
            row["parallel"] = {**parallel, "tips_match_serial": identical}
        sweep.append(row)

    top = sweep[-1]
    speedup = (
        round(top["parallel"]["wall_throughput"] / top["wall_throughput"], 4)
        if top["parallel"] is not None
        else 1.0
    )
    # A 1-core host cannot speed up by adding processes; the scaling
    # claim is only falsifiable with >= 4 cores under S=4.
    speedup_enforced = cpus >= 4 and top["parallel"] is not None
    speedup_ok = speedup >= 2.0 if speedup_enforced else True

    all_ok = (
        tips_identical
        and speedup_ok
        and all(s["audit_clean"] for s in sweep)
        and all(
            s["parallel"] is None or s["parallel"]["audit_clean"] for s in sweep
        )
        and all(s["atomicity_violations"] == 0 for s in sweep)
    )

    rows = []
    for s in sweep:
        rows.append((
            s["shards"], 1, "serial", s["committed"],
            f"{s['wall_seconds']:.3f}", f"{s['wall_throughput']:.0f}",
            "1.00x", "—", s["audit_clean"],
        ))
        p = s["parallel"]
        if p is not None:
            rows.append((
                p["shards"], p["workers"], "parallel", p["committed"],
                f"{p['wall_seconds']:.3f}", f"{p['wall_throughput']:.0f}",
                f"{p['wall_throughput'] / s['wall_throughput']:.2f}x",
                "yes" if p["tips_match_serial"] else "NO",
                p["audit_clean"],
            ))
    table = format_table(
        ["shards", "workers", "backend", "committed", "wall s",
         "wall tx/s", "speedup", "tips=serial", "audit clean"],
        rows,
    )
    table += (
        f"\nhost cpu cores: {cpus} — the >=2x wall-clock criterion is "
        f"{'ENFORCED' if speedup_enforced else 'not enforced (needs >=4 cores)'}\n"
        f"identical seeded workload and fault plan on both backends; "
        f"speedup compares the drive loop only (worker spawn excluded)\n"
        f"parallel tips bit-identical to serial: "
        f"{'yes' if tips_identical else 'NO'}\n"
    )
    metrics = {
        "cpu_count": cpus,
        "workers_requested": workers,
        "wallclock_sweep": [
            {
                **{k: v for k, v in s.items() if k not in ("tips", "parallel")},
                "parallel": (
                    None
                    if s["parallel"] is None
                    else {
                        k: v for k, v in s["parallel"].items() if k != "tips"
                    }
                ),
            }
            for s in sweep
        ],
        "wall_speedup_top": speedup,
        "speedup_enforced": speedup_enforced,
        "speedup_ok": speedup_ok,
        "tips_identical": tips_identical,
        "all_ok": all_ok,
    }
    emit(
        "E16_shards_parallel",
        "E16 — wall-clock shard throughput: serial vs multi-process "
        "backends at identical seeds (bit-identical ledgers)",
        table,
        metrics=metrics,
        registry=registry,
        duration_s=time.perf_counter() - t0,
    )
    return metrics


def test_shards_suite(benchmark):
    """pytest-benchmark entry point (full scale, like the other benches)."""
    metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert metrics["speedup_s4_vs_s1"] >= 2.0
    assert metrics["deterministic"]
    assert metrics["all_ok"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke scale (same code paths, seconds not minutes)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="also run the E16 wall-clock sweep with up to N worker "
             "processes per deployment (E14 alone when omitted)",
    )
    args = parser.parse_args(argv)
    metrics = run_suite(quick=args.quick)
    if not metrics["all_ok"]:
        print("FATAL: E14 acceptance criteria not met", file=sys.stderr)
        return 1
    if args.workers is not None:
        e16 = run_e16_suite(args.workers, quick=args.quick)
        if not e16["all_ok"]:
            print("FATAL: E16 acceptance criteria not met", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
