"""E14 — aggregate throughput scaling of the sharded deployment.

Fixes the deployment totals (l=24 providers, n=8 collectors, m=8
governors, r=2) and splits them across S ∈ {1, 2, 4} shards driven by
one :class:`~repro.sharding.ShardCoordinator` under saturating offered
load.  Because the shards' rounds overlap on the shared simulator
clock, S shards commit up to ``S * b_limit`` records in the sim-time
one shard commits ``b_limit`` — the table reports the realised
aggregate origin-tx throughput and its speedup over S=1.

Every configuration runs under an active fault plan (link loss +
duplication on every shard, plus a governor crash/recovery on shard 0)
with 15% cross-shard traffic and epoch reshuffles every 4 super-rounds,
so the headline numbers carry the full relay/retry/migration overhead.
The bench asserts the acceptance criteria directly:

* S=4 achieves at least 2x the aggregate committed-tx throughput of
  S=1 at equal totals;
* the cross-shard auditor records zero atomicity violations (no
  receipt half-applied or replayed) despite the faults;
* an identically seeded repeat of the S=4 run is bit-identical
  (chain tips, committed counts, sim clock).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_shards.py          # full scale
    PYTHONPATH=src python benchmarks/bench_shards.py --quick  # CI smoke

or through pytest-benchmark like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_shards.py -q
"""

from __future__ import annotations

import pathlib
import sys
import time

if __name__ == "__main__":  # script mode: make _helpers + repro importable
    _here = pathlib.Path(__file__).resolve().parent
    sys.path.insert(0, str(_here))
    _src = _here.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from _helpers import emit

from repro.analysis.reporting import format_table
from repro.core.params import ProtocolParams
from repro.faults.plan import FaultPlan, LinkFaultSpec
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.sharding import ShardCoordinator
from repro.workloads.generator import BernoulliWorkload
from repro.workloads.xshard import CrossShardWorkload

#: Deployment-wide totals, identical for every shard count.
L, N, M, R = 24, 8, 8, 2
PARAMS = ProtocolParams(f=0.5, delta=0.2, b_limit=16)
SHARD_COUNTS = (1, 2, 4)
P_CROSS = 0.15
EPOCH_ROUNDS = 4
SEED = 11
#: Specs offered per super-round — saturates even the S=4 configuration
#: (4 shards x b_limit=16 = 64 slots), so every block packs full.
OFFERED = 128

#: Work scales.  ``quick`` is the CI smoke configuration: same code
#: paths, faults, and files, small enough to finish in seconds.
SCALES = {
    "full": dict(rounds=12),
    "quick": dict(rounds=6),
}


def _install_faults(coordinator, sharded, seed: int) -> None:
    """The E14 fault plan: loss + duplication everywhere, one crash."""
    for k in range(sharded.num_shards):
        plan = FaultPlan(seed=seed + 100 + k).with_default_link(
            LinkFaultSpec(loss=0.02, duplicate=0.05)
        )
        if k == 0:
            victim = sharded.shards[0].governors[-1]
            plan.with_crash(victim, at=0.8, recover_at=1.6)
        coordinator.install_faults(k, plan)


def run_config(
    shards: int,
    rounds: int,
    seed: int = SEED,
    registry: MetricsRegistry | None = None,
) -> dict:
    """One sharded deployment at fixed totals; returns its stats."""
    sharded = Topology.sharded(l=L, n=N, m=M, r=R, shards=shards, seed=seed)
    coordinator = ShardCoordinator(
        sharded,
        PARAMS,
        seed=seed,
        epoch_rounds=EPOCH_ROUNDS,
        resilience=True,
        obs=registry,
    )
    _install_faults(coordinator, sharded, seed)
    providers = [p for topo in sharded.shards for p in topo.providers]
    inner = BernoulliWorkload(providers, p_valid=0.8, seed=seed + 1)
    workload = CrossShardWorkload(
        inner,
        sharded.provider_shard,
        p_cross=P_CROSS if shards > 1 else 0.0,
        seed=seed + 2,
    )
    minted = 0
    for _ in range(rounds):
        coordinator.submit(workload.take(OFFERED))
        result = coordinator.run_super_round()
        minted += result.receipts_minted
    report = coordinator.finalize()
    return {
        "shards": shards,
        "committed": coordinator.committed_total,
        "sim_seconds": round(coordinator.sim.now, 6),
        "throughput": round(coordinator.throughput(), 4),
        "receipts_minted": minted,
        "receipts_pending": len(coordinator.auditor.pending()),
        "migrations": sum(len(m) for _, _, m in coordinator.reshuffle_log),
        "atomicity_violations": len(coordinator.auditor.atomicity_violations()),
        "audit_clean": report.clean,
        "tips": coordinator.tip_hashes(),
    }


def run_suite(quick: bool = False) -> dict:
    """Run the E14 sweep and emit both result twins; returns metrics."""
    scale = SCALES["quick" if quick else "full"]
    t0 = time.perf_counter()

    registry = MetricsRegistry()
    sweep = []
    for shards in SHARD_COUNTS:
        stats = run_config(
            shards, scale["rounds"],
            registry=registry if shards == SHARD_COUNTS[-1] else None,
        )
        sweep.append(stats)

    base = sweep[0]["throughput"]
    for stats in sweep:
        stats["speedup"] = round(stats["throughput"] / base, 4)

    # Determinism: an identically seeded repeat of the S=4 run must be
    # bit-identical — same chain tips, same counts, same clock.
    repeat = run_config(SHARD_COUNTS[-1], scale["rounds"])
    reference = sweep[-1]
    deterministic = all(
        repeat[key] == reference[key]
        for key in ("committed", "sim_seconds", "tips", "receipts_minted")
    )

    all_ok = (
        deterministic
        and sweep[-1]["speedup"] >= 2.0
        and all(s["audit_clean"] for s in sweep)
        and all(s["atomicity_violations"] == 0 for s in sweep)
        and all(s["receipts_pending"] == 0 for s in sweep)
    )

    rows = [
        (
            s["shards"], s["committed"], f"{s['sim_seconds']:.2f}",
            f"{s['throughput']:.2f}", f"{s['speedup']:.2f}x",
            s["receipts_minted"], s["migrations"],
            s["atomicity_violations"], s["audit_clean"],
        )
        for s in sweep
    ]
    table = format_table(
        ["shards", "committed", "sim s", "tx/s", "speedup",
         "receipts", "migrations", "atomicity viol.", "audit clean"],
        rows,
    )
    table += (
        f"\nfault plan active on every run: link loss 2%, duplication 5%, "
        f"governor crash/recovery on shard 0\n"
        f"seeded S=4 repeat bit-identical: "
        f"{'yes' if deterministic else 'NO'}\n"
    )
    metrics = {
        "shard_sweep": [
            {k: v for k, v in s.items() if k != "tips"} for s in sweep
        ],
        "speedup_s4_vs_s1": sweep[-1]["speedup"],
        "deterministic": deterministic,
        "all_ok": all_ok,
    }
    emit(
        "E14_shards",
        "E14 — sharded aggregate throughput at fixed totals "
        "(l=24, n=8, m=8), faults + cross-shard traffic on",
        table,
        metrics=metrics,
        registry=registry,
        duration_s=time.perf_counter() - t0,
    )
    return metrics


def test_shards_suite(benchmark):
    """pytest-benchmark entry point (full scale, like the other benches)."""
    metrics = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    assert metrics["speedup_s4_vs_s1"] >= 2.0
    assert metrics["deterministic"]
    assert metrics["all_ok"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke scale (same code paths, seconds not minutes)",
    )
    args = parser.parse_args(argv)
    metrics = run_suite(quick=args.quick)
    if not metrics["all_ok"]:
        print("FATAL: E14 acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
