"""E12/E13 — fault tolerance and Byzantine resilience under seeded plans.

The poster's analysis assumes a synchronous fault-free network; these
experiments measure what the implemented recovery + audit machinery
preserves when that assumption is broken.  Four questions:

* **loss sweep** (E12) — does 5-10% per-link loss (plus duplication and
  reordering) break agreement, Lemma 2's ``P[unchecked] <= f``, or the
  Theorem-4 loss bound?  (It must not: reliable-channel retransmits and
  broadcast gap repair close every gap.)
* **crash schedules** (E12) — governor crash-recovery, sequencer
  failover, and collector churn mid-run: do live replicas agree, and how
  fast does a crashed node rejoin (sim-time latency, blocks synced)?
* **repair economics** (E12) — how much extra traffic the recovery layer
  costs (retransmits, NACKs served) at each loss rate.
* **Byzantine fraction** (E13) — with 1/4, 2/4, 3/4 of the collectors
  Byzantine (cartel + adaptive attacker), in-flight tampering, and an
  equivocating governor: does honest regret stay under the Theorem-1
  ``rwm_bound``, and how fast is the equivocator quarantined?
"""

from __future__ import annotations

from _helpers import emit
from repro.agents.behaviors import ConcealBehavior, MisreportBehavior
from repro.analysis.reporting import format_table
from repro.byzantine import (
    AdaptiveAttackerBehavior,
    CartelPlan,
    ColludingCollectorBehavior,
    MessageTamperer,
    TamperSpec,
    install_equivocation,
    reputation_probe,
)
from repro.core.netengine import SEQUENCER_PRIMARY, NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.core.regret import rwm_bound, theorem4_bound
from repro.faults import FaultPlan, LinkFaultSpec
from repro.ledger.chain import check_agreement
from repro.network.topology import Topology
from repro.obs import MetricsRegistry
from repro.workloads.generator import BernoulliWorkload

F = 0.6
DELTA_T4 = 0.05
ROUNDS = 10
PER_ROUND = 8


def _build(seed: int, obs: MetricsRegistry | None = None):
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    behaviors = {"c0": MisreportBehavior(0.4), "c1": ConcealBehavior(0.4)}
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=F, delta=0.2),
        behaviors=behaviors,
        seed=seed,
        resilience=True,
        obs=obs,
    )
    return engine, topo


def _run(engine, topo, seed: int, rounds: int = ROUNDS):
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=seed)
    for _ in range(rounds):
        engine.run_round(workload.take(PER_ROUND))
    engine.finalize()


def _live_governors(engine):
    return [
        g for g in engine.governors.values()
        if g.governor_id not in engine.crashed_nodes
    ]


def _agreement(engine) -> bool:
    live = _live_governors(engine)
    try:
        check_agreement([g.ledger for g in live])
    except Exception:
        return False
    return all(g.ledger.height == engine.store.height for g in live)


def _unchecked_rate(engine) -> float:
    live = _live_governors(engine)
    screened = sum(g.metrics.transactions_screened for g in live)
    return sum(g.metrics.unchecked for g in live) / max(screened, 1)


def _loss_sweep_table(obs: MetricsRegistry) -> tuple[str, bool, list[dict]]:
    rows = []
    structured = []
    all_ok = True
    for loss in (0.0, 0.05, 0.10):
        engine, topo = _build(seed=120, obs=obs)
        plan = FaultPlan(seed=121).with_default_link(
            LinkFaultSpec(
                loss=loss,
                duplicate=loss / 2,
                reorder=loss / 2,
                reorder_delay=0.1,
            )
        )
        engine.install_faults(plan)
        _run(engine, topo, seed=122)
        rate = _unchecked_rate(engine)
        n_tx = ROUNDS * PER_ROUND
        # One honest collector stays linked to every provider, so the
        # best collector's loss S is 0 and Theorem 4's RHS reduces to
        # the sqrt term — the O(sqrt(T)) regret shape under loss.
        bound = theorem4_bound(0.0, n_tx, F, DELTA_T4, topo.r)
        loss_t = max(g.metrics.expected_loss for g in _live_governors(engine))
        ok = (
            _agreement(engine)
            and rate <= F
            and loss_t <= bound
            and engine.broadcast.pending_gap_total() == 0
        )
        all_ok = all_ok and ok
        structured.append(
            {
                "link_loss": loss,
                "drops": engine.injector.stats.dropped,
                "retransmits": engine.channel.stats.retransmits,
                "repairs_served": engine.broadcast.repairs_served,
                "agreement": _agreement(engine),
                "unchecked_rate": rate,
                "max_expected_loss": loss_t,
                "theorem4_bound": bound,
                "stuck_gaps": engine.broadcast.pending_gap_total(),
                "ok": ok,
            }
        )
        rows.append(
            (
                f"{loss:.0%}",
                engine.injector.stats.dropped,
                engine.channel.stats.retransmits,
                engine.broadcast.repairs_served,
                "yes" if _agreement(engine) else "NO",
                round(rate, 3),
                "yes" if rate <= F else "NO",
                round(loss_t, 2),
                round(bound, 1),
                "yes" if loss_t <= bound else "NO",
                engine.broadcast.pending_gap_total(),
            )
        )
    table = format_table(
        [
            "link loss",
            "drops",
            "retransmits",
            "repairs served",
            "agreement",
            "unchecked rate",
            "<= f",
            "max E[loss]",
            "Thm-4 RHS",
            "within",
            "stuck gaps",
        ],
        rows,
    )
    return table, all_ok, structured


def _crash_schedule_table(obs: MetricsRegistry) -> tuple[str, bool, list[dict]]:
    scenarios = [
        (
            "governor crash-recovery",
            FaultPlan(seed=131).with_loss(0.10).with_crash("g1", at=0.5, recover_at=1.6),
        ),
        (
            "sequencer failover",
            FaultPlan(seed=132).with_loss(0.10).with_crash(SEQUENCER_PRIMARY, at=0.4),
        ),
        (
            "collector churn",
            FaultPlan(seed=133).with_loss(0.10).with_crash("c2", at=0.5, recover_at=1.6),
        ),
        (
            "combined (ISSUE acceptance)",
            FaultPlan(seed=134)
            .with_loss(0.10)
            .with_crash("g2", at=0.6, recover_at=1.8)
            .with_crash(SEQUENCER_PRIMARY, at=1.0),
        ),
    ]
    rows = []
    structured = []
    all_ok = True
    for name, plan in scenarios:
        engine, topo = _build(seed=140, obs=obs)
        engine.install_faults(plan)
        _run(engine, topo, seed=141)
        crash_at = {n: t for (t, kind, n, _s) in engine.fault_log if kind == "crash"}
        recoveries = [
            (n, t - crash_at[n], synced)
            for (t, kind, n, synced) in engine.fault_log
            if kind == "recover"
        ]
        latency = max((lat for _n, lat, _s in recoveries), default=0.0)
        synced = sum(s for _n, _lat, s in recoveries)
        rate = _unchecked_rate(engine)
        ok = (
            _agreement(engine)
            and rate <= F
            and engine.broadcast.pending_gap_total() == 0
        )
        all_ok = all_ok and ok
        structured.append(
            {
                "scenario": name,
                "crashes": engine.injector.stats.crashes,
                "recoveries": engine.injector.stats.recoveries,
                "recovery_latency": latency if recoveries else None,
                "blocks_synced": synced,
                "agreement": _agreement(engine),
                "unchecked_rate": rate,
                "stuck_gaps": engine.broadcast.pending_gap_total(),
                "ok": ok,
            }
        )
        rows.append(
            (
                name,
                engine.injector.stats.crashes,
                engine.injector.stats.recoveries,
                round(latency, 2) if recoveries else "-",
                synced,
                "yes" if _agreement(engine) else "NO",
                round(rate, 3),
                engine.broadcast.pending_gap_total(),
            )
        )
    table = format_table(
        [
            "scenario",
            "crashes",
            "recoveries",
            "recovery latency (s)",
            "blocks synced",
            "agreement",
            "unchecked rate",
            "stuck gaps",
        ],
        rows,
    )
    return table, all_ok, structured


def _e12_tables() -> tuple[str, bool, dict, MetricsRegistry]:
    # One registry across all scenarios: the observability snapshot in
    # BENCH_E12_faults.json then totals the whole experiment's traffic
    # (drops, retransmits, repairs, crash events, ...).
    obs = MetricsRegistry()
    sweep, sweep_ok, sweep_metrics = _loss_sweep_table(obs)
    crash, crash_ok, crash_metrics = _crash_schedule_table(obs)
    text = (
        "-- loss sweep (10 rounds x 8 tx, dup/reorder at half the loss rate) --\n"
        f"{sweep}\n\n"
        "-- seeded crash schedules (10% link loss throughout) --\n"
        f"{crash}"
    )
    metrics = {
        "loss_sweep": sweep_metrics,
        "crash_schedules": crash_metrics,
        "all_ok": sweep_ok and crash_ok,
    }
    return text, sweep_ok and crash_ok, metrics, obs


def test_e12_fault_tolerance(benchmark):
    """E12: safety invariants under loss, crashes, and failover."""
    text, all_ok, metrics, obs = benchmark.pedantic(
        _e12_tables, rounds=1, iterations=1
    )
    emit(
        "E12_faults",
        "E12 (fault tolerance): agreement, Lemma 2, and Theorem 4 under "
        f"seeded fault plans, f = {F}",
        text,
        metrics=metrics,
        registry=obs,
    )
    assert all_ok


# -- E13: Byzantine-fraction sweep --------------------------------------

#: The round in which the Byzantine governor equivocates its commit vote
#: (one block per round, so serial == round).
EQUIVOCATE_SERIAL = 3


def _byzantine_sweep_table(obs: MetricsRegistry) -> tuple[str, bool, list[dict]]:
    """Escalate the Byzantine collector fraction with the auditor on.

    Every run also carries in-flight tampering and a governor that
    equivocates its commit vote at serial 3; ``c0`` always stays honest
    (the paper's "at least one well-behaved collector" premise).
    """
    cartel = CartelPlan(target_provider="p0", mode="conceal")
    rows = []
    structured = []
    all_ok = True
    for n_byz in (1, 2, 3):
        adaptive = AdaptiveAttackerBehavior(defect_above=0.8, p_defect=0.5)
        roster = [
            ("c1", ColludingCollectorBehavior(cartel)),
            ("c2", ColludingCollectorBehavior(cartel)),
            ("c3", adaptive),
        ]
        behaviors = dict(roster[:n_byz])
        topo = Topology.regular(l=8, n=4, m=3, r=2)
        engine = NetworkedProtocolEngine(
            topo,
            ProtocolParams(f=F, delta=0.2),
            behaviors=behaviors,
            seed=150 + n_byz,
            resilience=True,
            obs=obs,
        )
        if "c3" in behaviors:
            adaptive.bind_probe(reputation_probe(engine, "g0", "c3"))
        tamperer = MessageTamperer(
            TamperSpec(
                strip_signature=0.05, flip_label=0.05, replay=0.05,
                corrupt_block=0.10,
            ),
            seed=160 + n_byz,
            obs=obs,
        )
        engine.install_faults(FaultPlan(seed=170 + n_byz), tamperer=tamperer)
        install_equivocation(engine, "g2", serial=EQUIVOCATE_SERIAL)
        _run(engine, topo, seed=180 + n_byz)

        honest = [
            gid for gid in topo.governors if gid not in engine.quarantined_nodes
        ]
        try:
            check_agreement([engine.governors[gid].ledger for gid in honest])
            agreement = True
        except Exception:
            agreement = False
        safety = sum(
            len(engine.auditors[gid].report.safety_violations()) for gid in honest
        ) + len(engine.harness_auditor.report.safety_violations())
        regret = max(
            engine.governors[gid].metrics.expected_loss for gid in honest
        )
        bound = rwm_bound(s_min=0.0, r=topo.r, beta=engine.params.beta)
        caught = [
            rnd for (_t, rnd, node, _v) in engine.quarantine_log if node == "g2"
        ]
        latency = caught[0] - EQUIVOCATE_SERIAL if caught else None
        ok = (
            agreement
            and safety == 0
            and regret <= bound
            and latency is not None
            and latency <= 2
        )
        all_ok = all_ok and ok
        structured.append(
            {
                "byzantine_collectors": n_byz,
                "byzantine_fraction": n_byz / 4,
                "tampered_messages": tamperer.stats.total,
                "agreement": agreement,
                "safety_violations": safety,
                "max_honest_regret": regret,
                "rwm_bound": bound,
                "equivocator_quarantined": bool(caught),
                "quarantine_latency_rounds": latency,
                "ok": ok,
            }
        )
        rows.append(
            (
                f"{n_byz}/4",
                tamperer.stats.total,
                "yes" if agreement else "NO",
                safety,
                round(regret, 2),
                round(bound, 2),
                "yes" if regret <= bound else "NO",
                "yes" if caught else "NO",
                latency if latency is not None else "-",
            )
        )
    table = format_table(
        [
            "byz collectors",
            "tampered msgs",
            "agreement",
            "safety viols",
            "max honest regret",
            "rwm bound",
            "within",
            "equivocator caught",
            "latency (rounds)",
        ],
        rows,
    )
    return table, all_ok, structured


def _e13_tables() -> tuple[str, bool, dict, MetricsRegistry]:
    obs = MetricsRegistry()
    sweep, ok, sweep_metrics = _byzantine_sweep_table(obs)
    text = (
        "-- Byzantine-fraction sweep (10 rounds x 8 tx; cartel + adaptive "
        "collectors, in-flight tampering, governor equivocation at serial "
        f"{EQUIVOCATE_SERIAL}; auditor + quarantine on) --\n"
        f"{sweep}"
    )
    metrics = {"byzantine_sweep": sweep_metrics, "all_ok": ok}
    return text, ok, metrics, obs


def test_e13_byzantine_fractions(benchmark):
    """E13: Theorem-1 regret and quarantine latency vs Byzantine fraction."""
    text, all_ok, metrics, obs = benchmark.pedantic(
        _e13_tables, rounds=1, iterations=1
    )
    emit(
        "E13_byzantine",
        "E13 (Byzantine resilience): honest regret vs rwm_bound and "
        "equivocator quarantine latency as the Byzantine collector "
        f"fraction grows, f = {F}",
        text,
        metrics=metrics,
        registry=obs,
    )
    assert all_ok
