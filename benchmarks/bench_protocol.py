"""E9 — Figure 1 + Section 3.1: the full hierarchy and its properties.

Runs the complete protocol (all three tiers, PoS leaders, argues,
rewards) under a mixed adversary and verifies the five safety/liveness
properties over the run, then reports end-to-end throughput.
"""

from __future__ import annotations

import time

from _helpers import emit
from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    ForgeBehavior,
    MisreportBehavior,
)
from repro.analysis.metrics import summarize_run
from repro.analysis.reporting import format_table
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.ledger.properties import check_all_properties
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload


def _full_run():
    topo = Topology.regular(l=24, n=8, m=4, r=4)
    behaviors = {
        "c0": MisreportBehavior(0.5),
        "c1": ConcealBehavior(0.5),
        "c2": AlwaysInvertBehavior(),
        "c3": ForgeBehavior(0.2),
    }
    engine = ProtocolEngine(
        topo, ProtocolParams(f=0.6), behaviors=behaviors, seed=31,
        stake={"g0": 4, "g1": 2, "g2": 1, "g3": 1},
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.75, seed=32)
    start = time.perf_counter()
    for _ in range(30):
        engine.run_round(workload.take(32))
    engine.run_round([])  # flush last-round argues into a block
    elapsed = time.perf_counter() - start
    engine.finalize()
    return engine, elapsed


def _property_table() -> tuple[str, bool]:
    engine, elapsed = _full_run()
    report = check_all_properties(engine.ledgers(), engine.transcript)
    summary = summarize_run(engine)
    rows = [
        ("Agreement", report.agreement),
        ("Chain Integrity", report.chain_integrity),
        ("No Skipping", report.no_skipping),
        ("Almost No Creation", report.almost_no_creation),
        ("Validity", report.validity),
    ]
    table = format_table(["property (Section 3.1)", "holds"], rows)
    table += (
        f"\n\ntopology: l=24 providers, n=8 collectors, m=4 governors, r=4"
        f"\nrun: {summary.transactions} tx / {summary.rounds} rounds, "
        f"{summary.argues} argues, {engine.metrics.forged_uploads} forgeries attempted"
        f"\nthroughput: {summary.transactions / elapsed:.0f} tx/s (in-process simulation)"
    )
    return table, report.all_hold


def test_e9_protocol_properties(benchmark):
    """E9: the five properties under a mixed adversary + forgeries."""
    table, all_hold = benchmark.pedantic(_property_table, rounds=1, iterations=1)
    emit(
        "E9_properties",
        "E9 (Fig. 1 / Section 3.1): full-protocol run, property verification",
        table,
    )
    assert all_hold


def _networked_run():
    """E9-net: the same protocol at packet level (per-tx Δ timers)."""
    from repro.core.netengine import NetworkedProtocolEngine

    topo = Topology.regular(l=8, n=4, m=3, r=2)
    engine = NetworkedProtocolEngine(
        topo,
        ProtocolParams(f=0.6, delta=0.2),
        behaviors={"c0": MisreportBehavior(0.4)},
        seed=33,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=34)
    for _ in range(10):
        engine.run_round(workload.take(8))
    engine.run_round([])
    engine.finalize()
    return engine


def test_e9_networked_engine(benchmark):
    """E9-net: packet-level run — real message counts + properties."""
    engine = benchmark.pedantic(_networked_run, rounds=1, iterations=1)
    report = check_all_properties(engine.ledgers(), engine.transcript)
    stats = engine.network.stats
    rows = [
        ("properties hold", report.all_hold),
        ("messages sent (packet-level)", stats.messages_sent),
        ("abcast payloads", stats.messages_by_kind.get("abcast", 0)),
        ("argue messages", stats.messages_by_kind.get("argue", 0)),
        ("simulated seconds", round(engine.sim.now, 2)),
    ]
    emit(
        "E9net_packet",
        "E9-net: packet-level engine, 88 tx, per-transaction Delta timers",
        format_table(["metric", "value"], rows),
    )
    assert report.all_hold
