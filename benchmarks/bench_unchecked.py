"""E2 + E3 — Lemma 2 and Theorem 3: unchecked-transaction bounds.

E2: the probability a transaction goes unchecked is at most f, across
the f grid.  E3: the unchecked *count* concentrates — the empirical
tail P[count > (f+delta)N] sits below Hoeffding's exp(-2 delta^2 N).
"""

from __future__ import annotations

import numpy as np

from _helpers import emit, standard_adversary_mix
from repro.analysis.reporting import format_table
from repro.analysis.stats import empirical_tail
from repro.baselines.base import PolicySimulation, ReputationPolicy
from repro.core.params import ProtocolParams
from repro.core.regret import hoeffding_tail

COLLECTOR_IDS = [f"c{i}" for i in range(8)]


def _unchecked_rate(f: float, horizon: int, seed: int) -> float:
    params = ProtocolParams(f=f)
    sim = PolicySimulation(
        standard_adversary_mix(), horizon=horizon, p_valid=0.5, seed=seed
    )
    stats = sim.run(
        ReputationPolicy(params=params, collector_ids=COLLECTOR_IDS),
        policy_seed=seed + 1,
    )
    return stats.unchecked / stats.transactions


def _lemma2_table() -> str:
    rows = []
    for f in [0.1, 0.3, 0.5, 0.7, 0.9]:
        rates = [_unchecked_rate(f, 2000, seed) for seed in range(5)]
        mean_rate = float(np.mean(rates))
        rows.append(
            (f, round(mean_rate, 4), round(max(rates), 4), "yes" if max(rates) <= f else "NO")
        )
    return format_table(
        ["f", "mean unchecked rate", "max over seeds", "<= f (Lemma 2)"], rows
    )


def test_e2_lemma2_unchecked_rate(benchmark):
    """E2: unchecked fraction vs f."""
    table = benchmark.pedantic(_lemma2_table, rounds=1, iterations=1)
    emit("E2_lemma2", "E2 (Lemma 2): P[tx unchecked] <= f", table)


def _theorem3_table() -> str:
    f = 0.5
    params = ProtocolParams(f=f)
    rows = []
    for n in [200, 500, 1000]:
        counts = []
        for seed in range(60):
            sim = PolicySimulation(
                standard_adversary_mix(), horizon=n, p_valid=0.5, seed=seed
            )
            stats = sim.run(
                ReputationPolicy(params=params, collector_ids=COLLECTOR_IDS),
                policy_seed=seed + 1,
            )
            counts.append(float(stats.unchecked))
        for delta in [0.02, 0.05]:
            threshold = (f + delta) * n
            tail = empirical_tail(counts, threshold)
            bound = hoeffding_tail(n, delta)
            rows.append(
                (
                    n,
                    delta,
                    round(threshold, 1),
                    round(tail, 4),
                    f"{bound:.4f}",
                    "yes" if tail <= bound + 1e-9 else "NO",
                )
            )
    return format_table(
        ["N", "delta", "(f+delta)N", "empirical tail", "Hoeffding bound", "within"],
        rows,
    )


def test_e3_theorem3_concentration(benchmark):
    """E3: concentration of the unchecked count (60 seeds per N)."""
    table = benchmark.pedantic(_theorem3_table, rounds=1, iterations=1)
    emit(
        "E3_theorem3",
        "E3 (Theorem 3): P[more than (f+delta)N unchecked] <= exp(-2 delta^2 N), f = 0.5",
        table,
    )
