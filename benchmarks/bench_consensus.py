"""E7 + E10 — consensus complexity and leader-election proportionality.

E7 (Section 4.1): ordinary-block consensus costs O(b_limit * m)
messages; a stake-transform block costs O(m^2).  We count messages as m
grows, fit growth laws, and compare against the PBFT baseline (which
pays Theta(m^2) *every* block).

E10 (Section 3.4.3): VRF/PoS leadership is proportional to stake —
checked with a chi-squared test over 600 rounds.
"""

from __future__ import annotations

from _helpers import emit
from repro.analysis.complexity import fit_linear, fit_power_law, fit_quadratic
from repro.analysis.reporting import format_table
from repro.analysis.stats import chi_squared_uniformity
from repro.consensus.pbft import PBFTCluster
from repro.consensus.pos import LeaderElection
from repro.consensus.stake import StakeLedger
from repro.core.params import ProtocolParams
from repro.core.protocol import ProtocolEngine
from repro.crypto.identity import IdentityManager, Role
from repro.network.topology import Topology
from repro.workloads.generator import BernoulliWorkload

M_GRID = [4, 8, 16, 32]


def _ordinary_block_units(m: int, batch: int = 16) -> int:
    """Transaction-message units to disseminate one ordinary block.

    The paper's O(b_limit * m) counts the leader shipping a b-transaction
    TXList to the governors: ``len(block) * (m - 1)`` payload units.
    """
    topo = Topology.regular(l=8, n=4, m=m, r=2)
    engine = ProtocolEngine(
        topo, ProtocolParams(f=0.5), seed=1, leader_rotation=True
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=2)
    result = engine.run_round(workload.take(batch))
    return len(result.block) * (m - 1)


def _stake_block_messages(m: int) -> int:
    """Governor messages for one stake-transform block at m governors.

    The paper's O(m^2) arises because every governor party to a transfer
    rebroadcasts it to all m governors, with Theta(m) transfers per
    round (each governor transacting) — so the bench submits one
    transfer per governor.
    """
    from repro.consensus.stake import StakeLedger, StakeTransfer
    from repro.consensus.stake_consensus import StakeConsensusRound
    from repro.crypto.signatures import sign

    im = IdentityManager(seed=2)
    govs = [f"g{j}" for j in range(m)]
    for g in govs:
        im.enroll(g, Role.GOVERNOR)
    ledger = StakeLedger.from_balances({g: 4 for g in govs})
    transfers = []
    for i, g in enumerate(govs):
        receiver = govs[(i + 1) % m]
        message = ("stake-transfer", g, receiver, 1, i)
        transfers.append(
            StakeTransfer(
                sender=g, receiver=receiver, amount=1, nonce=i,
                signature=sign(im.record(g).key, message),
            )
        )
    consensus = StakeConsensusRound(im=im, governors=govs)
    consensus.run(govs[0], ledger, transfers)
    return consensus.messages_exchanged


def _vrf_messages(m: int) -> int:
    """VRF announcement traffic per election: every staked governor to
    every other governor (small constant-size messages)."""
    return m * (m - 1)


def _tendermint_messages(m: int) -> int:
    from repro.consensus.tendermint import TendermintCluster

    im = IdentityManager(seed=4)
    ids = [f"v{i}" for i in range(m)]
    for vid in ids:
        im.enroll(vid, Role.GOVERNOR)
    cluster = TendermintCluster(im=im, validator_ids=ids)
    cluster.run({"block": 1})
    return cluster.messages_exchanged


def _raft_entry_messages(m: int) -> int:
    """Steady-state Raft cost for one committed entry (crash model)."""
    from repro.consensus.raft import RaftCluster

    cluster = RaftCluster(node_ids=[f"n{i}" for i in range(m)], seed=6)
    cluster.run_until_leader()
    before = cluster.messages_exchanged
    cluster.submit("entry")
    return cluster.messages_exchanged - before


def _pbft_messages(m: int) -> int:
    im = IdentityManager(seed=3)
    ids = [f"r{i}" for i in range(m)]
    for rid in ids:
        im.enroll(rid, Role.GOVERNOR)
    cluster = PBFTCluster(im=im, replica_ids=ids)
    cluster.run({"block": 1})
    return cluster.messages_exchanged


def _complexity_table() -> str:
    rows = []
    ordinary, stake, pbft, tendermint = [], [], [], []
    for m in M_GRID:
        o = _ordinary_block_units(m)
        s = _stake_block_messages(m)
        p = _pbft_messages(m)
        t = _tendermint_messages(m)
        ra = _raft_entry_messages(m)
        ordinary.append(o)
        stake.append(s)
        pbft.append(p)
        tendermint.append(t)
        rows.append((m, o, s, _vrf_messages(m), p, t, ra))
    table = format_table(
        [
            "m (governors)",
            "ordinary block (tx units)",
            "stake-transform msgs",
            "VRF msgs",
            "PBFT msgs",
            "Tendermint msgs",
            "Raft msgs (crash-only)",
        ],
        rows,
    )
    fit_o = fit_power_law(M_GRID, ordinary)
    fit_s = fit_power_law(M_GRID, stake)
    fit_p = fit_power_law(M_GRID, pbft)
    lin = fit_linear(M_GRID, ordinary)
    quad = fit_quadratic(M_GRID, stake)
    table += (
        f"\n\nordinary-block exponent: {fit_o.coefficients[1]:.2f} "
        f"(paper: O(b_limit*m) -> ~1; linear R^2 = {lin.r_squared:.4f})"
        f"\nstake-transform exponent: {fit_s.coefficients[1]:.2f} "
        f"(paper: O(m^2) -> ~2; quadratic R^2 = {quad.r_squared:.4f})"
        f"\nPBFT exponent: {fit_p.coefficients[1]:.2f} (textbook: 2)"
        f"\nTendermint exponent: "
        f"{fit_power_law(M_GRID, tendermint).coefficients[1]:.2f} (textbook: 2)"
    )
    return table


def test_e7_message_complexity(benchmark):
    """E7: message counts vs m with power-law fits."""
    table = benchmark.pedantic(_complexity_table, rounds=1, iterations=1)
    emit(
        "E7_complexity",
        "E7 (Section 4.1): consensus message complexity vs governor count",
        table,
    )


def _election_proportionality() -> str:
    im = IdentityManager(seed=5)
    govs = [f"g{j}" for j in range(4)]
    for g in govs:
        im.enroll(g, Role.GOVERNOR)
    stakes = {"g0": 8, "g1": 4, "g2": 2, "g3": 2}
    ledger = StakeLedger.from_balances(stakes)
    election = LeaderElection(im=im, governor_order=govs)
    rounds = 800
    counts = {g: 0 for g in govs}
    for r in range(rounds):
        counts[election.run(ledger, r)] += 1
    total_stake = sum(stakes.values())
    props = [stakes[g] / total_stake for g in govs]
    result = chi_squared_uniformity([counts[g] for g in govs], props)
    rows = [
        (g, stakes[g], f"{stakes[g] / total_stake:.3f}", counts[g],
         f"{counts[g] / rounds:.3f}")
        for g in govs
    ]
    table = format_table(
        ["governor", "stake", "expected share", "leaderships", "observed share"], rows
    )
    table += (
        f"\n\nchi-squared = {result.statistic:.2f} (dof {result.dof}), "
        f"p = {result.p_value:.3f} -> "
        + ("consistent with stake-proportional election" if result.consistent() else "INCONSISTENT")
    )
    return table


def test_e10_leader_proportionality(benchmark):
    """E10: PoS leadership proportional to stake (chi-squared)."""
    table = benchmark.pedantic(_election_proportionality, rounds=1, iterations=1)
    emit(
        "E10_pos",
        "E10 (Section 3.4.3): VRF/PoS leadership vs stake share, 800 rounds",
        table,
    )


def test_e7_pbft_single_instance(benchmark):
    """Timing target: one PBFT instance at m = 16."""
    im = IdentityManager(seed=7)
    ids = [f"r{i}" for i in range(16)]
    for rid in ids:
        im.enroll(rid, Role.GOVERNOR)

    def run():
        cluster = PBFTCluster(im=im, replica_ids=ids)
        return cluster.run({"b": 1})

    benchmark(run)


def test_e10_election_round(benchmark):
    """Timing target: one VRF election round at m = 8, 16 stake units."""
    im = IdentityManager(seed=8)
    govs = [f"g{j}" for j in range(8)]
    for g in govs:
        im.enroll(g, Role.GOVERNOR)
    ledger = StakeLedger.from_balances({g: 2 for g in govs})
    election = LeaderElection(im=im, governor_order=govs)
    counter = iter(range(10**9))

    def run():
        return election.run(ledger, next(counter))

    benchmark(run)
