"""Ablations — the DESIGN.md design-choice studies.

A1: fixed beta values vs the proof's tuned schedule.
A2: the paper's adaptive gamma rule vs a naive fixed gamma = beta.
A3: source-selection rule (reputation-proportional / uniform / greedy).
A4: argue window U — regret as truth-revelation latency grows.
"""

from __future__ import annotations

import numpy as np

from _helpers import emit, standard_adversary_mix
from repro.agents.behaviors import AlwaysInvertBehavior, HonestBehavior
from repro.analysis.reporting import format_table
from repro.core.game import ReputationGame

SEEDS = [0, 1, 2]
HORIZON = 2000


def _mean_loss(**kwargs) -> float:
    losses = [
        ReputationGame(
            standard_adversary_mix(), horizon=HORIZON, seed=s,
            track_curves=False, **kwargs
        ).run().expected_loss
        for s in SEEDS
    ]
    return float(np.mean(losses))


def _beta_sweep_table() -> str:
    rows = []
    for label, beta in [
        ("0.3 (fixed)", 0.3),
        ("0.5 (fixed)", 0.5),
        ("0.7 (fixed)", 0.7),
        ("0.9 (fixed)", 0.9),
        ("tuned 1-4*sqrt(log2(r)/T)", None),
    ]:
        rows.append((label, round(_mean_loss(beta=beta), 2)))
    return format_table(["beta", f"L_T at T = {HORIZON} (mean of {len(SEEDS)} seeds)"], rows)


def test_a1_beta_sweep(benchmark):
    """A1: the conceal discount beta, fixed vs tuned."""
    table = benchmark.pedantic(_beta_sweep_table, rounds=1, iterations=1)
    emit("A1_beta", "Ablation A1: beta schedule", table)


def _gamma_rule_table() -> tuple[str, float, float]:
    def liars_weight(result):
        return max(
            w for c, w in result.final_weights.items() if c not in ("c0", "c1")
        )

    behaviors = lambda: [HonestBehavior()] * 2 + [AlwaysInvertBehavior()] * 6
    paper = ReputationGame(behaviors(), horizon=HORIZON, seed=1, beta=0.9).run()
    naive = ReputationGame(
        behaviors(), horizon=HORIZON, seed=1, beta=0.9, gamma_override=0.9
    ).run()
    rows = [
        ("paper rule: gamma = max{(b-1)/L + (b+1)/2, (b^2+b)/2}",
         round(paper.expected_loss, 2), f"{liars_weight(paper):.2e}"),
        ("naive: gamma = beta (wrong == missed)",
         round(naive.expected_loss, 2), f"{liars_weight(naive):.2e}"),
    ]
    table = format_table(["gamma rule", "L_T", "max liar weight at end"], rows)
    return table, paper.expected_loss, naive.expected_loss


def test_a2_gamma_rule(benchmark):
    """A2: the adaptive gamma rule matters — naive gamma demotes slower."""
    table, paper_loss, naive_loss = benchmark.pedantic(
        _gamma_rule_table, rounds=1, iterations=1
    )
    emit("A2_gamma", "Ablation A2: adaptive vs naive mislabel discount", table)
    assert paper_loss <= naive_loss + 1e-9


def _selection_table() -> tuple[str, dict[str, float]]:
    losses = {}
    rows = []
    for rule in ("proportional", "wmajority", "uniform", "greedy"):
        loss = _mean_loss(selection=rule)
        losses[rule] = loss
        rows.append((rule, round(loss, 2)))
    return format_table(["source-selection rule", f"L_T at T = {HORIZON}"], rows), losses


def test_a3_selection_rule(benchmark):
    """A3: reputation-proportional selection vs uniform and greedy."""
    table, losses = benchmark.pedantic(_selection_table, rounds=1, iterations=1)
    emit("A3_selection", "Ablation A3: source-selection rule", table)
    assert losses["proportional"] < losses["uniform"]


def _argue_window_table() -> str:
    rows = []
    for lag in [0, 25, 100, 400, 1600]:
        rows.append((lag, round(_mean_loss(reveal_lag=lag), 2)))
    return format_table(
        ["truth latency (tx, ~ argue window U)", f"L_T at T = {HORIZON}"], rows
    )


def test_a4_argue_window(benchmark):
    """A4: regret vs revelation latency (the U discussion in Section 4.2)."""
    table = benchmark.pedantic(_argue_window_table, rounds=1, iterations=1)
    emit("A4_argue_window", "Ablation A4: truth-revelation latency", table)
