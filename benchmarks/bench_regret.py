"""E1 + E4 — Theorem 1/4: governor regret vs the best collector.

Regenerates the paper's core analytical claim as a measured series:
for T in a grid, the governor's accumulated expected loss L_T vs
S_min + O(sqrt(T)).  The paper reports no numbers (poster); the shape
that must hold is (a) every point below the Theorem-1 RHS and (b) a
log-log regret slope <= ~0.5.
"""

from __future__ import annotations

import numpy as np

from _helpers import emit, standard_adversary_mix
from repro.analysis.regret_curves import run_regret_curve
from repro.analysis.reporting import format_table
from repro.analysis.stats import loglog_slope
from repro.core.game import ReputationGame

HORIZONS = [100, 200, 400, 800, 1600, 3200, 4800]
SEEDS = [0, 1, 2, 3, 4]


def _regret_table() -> tuple[str, float]:
    curve = run_regret_curve(
        behavior_factory=standard_adversary_mix,
        horizons=HORIZONS,
        seeds=SEEDS,
        p_valid=0.5,
    )
    rows = []
    for point in curve.points:
        rows.append(
            (
                point.horizon,
                round(point.mean_expected_loss, 2),
                round(point.mean_s_min, 2),
                round(point.mean_regret, 2),
                round(point.bound_rhs, 1),
                "yes" if point.within_bound else "NO",
            )
        )
    slope = curve.scaling_exponent()
    table = format_table(
        ["T", "L_T (mean)", "S_min (mean)", "regret", "Thm-1 RHS", "within bound"],
        rows,
    )
    table += f"\n\nlog-log regret slope vs T: {slope:.3f}  (O(sqrt(T)) -> <= 0.5 + noise)"
    return table, slope


def test_e1_theorem1_regret_curve(benchmark):
    """E1: the regret table across the horizon grid."""
    table, slope = benchmark.pedantic(_regret_table, rounds=1, iterations=1)
    emit(
        "E1_regret",
        "E1 (Theorem 1): governor expected loss vs best collector, "
        "r = 8 (2 honest / 6 adversarial), tuned beta",
        table,
    )
    assert slope <= 0.75


def _latency_table() -> str:
    rows = []
    for lag in [0, 10, 50, 200]:
        losses = []
        for seed in SEEDS:
            result = ReputationGame(
                standard_adversary_mix(), horizon=2000, seed=seed, reveal_lag=lag
            ).run()
            losses.append(result.expected_loss)
        rows.append((lag, round(float(np.mean(losses)), 2)))
    return format_table(["reveal lag V (tx)", "L_T at T = 2000"], rows)


def test_e1_latency_only_delays_updates(benchmark):
    """E1 variant: the paper's claim that latency U only delays updating."""
    table = benchmark.pedantic(_latency_table, rounds=1, iterations=1)
    emit(
        "E1_latency",
        "E1-latency: regret under delayed truth revelation "
        "(paper: 'only a latency on the updating of reputation is induced')",
        table,
    )


def _single_game() -> float:
    return ReputationGame(
        standard_adversary_mix(), horizon=1000, seed=0, track_curves=False
    ).run().expected_loss


def test_e1_game_throughput(benchmark):
    """Timing target: one 1000-transaction reputation game."""
    loss = benchmark(_single_game)
    assert loss >= 0.0


def _theorem4_table() -> tuple[str, bool]:
    """E4: the end-to-end bound on a full protocol run.

    The engine's workload keeps one honest collector per provider, so
    the best collector's loss S is 0 and Theorem 4 reduces to
    L <= 16 sqrt(log(r) * (f + delta) * N).
    """
    from repro.agents.behaviors import (
        AlwaysInvertBehavior,
        ConcealBehavior,
        MisreportBehavior,
    )
    from repro.core.protocol import ProtocolEngine
    from repro.core.regret import theorem4_bound
    from repro.core.params import ProtocolParams
    from repro.network.topology import Topology
    from repro.workloads.generator import BernoulliWorkload

    f, delta = 0.6, 0.05
    rows = []
    all_within = True
    for seed in (0, 1, 2):
        topo = Topology.regular(l=16, n=8, m=4, r=4)
        behaviors = {
            "c2": MisreportBehavior(0.5),
            "c3": ConcealBehavior(0.5),
            "c4": AlwaysInvertBehavior(),
            "c5": MisreportBehavior(0.8),
        }
        engine = ProtocolEngine(
            topo, ProtocolParams(f=f), behaviors=behaviors, seed=seed,
            leader_rotation=True,
        )
        workload = BernoulliWorkload(topo.providers, p_valid=0.5, seed=seed + 50)
        n_tx = 0
        for _ in range(40):
            engine.run_round(workload.take(24))
            n_tx += 24
        engine.finalize()
        gov = engine.governors["g0"]
        bound = theorem4_bound(0.0, n_tx, f, delta, topo.r)
        within = gov.metrics.expected_loss <= bound
        all_within = all_within and within
        rows.append(
            (seed, n_tx, round(gov.metrics.expected_loss, 2),
             gov.metrics.unchecked, round(bound, 1), "yes" if within else "NO")
        )
    table = format_table(
        ["seed", "N (tx)", "governor E[loss]", "unchecked", "Thm-4 RHS", "within"],
        rows,
    )
    return table, all_within


def test_e4_theorem4_end_to_end(benchmark):
    """E4: Theorem 4 over full protocol runs (S = 0: honest collectors exist)."""
    table, all_within = benchmark.pedantic(_theorem4_table, rounds=1, iterations=1)
    emit(
        "E4_theorem4",
        "E4 (Theorem 4): end-to-end governor loss vs the combined bound, "
        "f = 0.6, delta = 0.05",
        table,
    )
    assert all_within
