#!/usr/bin/env python3
"""Operational tooling: persistence, replay, and tracing.

Three workflows a deployment needs that go beyond the paper:

1. **Chain persistence** — dump a governor's ledger to JSON, reload it,
   verify integrity; tampering is detected at import.
2. **Workload replay** — capture the exact transaction stream of a run,
   then re-run it under a *different* f to answer "what would the
   validation bill have been?" counterfactually.
3. **Run tracing** — a JSONL event log; follow one mislabeled
   transaction from upload to argue to re-evaluation, and watch a
   misreporter's reputation decay as an ASCII sparkline.

Run:  python examples/chain_persistence.py
"""

from __future__ import annotations

import io
import json

from repro.agents.behaviors import AlwaysInvertBehavior
from repro.analysis import RunTracer, format_table
from repro.analysis.reporting import sparkline
from repro.core import ProtocolEngine, ProtocolParams
from repro.ledger.codec import dump_chain, load_chain
from repro.network import Topology
from repro.workloads import BernoulliWorkload, RecordingWorkload, ReplayWorkload


def main() -> None:
    topo = Topology.regular(l=8, n=4, m=3, r=2)
    behaviors = {"c0": AlwaysInvertBehavior()}
    params = ProtocolParams(f=0.8)

    # --- run with recording + tracing --------------------------------
    engine = ProtocolEngine(topo, params, behaviors=behaviors, seed=21)
    recorder = RecordingWorkload(BernoulliWorkload(topo.providers, p_valid=0.9, seed=22))
    tracer = RunTracer(watch_collectors=("c0", "c1"))
    for _ in range(15):
        tracer.observe_round(engine, engine.run_round(recorder.take(12)))
    engine.finalize()

    # --- 1. persistence -------------------------------------------------
    print("=== 1. chain persistence (JSON codec) ===")
    text = dump_chain(engine.governors["g0"].ledger)
    restored = load_chain(text)
    restored.verify_integrity()
    print(f"dumped {restored.height} blocks, {len(text):,} bytes of JSON;")
    print("reloaded chain verifies integrity:", restored.height == engine.store.height)
    doc = json.loads(text)
    doc["blocks"][0]["proposer"] = "gX"  # tamper
    try:
        load_chain(json.dumps(doc))
        print("!! tampering NOT detected")
    except Exception as exc:
        print(f"tampered file rejected: {type(exc).__name__}")
    print()

    # --- 2. counterfactual replay ---------------------------------------
    print("=== 2. workload replay: same traffic, different f ===")
    rows = []
    for f in (0.2, 0.8):
        replay = ReplayWorkload(recorder.recorded)
        engine2 = ProtocolEngine(
            topo, ProtocolParams(f=f), behaviors=dict(behaviors), seed=21
        )
        for _ in range(15):
            engine2.run_round(replay.take(12))
        engine2.finalize()
        validations = sum(g.metrics.validations for g in engine2.governors.values())
        mistakes = sum(g.metrics.mistakes for g in engine2.governors.values())
        rows.append((f, validations, mistakes))
    print(format_table(["f", "total validations", "mistakes"], rows))
    print("identical 180-tx stream; only the screening aggressiveness differs.")
    print()

    # --- 3. tracing ---------------------------------------------------------
    print("=== 3. run tracing (JSONL) ===")
    buffer = io.StringIO()
    lines = tracer.dump(buffer)
    print(f"{lines} events captured; event kinds: "
          + ", ".join(sorted({e['kind'] for e in tracer.events})))
    provider = topo.providers_of("c0")[0]
    series = tracer.reputation_series("c0", provider)
    print(f"c0 (inverter) weight on {provider} over 15 rounds, log scale:")
    print("  " + sparkline(series, log_scale=True))
    print(f"  start {series[0]:.3f} -> end {series[-1]:.2e}")
    argued = [e for e in tracer.events if e["kind"] == "record"
              and e["status"] == "reevaluated"]
    if argued:
        tx_id = argued[0]["tx_id"]
        print(f"history of re-evaluated tx {tx_id[:12]}…:")
        for event in tracer.tx_history(tx_id):
            detail = {k: v for k, v in event.items() if k not in ("kind", "tx_id")}
            print(f"  {event['kind']:7s} {detail}")


if __name__ == "__main__":
    main()
