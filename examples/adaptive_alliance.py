#!/usr/bin/env python3
"""Extensions showcase: adaptive efficiency, gossip, partial visibility.

Three features this library adds beyond the paper, demonstrated on one
alliance:

1. **Adaptive f** — an AIMD controller holds the unchecked-mistake rate
   at a 2 % target while pushing f (and thus efficiency) as high as the
   collector population allows, and slams f down when sleepers defect.
2. **Reputation gossip** — governors with partial information import
   peers' views of a misreporting collector via a signed,
   geometric-mean fold.
3. **Partial visibility** — the engine running with governors that each
   see only a coverage-preserving subset of collectors.

Run:  python examples/adaptive_alliance.py
"""

from __future__ import annotations

import numpy as np

from repro.agents.behaviors import HonestBehavior, MisreportBehavior, SleeperBehavior
from repro.analysis import format_table
from repro.baselines import PolicySimulation, ReputationPolicy
from repro.core import (
    AdaptiveF,
    ProtocolEngine,
    ProtocolParams,
    ReputationGossip,
    make_summary,
)
from repro.ledger.transaction import Label
from repro.network import Topology, VisibilityMap
from repro.workloads import BernoulliWorkload


def demo_adaptive_f() -> None:
    print("=== 1. adaptive f: AIMD against a sleeper phase change ===")
    controller = AdaptiveF(
        target_mistake_rate=0.02, initial_f=0.3, rate_decay=0.9
    )
    collector_ids = [f"c{i}" for i in range(8)]
    policy = ReputationPolicy(
        params=ProtocolParams(f=controller.f), collector_ids=collector_ids
    )
    behaviors = [HonestBehavior()] * 4 + [
        SleeperBehavior(1500) for _ in range(4)  # defect at tx 1500
    ]
    sim = PolicySimulation(behaviors, horizon=4000, seed=5)
    rng = np.random.default_rng(6)
    checkpoints = {750: None, 1500: None, 1700: None, 4000: None}
    step = 0
    for truth, labels in sim.stream():
        step += 1
        if not labels:
            continue
        policy.params = controller.apply_to(policy.params)
        decision = policy.screen(labels, rng)
        if not decision.checked:
            controller.observe_reveal(
                was_mistake=(decision.recorded_label is not truth)
            )
        policy.on_truth(labels, truth, decision.checked)
        if step in checkpoints:
            checkpoints[step] = controller.f
    rows = [(t, f"{f:.3f}") for t, f in checkpoints.items()]
    print(format_table(["transactions seen", "controller's f"], rows))
    print("f climbs while everyone is honest, then collapses to the floor")
    print("when the sleepers defect at tx 1500 — and stays conservative")
    print("while the recent mistake rate remains above the 2% target.")
    print(f"all-time mistake rate: {controller.observed_mistake_rate:.4f} "
          f"(target {controller.target_mistake_rate}, "
          f"recent {controller.recent_mistake_rate:.4f})")
    print()


def demo_gossip() -> None:
    print("=== 2. reputation gossip: informing a blind governor ===")
    from repro.core.reputation import ReputationBook
    from repro.crypto.identity import IdentityManager, Role

    im = IdentityManager(seed=8)
    for gid in ("g0", "g1"):
        im.enroll(gid, Role.GOVERNOR)
    books = {}
    for gid in ("g0", "g1"):
        book = ReputationBook(governor=gid)
        book.register_collector("liar", ["p0"])
        book.register_collector("honest", ["p0"])
        books[gid] = book
    gossip = ReputationGossip(im=im, alpha=0.4)
    for t in range(100):
        books["g0"].apply_revealed_truth(
            "p0", {"liar": "wrong", "honest": "correct"}, beta=0.9, gamma=0.855
        )
        if t % 10 == 9:
            summaries = [make_summary(im.record(g).key, books[g]) for g in books]
            for book in books.values():
                gossip.fold(book, summaries)
    rows = [
        (gid, f"{books[gid].weight('liar', 'p0'):.2e}",
         f"{books[gid].weight('honest', 'p0'):.3f}")
        for gid in ("g0", "g1")
    ]
    print(format_table(["governor", "view of liar", "view of honest"], rows))
    print("g1 never saw a single reveal — its view of the liar came via gossip.")
    print()


def demo_partial_visibility() -> None:
    print("=== 3. partial visibility: thin governor views still work ===")
    topo = Topology.regular(l=12, n=6, m=4, r=3)
    vmap = VisibilityMap.random_partial(topo, keep_fraction=0.0, seed=9)
    engine = ProtocolEngine(
        topo,
        ProtocolParams(f=0.6),
        behaviors={"c0": MisreportBehavior(0.6)},
        seed=10,
        visibility=vmap,
        leader_rotation=True,
    )
    workload = BernoulliWorkload(topo.providers, p_valid=0.7, seed=11)
    for _ in range(20):
        engine.run_round(workload.take(24))
    engine.finalize()
    rows = []
    for gid, gov in sorted(engine.governors.items()):
        visible = ", ".join(sorted(vmap.collectors_for(gid)))
        rows.append((gid, visible, gov.metrics.mistakes))
    print(format_table(["governor", "visible collectors", "mistakes"], rows))
    print(f"mean visibility: {vmap.mean_visibility(topo):.2f} "
          f"(coverage constraint keeps every provider screenable)")
    print(f"chain height: {engine.store.height} — agreement holds under partial views")


def main() -> None:
    demo_adaptive_f()
    demo_gossip()
    demo_partial_visibility()


if __name__ == "__main__":
    main()
