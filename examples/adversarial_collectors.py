#!/usr/bin/env python3
"""Adversarial collectors vs Theorem 1: watch the regret stay O(sqrt(T)).

Plays the reputation game (one provider, r = 8 collectors, one governor)
against four adversary mixes, including the reputation-farming "sleeper"
that behaves perfectly before defecting.  For each mix and horizon the
script prints the governor's accumulated expected loss, the best
collector's loss (S_min), the regret, and Theorem 1's bound — the
measured loss always sits far below the bound as long as one collector
is honest.

Run:  python examples/adversarial_collectors.py
"""

from __future__ import annotations

from repro.agents.behaviors import (
    AlwaysInvertBehavior,
    ConcealBehavior,
    FlipFlopBehavior,
    HonestBehavior,
    MisreportBehavior,
    SleeperBehavior,
)
from repro.analysis import format_table
from repro.core.game import ReputationGame


MIXES = {
    "mild noise": lambda: [HonestBehavior()] * 4 + [MisreportBehavior(0.2)] * 4,
    "half inverted": lambda: [HonestBehavior()] * 4 + [AlwaysInvertBehavior()] * 4,
    "sleepers": lambda: [HonestBehavior()] * 2
    + [SleeperBehavior(100) for _ in range(6)],
    "zoo": lambda: [
        HonestBehavior(),
        MisreportBehavior(0.3),
        ConcealBehavior(0.4),
        AlwaysInvertBehavior(),
        FlipFlopBehavior(25),
        SleeperBehavior(150),
        MisreportBehavior(0.7),
        ConcealBehavior(0.8),
    ],
}


def main() -> None:
    horizons = [200, 800, 3200]
    for name, factory in MIXES.items():
        rows = []
        for horizon in horizons:
            game = ReputationGame(
                behaviors=factory(), horizon=horizon, p_valid=0.5, seed=5
            )
            result = game.run()
            rows.append(
                (
                    horizon,
                    f"{result.expected_loss:.1f}",
                    f"{result.s_min:.1f}",
                    f"{result.regret:.1f}",
                    f"{result.theorem1_rhs():.1f}",
                    "yes" if result.expected_loss <= result.theorem1_rhs() else "NO",
                )
            )
        print(f"--- adversary mix: {name} ---")
        print(
            format_table(
                ["T", "L_T (governor)", "S_min", "regret", "Thm-1 bound", "within"],
                rows,
            )
        )
        print()

    # Weight trajectory: how fast does a sleeper fall after defecting?
    game = ReputationGame(
        behaviors=[HonestBehavior()] * 2 + [SleeperBehavior(100) for _ in range(6)],
        horizon=400,
        seed=5,
    )
    result = game.run()
    print("final collector weights (sleeper mix, T = 400):")
    rows = [(c, f"{w:.2e}") for c, w in sorted(result.final_weights.items())]
    print(format_table(["collector", "weight"], rows))
    print()
    print("collectors c2..c7 (sleepers) are crushed within ~100 reveals of defecting.")


if __name__ == "__main__":
    main()
