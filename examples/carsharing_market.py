#!/usr/bin/env python3
"""Car-sharing market (Section 5.1): merged platforms on one chain.

Two merged ride platforms keep serving their own users but share one
permissioned ledger.  Users are providers, drivers are collectors,
schedulers are governors.  A slice of the driver pool is dishonest —
claiming rides they won't serve — and the reputation mechanism pushes
their revenue share toward zero while honest drivers keep earning.

Run:  python examples/carsharing_market.py
"""

from __future__ import annotations

from repro.agents.behaviors import MisreportBehavior, SleeperBehavior
from repro.analysis import format_table
from repro.apps import CarSharingMarket
from repro.core.params import ProtocolParams


def main() -> None:
    dishonest = {
        "c0": MisreportBehavior(p=0.6),          # randomly flaky driver
        "c1": SleeperBehavior(honest_prefix=40), # builds trust, then defects
    }
    market = CarSharingMarket(
        n_users=24,
        n_drivers=8,
        n_schedulers=4,
        drivers_per_user=4,
        dishonest_drivers=dishonest,
        params=ProtocolParams(f=0.6),
        unfunded_rate=0.2,
        seed=11,
    )
    for _ in range(25):
        market.run_round(requests_per_round=16)
    report = market.report()

    print(
        format_table(
            ["metric", "value"],
            [
                ("ride requests offered", report.requests_offered),
                ("requests on chain", report.requests_on_chain),
                ("requests assigned", report.requests_assigned),
                ("assignment rate", f"{report.assignment_rate:.3f}"),
                ("mean pickup distance", f"{report.mean_pickup_distance:.2f}"),
            ],
        )
    )
    print()
    total = report.honest_driver_revenue + report.dishonest_driver_revenue
    print(
        format_table(
            ["driver group", "revenue", "share"],
            [
                (
                    "honest (6 drivers)",
                    f"{report.honest_driver_revenue:.2f}",
                    f"{report.honest_driver_revenue / total:.1%}",
                ),
                (
                    "dishonest (2 drivers)",
                    f"{report.dishonest_driver_revenue:.2f}",
                    f"{report.dishonest_driver_revenue / total:.1%}",
                ),
            ],
        )
    )
    print()
    print("per-driver reward totals:")
    rewards = market.engine.metrics.rewards_paid
    rows = [
        (d, f"{rewards.get(d, 0.0):.2f}", "dishonest" if d in dishonest else "honest")
        for d in market.topology.collectors
    ]
    print(format_table(["driver", "total reward", "type"], rows))


if __name__ == "__main__":
    main()
