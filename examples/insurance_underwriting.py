#!/usr/bin/env python3
"""Insurance underwriting (Section 5.2): catching whitewashing agents.

Policyholders (providers) submit declared health records; independent
agents (collectors) verify them; insurance companies (governors) decide
what to underwrite.  A quarter of applicants misdeclare, and two agents
are commission-biased: they label fraudulent applications valid to close
the sale.  The run shows (a) how much fraud leaks onto the chain as
valid, and (b) how the biased agents' revenue collapses.

Run:  python examples/insurance_underwriting.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.apps import CommissionBiasedAgent, InsuranceAlliance
from repro.core.params import ProtocolParams


def main() -> None:
    biased = {
        "c0": CommissionBiasedAgent(whitewash_rate=0.9),
        "c1": CommissionBiasedAgent(whitewash_rate=0.6),
    }
    alliance = InsuranceAlliance(
        n_applicants=20,
        n_agents=10,
        n_companies=4,
        agents_per_applicant=5,
        biased_agents=biased,
        params=ProtocolParams(f=0.5),
        fraud_rate=0.25,
        seed=19,
    )
    for _ in range(30):
        alliance.run_round(applications_per_round=10)
    report = alliance.report()

    print(
        format_table(
            ["metric", "value"],
            [
                ("applications processed", report.applications),
                ("honest applications", report.honest_applications),
                ("fraudulent applications", report.fraudulent_applications),
                ("fraud recorded as valid", report.fraud_on_chain_as_valid),
                ("fraud caught", report.fraud_caught),
                ("fraud leakage", f"{report.fraud_leakage:.1%}"),
            ],
        )
    )
    print()
    total = report.honest_agent_revenue + report.biased_agent_revenue
    print(
        format_table(
            ["agent group", "revenue", "share"],
            [
                (
                    "honest (8 agents)",
                    f"{report.honest_agent_revenue:.2f}",
                    f"{report.honest_agent_revenue / total:.1%}",
                ),
                (
                    "commission-biased (2 agents)",
                    f"{report.biased_agent_revenue:.2f}",
                    f"{report.biased_agent_revenue / total:.1%}",
                ),
            ],
        )
    )
    print()
    print("misreport counters (checked transactions) per agent:")
    gov = alliance.engine.governors[alliance.topology.governors[0]]
    rows = [
        (
            c,
            gov.book.vector(c).misreport,
            "biased" if c in biased else "honest",
        )
        for c in alliance.topology.collectors
    ]
    print(format_table(["agent", "w_misreport", "type"], rows))


if __name__ == "__main__":
    main()
