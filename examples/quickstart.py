#!/usr/bin/env python3
"""Quickstart: run the full three-tier protocol for a few rounds.

Builds the Figure-1 hierarchy (16 providers, 8 collectors, 4 governors),
runs 20 rounds of a mixed-honesty workload through collecting /
uploading / processing / arguing, then verifies the five Section-3.1
safety & liveness properties and prints a per-governor summary.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ProtocolEngine, ProtocolParams, Topology
from repro.agents.behaviors import ConcealBehavior, MisreportBehavior
from repro.analysis import format_table, summarize_run
from repro.ledger import check_all_properties
from repro.workloads import BernoulliWorkload


def main() -> None:
    topo = Topology.regular(l=16, n=8, m=4, r=4)
    params = ProtocolParams(f=0.5, beta=0.9, argue_window=64)
    # Two collectors misbehave; the rest are honest.
    behaviors = {
        "c0": MisreportBehavior(p=0.4),
        "c1": ConcealBehavior(q=0.5),
    }
    engine = ProtocolEngine(topo, params, behaviors=behaviors, seed=42)
    workload = BernoulliWorkload(topo.providers, p_valid=0.8, seed=7)

    for _ in range(20):
        engine.run_round(workload.take(32))
    engine.finalize()

    report = check_all_properties(engine.ledgers(), engine.transcript)
    print(f"chain height: {engine.store.height}")
    print(f"all five protocol properties hold: {report.all_hold}")
    if not report.all_hold:
        for violation in report.violations:
            print("  !!", violation)

    summary = summarize_run(engine)
    rows = [
        (
            g.governor,
            g.screened,
            g.validations,
            f"{g.check_rate:.3f}",
            g.unchecked,
            g.mistakes,
            f"{g.expected_loss:.2f}",
        )
        for g in summary.governors
    ]
    print()
    print(
        format_table(
            ["governor", "screened", "validated", "check-rate", "unchecked", "mistakes", "E[loss]"],
            rows,
        )
    )

    print()
    leader_book = engine.governors[topo.governors[0]].book
    weight_rows = [
        (c, f"{leader_book.weight(c, topo.providers_of(c)[0]):.4f}")
        for c in topo.collectors
    ]
    print(format_table(["collector", "weight (first provider)"], weight_rows))
    print()
    print("note how c0 (misreporter) and c1 (concealer) lost weight;")
    print("their block-reward share collapses with it.")


if __name__ == "__main__":
    main()
