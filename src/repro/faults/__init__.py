"""Deterministic fault injection for the simulated network.

The paper assumes a synchronous, fault-free substrate; this package
models the cracks — per-link message loss/duplication/reordering, timed
crash-stop and crash-recovery node faults, and partition windows — as a
seeded :class:`FaultPlan` executed by a :class:`FaultInjector` hooked
into :class:`~repro.network.simnet.SyncNetwork`.  The recovery
machinery it exercises lives in ``repro.network.reliable`` (ack/
retransmit channels), ``repro.network.broadcast`` (gap repair with
sequencer failover), and ``repro.core.netengine`` (crash-recovery
wiring).  :class:`DiskFaultPlan` extends the same seeded-fault idea to
bytes at rest: it corrupts a durable ledger directory
(:mod:`repro.storage`) so the restart-from-disk path is tested
adversarially too.
"""

from repro.faults.disk import DISK_FAULT_KINDS, AppliedDiskFault, DiskFaultPlan
from repro.faults.injector import FaultInjectionStats, FaultInjector
from repro.faults.plan import (
    FaultAction,
    FaultPlan,
    LinkFaultSpec,
    NodeFaultSpec,
    PartitionWindow,
)

__all__ = [
    "DISK_FAULT_KINDS",
    "AppliedDiskFault",
    "DiskFaultPlan",
    "FaultAction",
    "FaultInjectionStats",
    "FaultInjector",
    "FaultPlan",
    "LinkFaultSpec",
    "NodeFaultSpec",
    "PartitionWindow",
]
