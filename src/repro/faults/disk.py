"""Seeded disk-fault injection against a durable ledger directory.

The network :class:`~repro.faults.plan.FaultPlan` corrupts messages in
flight; :class:`DiskFaultPlan` corrupts bytes at rest.  Each fault kind
models a real storage failure mode:

``torn_record``
    A crash mid-append leaves a partial frame at the tail of the final
    segment (the classic torn write).
``lost_fsync``
    The process crashed after ``write`` but before the data hit the
    platter: the last whole record(s) vanish, frame-aligned — the log
    is *shorter*, not corrupt.
``truncated_segment``
    A sealed (non-final) segment loses its tail — e.g. a filesystem
    that recovered to an old inode size.
``bit_flip``
    One bit flips somewhere in a segment (bad sector, bit rot).
``corrupt_checkpoint``
    The newest checkpoint file is damaged in place.
``missing_checkpoint``
    The newest checkpoint file disappears entirely.

All randomness flows from ``numpy.random.default_rng(seed)``, so a
given plan corrupts the same bytes on every run.  The contract tested
by ``tests/test_disk_faults.py``: every fault is *detected* by
:func:`repro.storage.recover` (surfaced in ``RecoveryReport``) — or, for
the frame-aligned ``lost_fsync``/``missing_checkpoint`` kinds, visibly
shortens the recovered state — and recovery degrades to the last good
checkpoint and/or peer sync, never to silently loading bad blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.exceptions import ConfigurationError
from repro.storage.segments import _HEADER, SEGMENT_GLOB, frame_spans

__all__ = ["DISK_FAULT_KINDS", "AppliedDiskFault", "DiskFaultPlan"]

DISK_FAULT_KINDS = (
    "torn_record",
    "lost_fsync",
    "truncated_segment",
    "bit_flip",
    "corrupt_checkpoint",
    "missing_checkpoint",
)


@dataclass(frozen=True)
class AppliedDiskFault:
    """One corruption actually written to disk."""

    kind: str
    target: str
    detail: str


@dataclass(frozen=True)
class DiskFaultPlan:
    """An ordered, seeded list of at-rest corruptions.

    Built fluently::

        plan = DiskFaultPlan(seed=7).with_fault("torn_record")
        applied = plan.apply(ledger_dir)
    """

    seed: int = 0
    faults: tuple[str, ...] = field(default_factory=tuple)

    def with_fault(self, kind: str) -> "DiskFaultPlan":
        if kind not in DISK_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown disk fault {kind!r}; choose from {DISK_FAULT_KINDS}"
            )
        return replace(self, faults=self.faults + (kind,))

    def apply(self, directory: str | Path) -> list[AppliedDiskFault]:
        """Corrupt ``directory`` in place; returns what was done.

        A fault with no viable target (e.g. ``missing_checkpoint`` on a
        checkpoint-free directory) is skipped and simply absent from
        the returned list.
        """
        directory = Path(directory)
        rng = np.random.default_rng(self.seed)
        applied = []
        for kind in self.faults:
            result = _DISPATCH[kind](directory, rng)
            if result is not None:
                applied.append(result)
        return applied


def _segments(directory: Path) -> list[Path]:
    return [p for p in sorted(directory.glob(SEGMENT_GLOB)) if p.stat().st_size > 0]


def _checkpoints(directory: Path) -> list[Path]:
    return sorted(directory.glob("checkpoint-*.json"))


def _torn_record(directory: Path, rng: np.random.Generator) -> AppliedDiskFault | None:
    segs = _segments(directory)
    if not segs:
        return None
    path = segs[-1]
    spans = frame_spans(path)
    if not spans:
        return None
    offset, end, serial = spans[-1]
    # Cut strictly inside the final frame: past its header start, short
    # of its last byte.
    lo, hi = offset + 1, end - 1
    cut = int(rng.integers(lo, hi + 1)) if hi > lo else hi
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return AppliedDiskFault(
        kind="torn_record",
        target=path.name,
        detail=f"frame for serial {serial} cut at byte {cut} (frame {offset}..{end})",
    )


def _lost_fsync(directory: Path, rng: np.random.Generator) -> AppliedDiskFault | None:
    segs = _segments(directory)
    if not segs:
        return None
    path = segs[-1]
    spans = frame_spans(path)
    if not spans:
        return None
    drop = min(int(rng.integers(1, 3)), len(spans))
    keep_until = spans[-drop][0]
    with open(path, "r+b") as fh:
        fh.truncate(keep_until)
    serials = [s for _, _, s in spans[-drop:]]
    return AppliedDiskFault(
        kind="lost_fsync",
        target=path.name,
        detail=f"unsynced record(s) for serial(s) {serials} lost on crash",
    )


def _truncated_segment(
    directory: Path, rng: np.random.Generator
) -> AppliedDiskFault | None:
    segs = _segments(directory)
    if not segs:
        return None
    # Prefer a sealed segment so the damage is mid-log, not a torn tail.
    pool = segs[:-1] if len(segs) > 1 else segs
    path = pool[int(rng.integers(len(pool)))]
    size = path.stat().st_size
    cut = max(1, int(size * float(rng.uniform(0.2, 0.8))))
    if cut >= size:
        cut = size - 1
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    return AppliedDiskFault(
        kind="truncated_segment",
        target=path.name,
        detail=f"segment truncated from {size} to {cut} bytes",
    )


def _bit_flip(directory: Path, rng: np.random.Generator) -> AppliedDiskFault | None:
    segs = _segments(directory)
    if not segs:
        return None
    path = segs[int(rng.integers(len(segs)))]
    data = bytearray(path.read_bytes())
    if len(data) <= _HEADER.size:
        return None
    # Land inside a payload region so the CRC (not just framing) is hit.
    offset = int(rng.integers(_HEADER.size, len(data)))
    bit = int(rng.integers(8))
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return AppliedDiskFault(
        kind="bit_flip",
        target=path.name,
        detail=f"bit {bit} of byte {offset} flipped",
    )


def _corrupt_checkpoint(
    directory: Path, rng: np.random.Generator
) -> AppliedDiskFault | None:
    ckpts = _checkpoints(directory)
    if not ckpts:
        return None
    path = ckpts[-1]
    data = bytearray(path.read_bytes())
    if not data:
        return None
    offset = int(rng.integers(len(data)))
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return AppliedDiskFault(
        kind="corrupt_checkpoint",
        target=path.name,
        detail=f"byte {offset} xor'd",
    )


def _missing_checkpoint(
    directory: Path, rng: np.random.Generator
) -> AppliedDiskFault | None:
    ckpts = _checkpoints(directory)
    if not ckpts:
        return None
    path = ckpts[-1]
    path.unlink()
    return AppliedDiskFault(
        kind="missing_checkpoint", target=path.name, detail="checkpoint file deleted"
    )


_DISPATCH = {
    "torn_record": _torn_record,
    "lost_fsync": _lost_fsync,
    "truncated_segment": _truncated_segment,
    "bit_flip": _bit_flip,
    "corrupt_checkpoint": _corrupt_checkpoint,
    "missing_checkpoint": _missing_checkpoint,
}
