"""Interprets a :class:`~repro.faults.plan.FaultPlan` against a network.

:class:`FaultInjector` is the runtime half of the fault subsystem.  It

* installs itself as the :attr:`SyncNetwork.fault_filter` interception
  hook, drawing per-message loss / duplication / reordering decisions
  from its own seeded RNG (independent of workload and latency RNGs, so
  enabling faults never perturbs the rest of the simulation);
* schedules the plan's node crashes, recoveries, and partition windows
  on the simulator, routing them through caller-supplied callbacks so
  an engine can run real crash semantics (volatile-state loss, ledger
  resync) rather than a bare partition.

Certain protocol-internal control traffic must stay out of scope or the
recovery machinery would sabotage itself: acks and gap-repair NACKs are
themselves the *retry* path, and the auditor's commit votes must not
perturb (or be perturbed by) the fault RNG stream, so the injector
exempts payload kinds in :attr:`EXEMPT_KINDS` from message faults
(crashes still silence them — a dead node sends nothing).  The exempt
check runs before any RNG draw, which is what keeps auditor-on and
auditor-off runs bit-identical.

Beyond omission faults, the injector optionally consults a
:class:`~repro.byzantine.tampering.MessageTamperer` (its own seeded
RNG) and carries its payload substitutions through
:attr:`~repro.faults.plan.FaultAction.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.exceptions import SimulationError
from repro.faults.plan import FaultAction, FaultPlan
from repro.network.simnet import SyncNetwork

__all__ = ["FaultInjectionStats", "FaultInjector"]

_CLEAN = FaultAction()


@dataclass
class FaultInjectionStats:
    """What the injector actually did, for reports and assertions."""

    messages_seen: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    tampered: int = 0
    crashes: int = 0
    recoveries: int = 0
    partitions_opened: int = 0
    partitions_healed: int = 0


@dataclass
class FaultInjector:
    """Drives one :class:`FaultPlan` on one network.

    Args:
        plan: The schedule to execute.
        on_crash / on_recover: Node-fault callbacks; default to the
            network's ``partition`` / ``heal`` (pure connectivity
            faults).  :class:`repro.core.netengine.NetworkedProtocolEngine`
            passes its own crash/recover methods so governors lose
            volatile state and resync their ledgers.
    """

    #: Payload kinds never subjected to message faults (see module doc).
    EXEMPT_KINDS = frozenset({"rel-ack", "abcast-nack", "audit-commit"})

    plan: FaultPlan
    on_crash: Callable[[str], None] | None = None
    on_recover: Callable[[str], None] | None = None
    #: Optional Byzantine tamperer consulted per non-exempt message; its
    #: substitutions flow through ``FaultAction.replace``.  Draws from
    #: its own seeded RNG, never from the injector's.
    tamperer: Any | None = None
    stats: FaultInjectionStats = field(default_factory=FaultInjectionStats)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.plan.seed)
        self._installed_on: SyncNetwork | None = None

    # -- installation ---------------------------------------------------

    def install(self, network: SyncNetwork) -> "FaultInjector":
        """Hook message faults and schedule node/partition faults.

        Idempotent per network; fault times already in the past are
        clamped to "now" so a plan can be installed mid-run.  A network
        accepts only one injector — silently replacing an installed
        plan's message filter would leave its node faults scheduled but
        its link faults gone, a hard-to-debug half-plan.
        """
        if self._installed_on is network:
            return self
        if network.fault_filter is not None:
            raise SimulationError(
                "network already has a fault filter installed; "
                "one FaultInjector per network"
            )
        self._installed_on = network
        network.fault_filter = self._filter
        sim = network.sim
        crash = self.on_crash or network.partition
        recover = self.on_recover or network.heal

        def at(time: float, callback: Callable[[], None], label: str) -> None:
            sim.schedule_at(max(time, sim.now), callback, label=label)

        for nf in self.plan.node_faults:
            at(nf.crash_at, self._node_event(crash, nf.node, "crashes"), f"crash:{nf.node}")
            if nf.recover_at is not None:
                at(
                    nf.recover_at,
                    self._node_event(recover, nf.node, "recoveries"),
                    f"recover:{nf.node}",
                )
        for window in self.plan.partitions:
            at(window.start, self._window_event(network, window, True), "partition:open")
            at(window.end, self._window_event(network, window, False), "partition:heal")
        return self

    def _node_event(self, action: Callable[[str], None], node: str, counter: str):
        def fire() -> None:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            action(node)
        return fire

    def _window_event(self, network: SyncNetwork, window, opening: bool):
        def fire() -> None:
            for node in window.nodes:
                if opening:
                    network.partition(node)
                else:
                    network.heal(node)
            if opening:
                self.stats.partitions_opened += 1
            else:
                self.stats.partitions_healed += 1
        return fire

    # -- per-message hook ------------------------------------------------

    def _filter(self, sender: str, receiver: str, payload: Any) -> FaultAction:
        self.stats.messages_seen += 1
        if getattr(payload, "kind", None) in self.EXEMPT_KINDS:
            return _CLEAN
        # The tamperer runs before the omission draws but on its own RNG,
        # so adding/removing it never perturbs the loss/dup/reorder
        # stream of an existing seeded plan.
        replacement = None
        if self.tamperer is not None:
            replacement = self.tamperer.maybe_tamper(sender, receiver, payload)
            if replacement is not None:
                self.stats.tampered += 1
        spec = self.plan.spec_for(sender, receiver)
        if spec.is_clean:
            return _CLEAN if replacement is None else FaultAction(replace=replacement)
        if spec.loss and self._rng.random() < spec.loss:
            self.stats.dropped += 1
            return FaultAction(drop=True)
        duplicates = 0
        extra_delay = 0.0
        if spec.duplicate and self._rng.random() < spec.duplicate:
            self.stats.duplicated += 1
            duplicates = 1
        if spec.reorder and self._rng.random() < spec.reorder:
            self.stats.reordered += 1
            extra_delay = float(self._rng.uniform(0.0, spec.reorder_delay)) or spec.reorder_delay
        if duplicates == 0 and extra_delay == 0.0 and replacement is None:
            return _CLEAN
        return FaultAction(
            duplicates=duplicates, extra_delay=extra_delay, replace=replacement
        )
