"""Socket-boundary fault injection: a frame-aware chaos TCP proxy.

:class:`TransportFaultProxy` sits between a
:class:`~repro.network.realnet.RealNetwork` driver and one custodian
peer and applies a seeded :class:`~repro.faults.plan.FaultPlan` to the
**wire frames themselves** — the physical twin of the logical
:class:`~repro.faults.injector.FaultInjector`:

* ``default_link.loss`` — the frame is swallowed (the sender's ack
  deadline expires and it retransmits);
* ``default_link.duplicate`` — the frame is forwarded twice (the
  receiver acks both; duplicate acks are ignored);
* ``default_link.reorder`` — the frame is held for a uniform draw in
  ``(0, reorder_delay]`` *wall* seconds while later frames overtake it;
* partition windows and node crash schedules — reinterpreted on the
  **wall clock**, as seconds since proxy start: while a window is open
  the proxy kills every live connection and refuses new ones, forcing
  the driver through its reconnect-backoff path until the window
  closes.

Because the logical delivery schedule is seeded independently of the
wire (see :mod:`repro.network.realnet`), socket chaos can delay or
abort a run but never alter which messages the engines deliver — a
chaos run that completes must therefore commit the *identical* chain
tip and a clean safety audit, which is exactly what the chaos tests
assert.

All faulting is seeded (``plan.seed``) per proxy and per direction, so
a given proxy decides the same fates for the same frame sequence —
though wall-clock interleaving of retransmissions makes full-run
determinism a property of the *logical* layer only.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Callable

from repro.exceptions import FrameError, PeerUnreachableError
from repro.faults.plan import FaultPlan
from repro.network.realnet import FrameReader, encode_frame

__all__ = ["TransportFaultProxy", "start_proxy_thread"]


class TransportFaultProxy:
    """A seeded chaos proxy in front of one custodian peer."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: FaultPlan,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._patrol: asyncio.Task | None = None
        self._t0 = time.monotonic()
        self._writers: set[asyncio.StreamWriter] = set()
        #: (start, end) wall-second offsets during which the link is dark.
        self._blackouts: list[tuple[float, float]] = [
            (window.start, window.end) for window in plan.partitions
        ] + [
            (spec.crash_at, spec.recover_at if spec.recover_at is not None else float("inf"))
            for spec in plan.node_faults
        ]
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.frames_delayed = 0
        self.connections_killed = 0

    # -- chaos clock -------------------------------------------------------

    def _dark(self) -> bool:
        now = time.monotonic() - self._t0
        return any(start <= now < end for start, end in self._blackouts)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = time.monotonic()
        if self._blackouts:
            self._patrol = asyncio.ensure_future(self._blackout_patrol())

    async def _blackout_patrol(self) -> None:
        """Kill live connections the moment a dark window opens."""
        while True:
            await asyncio.sleep(0.02)
            if self._dark():
                for writer in list(self._writers):
                    self.connections_killed += 1
                    writer.close()
                self._writers.clear()

    def close(self) -> None:
        if self._patrol is not None:
            self._patrol.cancel()
        if self._server is not None:
            self._server.close()

    # -- proxying ----------------------------------------------------------

    async def _on_client(self, client_reader, client_writer) -> None:
        if self._dark():
            client_writer.close()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.close()
            return
        self._writers.update((client_writer, up_writer))
        pumps = [
            asyncio.ensure_future(
                self._pump(client_reader, up_writer, direction=0)
            ),
            asyncio.ensure_future(
                self._pump(up_reader, client_writer, direction=1)
            ),
        ]
        await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        for pump in pumps:
            pump.cancel()
        await asyncio.gather(*pumps, return_exceptions=True)
        for writer in (client_writer, up_writer):
            self._writers.discard(writer)
            writer.close()

    async def _pump(self, reader, writer, direction: int) -> None:
        rng = random.Random((self.plan.seed << 1) | direction)
        spec = self.plan.default_link
        frames = FrameReader()
        lock = asyncio.Lock()

        async def forward(frame: bytes) -> None:
            async with lock:
                writer.write(frame)
                await writer.drain()

        while True:
            data = await reader.read(65536)
            if not data:
                return
            try:
                decoded = frames.feed(data)
            except FrameError:
                return  # corrupt stream: sever both sides
            for seq, kind, body in decoded:
                if self._dark():
                    return  # window opened mid-pump: sever
                frame = encode_frame(seq, kind, body)
                if spec.loss and rng.random() < spec.loss:
                    self.frames_dropped += 1
                    continue
                if spec.reorder and rng.random() < spec.reorder:
                    self.frames_delayed += 1
                    delay = rng.uniform(0.0, spec.reorder_delay)
                    asyncio.get_running_loop().create_task(
                        self._delayed(forward, frame, delay)
                    )
                    continue
                await forward(frame)
                if spec.duplicate and rng.random() < spec.duplicate:
                    self.frames_duplicated += 1
                    await forward(frame)

    async def _delayed(
        self, forward: Callable, frame: bytes, delay: float
    ) -> None:
        await asyncio.sleep(delay)
        try:
            await forward(frame)
        except (ConnectionError, RuntimeError):
            pass  # connection died while the frame was held


def start_proxy_thread(
    upstream_host: str, upstream_port: int, plan: FaultPlan
) -> tuple[TransportFaultProxy, Callable[[], None]]:
    """Run a :class:`TransportFaultProxy` on a background thread.

    Returns ``(proxy, stop)``; ``proxy.port`` is bound on return.
    """
    proxy = TransportFaultProxy(upstream_host, upstream_port, plan)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def main() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(proxy.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            proxy.close()
            tasks = asyncio.all_tasks(loop)
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=main, name="fault-proxy", daemon=True)
    thread.start()
    if not started.wait(timeout=10.0):  # pragma: no cover - defensive
        raise PeerUnreachableError("fault-proxy", "proxy thread failed to bind")

    def stop() -> None:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)

    return proxy, stop
