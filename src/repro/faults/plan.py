"""Declarative, seeded fault schedules for the simulated network.

A :class:`FaultPlan` is pure data: per-link message-fault probabilities
(loss, duplication, reordering), timed node crashes (crash-stop or
crash-recovery), and partition windows.  It is interpreted by
:class:`repro.faults.injector.FaultInjector`, which installs it on a
:class:`~repro.network.simnet.SyncNetwork` — every engine built on the
network then runs under the plan unchanged.

Plans are deterministic given their ``seed``: the same plan over the
same traffic produces the same drops, duplicates, and delays, so chaos
tests are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "LinkFaultSpec",
    "NodeFaultSpec",
    "PartitionWindow",
    "FaultAction",
    "FaultPlan",
]


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaultSpec:
    """Per-message fault probabilities on one (or every) directed link.

    Attributes:
        loss: P[message silently dropped].
        duplicate: P[one extra copy delivered] (given not dropped).
        reorder: P[delivery delayed past later traffic] (given not
            dropped) — the delayed copy escapes the per-channel FIFO
            clamp, so later sends overtake it.
        reorder_delay: Upper bound of the injected extra delay; the
            draw is uniform in ``(0, reorder_delay]``.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 0.1

    def __post_init__(self) -> None:
        _check_prob("loss", self.loss)
        _check_prob("duplicate", self.duplicate)
        _check_prob("reorder", self.reorder)
        if self.reorder_delay <= 0:
            raise ConfigurationError(
                f"reorder_delay must be positive, got {self.reorder_delay}"
            )

    @property
    def is_clean(self) -> bool:
        """Whether this spec injects nothing."""
        return self.loss == 0.0 and self.duplicate == 0.0 and self.reorder == 0.0


@dataclass(frozen=True)
class NodeFaultSpec:
    """A timed crash: crash-stop (``recover_at`` None) or crash-recovery."""

    node: str
    crash_at: float
    recover_at: float | None = None

    def __post_init__(self) -> None:
        if self.crash_at < 0:
            raise ConfigurationError(f"crash_at must be >= 0, got {self.crash_at}")
        if self.recover_at is not None and self.recover_at <= self.crash_at:
            raise ConfigurationError(
                f"recover_at {self.recover_at} must be after crash_at {self.crash_at}"
            )


@dataclass(frozen=True)
class PartitionWindow:
    """A set of nodes cut off from the rest during ``[start, end)``.

    Unlike a crash, a partitioned node keeps its volatile state — on
    heal it resumes with its buffers intact (and relies on gap repair
    or ledger sync for what it missed).
    """

    nodes: tuple[str, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("partition window needs at least one node")
        if not 0 <= self.start < self.end:
            raise ConfigurationError(
                f"need 0 <= start < end, got [{self.start}, {self.end})"
            )


@dataclass(frozen=True)
class FaultAction:
    """What the injector decided for one message (simnet hook contract).

    ``replace`` extends the omission-fault contract to Byzantine
    *tampering*: when not None, the network delivers this payload in
    place of the original (see :mod:`repro.byzantine.tampering`).
    """

    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0
    replace: Any = None


@dataclass
class FaultPlan:
    """A complete seeded fault schedule.

    Build fluently::

        plan = (
            FaultPlan(seed=7)
            .with_default_link(LinkFaultSpec(loss=0.1))
            .with_link("c0", "g0", LinkFaultSpec(loss=0.5, duplicate=0.2))
            .with_crash("g2", at=1.0, recover_at=3.0)
            .with_partition(("g1",), start=2.0, end=2.5)
        )
    """

    seed: int = 0
    default_link: LinkFaultSpec = field(default_factory=LinkFaultSpec)
    links: dict[tuple[str, str], LinkFaultSpec] = field(default_factory=dict)
    node_faults: list[NodeFaultSpec] = field(default_factory=list)
    partitions: list[PartitionWindow] = field(default_factory=list)

    # -- fluent builders ------------------------------------------------

    def with_default_link(self, spec: LinkFaultSpec) -> "FaultPlan":
        """Set the fault spec applied to every link without an override."""
        self.default_link = spec
        return self

    def with_link(self, sender: str, receiver: str, spec: LinkFaultSpec) -> "FaultPlan":
        """Override the fault spec of one directed link."""
        self.links[(sender, receiver)] = spec
        return self

    def with_loss(self, loss: float) -> "FaultPlan":
        """Shorthand: uniform per-link loss probability."""
        self.default_link = replace(self.default_link, loss=loss)
        return self

    def with_crash(self, node: str, at: float, recover_at: float | None = None) -> "FaultPlan":
        """Schedule a crash-stop (or crash-recovery) fault for ``node``."""
        self.node_faults.append(NodeFaultSpec(node=node, crash_at=at, recover_at=recover_at))
        return self

    def with_partition(self, nodes: tuple[str, ...], start: float, end: float) -> "FaultPlan":
        """Schedule a partition window."""
        self.partitions.append(PartitionWindow(nodes=tuple(nodes), start=start, end=end))
        return self

    # -- queries --------------------------------------------------------

    def spec_for(self, sender: str, receiver: str) -> LinkFaultSpec:
        """The effective spec on the directed link sender→receiver."""
        return self.links.get((sender, receiver), self.default_link)

    @property
    def has_message_faults(self) -> bool:
        """Whether any link injects loss/duplication/reordering."""
        return not self.default_link.is_clean or any(
            not spec.is_clean for spec in self.links.values()
        )
