"""Paper-style text tables for bench output.

The benches print the same rows/series the evaluation claims describe;
:func:`format_table` renders aligned monospace tables, and
:func:`format_sweep` turns a :class:`~repro.analysis.metrics.SweepTable`
into one.  Keeping formatting in one place makes every bench's output
uniform and diff-able into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import SweepTable
from repro.exceptions import ConfigurationError

__all__ = ["format_table", "format_sweep", "banner", "sparkline"]


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table with a header rule."""
    if not headers:
        raise ConfigurationError("table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths, strict=True))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_sweep(table: SweepTable) -> str:
    """Render a sweep table: parameter column + every metric column."""
    names = table.metric_names()
    headers = [table.parameter] + names
    rows = [
        [value] + [metrics.get(name, float("nan")) for name in names]
        for value, metrics in table.rows()
    ]
    return format_table(headers, rows)


def banner(title: str, width: int = 72) -> str:
    """A section banner for bench stdout."""
    pad = max(width - len(title) - 2, 0)
    left = pad // 2
    right = pad - left
    return f"{'=' * left} {title} {'=' * right}"


_SPARK_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 60, log_scale: bool = False) -> str:
    """An ASCII sparkline of a numeric series (for terminal examples).

    Args:
        values: The series; length > width is downsampled by striding.
        width: Maximum characters.
        log_scale: Plot log10(values) — right for reputation weights,
            which decay multiplicatively over many orders of magnitude.

    Returns:
        A single-line bar string ("" for an empty series).
    """
    import math

    series = [float(v) for v in values]
    if not series:
        return ""
    if log_scale:
        floor = min((v for v in series if v > 0), default=1e-300)
        series = [math.log10(max(v, floor)) for v in series]
    if len(series) > width:
        stride = len(series) / width
        series = [series[int(i * stride)] for i in range(width)]
    lo, hi = min(series), max(series)
    if hi == lo:
        return _SPARK_BARS[0] * len(series)
    out = []
    for v in series:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_BARS) - 1))
        out.append(_SPARK_BARS[idx])
    return "".join(out)
