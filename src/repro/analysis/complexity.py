"""Communication-complexity verification (experiment E7).

Section 4.1 claims ``O(b_limit * m)`` messages for an ordinary block and
``O(m^2)`` for a stake-transform block.  The helpers here fit measured
message counts against those growth laws:

* :func:`fit_power_law` — least-squares exponent of count vs m;
* :func:`fit_linear` / :func:`fit_quadratic` — explicit-model fits with
  an R^2 so the bench can report "matches O(m) with R^2 = ..." rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.stats import loglog_slope
from repro.exceptions import ConfigurationError

__all__ = ["FitResult", "fit_power_law", "fit_linear", "fit_quadratic"]


@dataclass(frozen=True)
class FitResult:
    """One model fit: coefficients plus goodness."""

    model: str
    coefficients: tuple[float, ...]
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted model at ``x``."""
        if self.model == "power":
            scale, exponent = self.coefficients
            return scale * x**exponent
        return float(np.polyval(self.coefficients, x))


def _r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    ss_res = float(((y - y_hat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _check(xs: Sequence[float], ys: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 3:
        raise ConfigurationError("complexity fits need >= 3 paired points")
    return x, y


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a * x^b`` by log-log least squares."""
    x, y = _check(xs, ys)
    if np.any(y <= 0):
        raise ConfigurationError("power-law fit needs positive counts")
    exponent = loglog_slope(x, y)
    intercept = float(np.mean(np.log(y) - exponent * np.log(x)))
    scale = float(np.exp(intercept))
    y_hat = scale * x**exponent
    return FitResult(
        model="power", coefficients=(scale, exponent), r_squared=_r_squared(y, y_hat)
    )


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a*x + b``."""
    x, y = _check(xs, ys)
    coeffs = np.polyfit(x, y, 1)
    return FitResult(
        model="linear",
        coefficients=tuple(float(c) for c in coeffs),
        r_squared=_r_squared(y, np.polyval(coeffs, x)),
    )


def fit_quadratic(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a*x^2 + b*x + c``."""
    x, y = _check(xs, ys)
    coeffs = np.polyfit(x, y, 2)
    return FitResult(
        model="quadratic",
        coefficients=tuple(float(c) for c in coeffs),
        r_squared=_r_squared(y, np.polyval(coeffs, x)),
    )
