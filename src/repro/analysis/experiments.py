"""The experiment registry: one source of truth for E*/A*/X* ids.

DESIGN.md's experiment index, EXPERIMENTS.md's records, and the bench
files all refer to experiment ids (E1..E11, A1-A4, X1-X4).  This module
makes the mapping executable: each :class:`Experiment` names its claim,
its bench node, and the results file its table lands in, so tooling can

* list what exists (``registry()``),
* check that a bench run produced every expected table
  (``missing_results()``),
* and load a table's text for report generation (``load_result``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["Experiment", "registry", "missing_results", "load_result"]

#: Default location of bench outputs, relative to the repository root.
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment."""

    exp_id: str
    claim: str
    bench: str
    result_file: str


_REGISTRY: tuple[Experiment, ...] = (
    Experiment("E1", "Theorem 1: L_T <= S_min + O(sqrt(T))",
               "bench_regret.py::test_e1_theorem1_regret_curve", "E1_regret.txt"),
    Experiment("E1-latency", "latency only delays reputation updates",
               "bench_regret.py::test_e1_latency_only_delays_updates", "E1_latency.txt"),
    Experiment("E2", "Lemma 2: P[unchecked] <= f",
               "bench_unchecked.py::test_e2_lemma2_unchecked_rate", "E2_lemma2.txt"),
    Experiment("E3", "Theorem 3: Hoeffding concentration of the unchecked count",
               "bench_unchecked.py::test_e3_theorem3_concentration", "E3_theorem3.txt"),
    Experiment("E4", "Theorem 4: end-to-end loss bound",
               "bench_regret.py::test_e4_theorem4_end_to_end", "E4_theorem4.txt"),
    Experiment("E5", "f trades validation cost for unchecked risk",
               "bench_efficiency.py::test_e5_f_sweep", "E5_efficiency.txt"),
    Experiment("E6", "misconduct collapses collector revenue",
               "bench_incentives.py::test_e6_incentives", "E6_incentives.txt"),
    Experiment("E7", "O(b_limit*m) ordinary / O(m^2) stake-transform messages",
               "bench_consensus.py::test_e7_message_complexity", "E7_complexity.txt"),
    Experiment("E8", "reputation screening vs five baselines",
               "bench_baselines.py::test_e8_baseline_comparison", "E8_baselines.txt"),
    Experiment("E9", "the five Section-3.1 properties hold under adversaries",
               "bench_protocol.py::test_e9_protocol_properties", "E9_properties.txt"),
    Experiment("E9-net", "packet-level engine preserves the properties",
               "bench_protocol.py::test_e9_networked_engine", "E9net_packet.txt"),
    Experiment("E10", "PoS leadership proportional to stake",
               "bench_consensus.py::test_e10_leader_proportionality", "E10_pos.txt"),
    Experiment("E11a", "car-sharing case study (Section 5.1)",
               "bench_apps.py::test_e11_carsharing", "E11a_carsharing.txt"),
    Experiment("E11b", "insurance case study (Section 5.2)",
               "bench_apps.py::test_e11_insurance", "E11b_insurance.txt"),
    Experiment("A1", "beta schedule ablation",
               "bench_ablations.py::test_a1_beta_sweep", "A1_beta.txt"),
    Experiment("A2", "adaptive vs naive gamma rule",
               "bench_ablations.py::test_a2_gamma_rule", "A2_gamma.txt"),
    Experiment("A3", "source-selection rule ablation",
               "bench_ablations.py::test_a3_selection_rule", "A3_selection.txt"),
    Experiment("A4", "argue-window latency ablation",
               "bench_ablations.py::test_a4_argue_window", "A4_argue_window.txt"),
    Experiment("X1", "adaptive f (AIMD) extension",
               "bench_extensions.py::test_x1_adaptive_f", "X1_adaptive_f.txt"),
    Experiment("X2", "reputation gossip extension",
               "bench_extensions.py::test_x2_gossip", "X2_gossip.txt"),
    Experiment("X3", "partial governor visibility extension",
               "bench_extensions.py::test_x3_partial_visibility", "X3_visibility.txt"),
    Experiment("X4", "argue-abuse griefing cost",
               "bench_extensions.py::test_x4_argue_griefing", "X4_griefing.txt"),
)


def registry() -> tuple[Experiment, ...]:
    """All registered experiments, in presentation order."""
    return _REGISTRY


def missing_results(results_dir: pathlib.Path | None = None) -> list[str]:
    """Experiment ids whose result table is absent on disk.

    A fresh checkout returns everything; after
    ``pytest benchmarks/ --benchmark-only`` this must be empty — the
    test suite asserts exactly that invariant when results exist.
    """
    base = results_dir if results_dir is not None else RESULTS_DIR
    return [
        exp.exp_id
        for exp in _REGISTRY
        if not (base / exp.result_file).exists()
    ]


def load_result(exp_id: str, results_dir: pathlib.Path | None = None) -> str:
    """The rendered table for one experiment.

    Raises:
        ConfigurationError: unknown id or result not generated yet.
    """
    base = results_dir if results_dir is not None else RESULTS_DIR
    for exp in _REGISTRY:
        if exp.exp_id == exp_id:
            path = base / exp.result_file
            if not path.exists():
                raise ConfigurationError(
                    f"result for {exp_id} not generated; run: "
                    f"pytest benchmarks/{exp.bench.split('::')[0]} --benchmark-only"
                )
            return path.read_text()
    raise ConfigurationError(f"unknown experiment id {exp_id!r}")
