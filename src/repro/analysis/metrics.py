"""Run-level metric aggregation over protocol-engine executions.

Collects per-governor counters into the summary rows the benches print:
check rates, mistake counts, loss totals, validation cost — plus
cross-run sweep containers used by the f-sweep (E5) and baseline (E8)
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.protocol import ProtocolEngine
from repro.exceptions import ConfigurationError

__all__ = ["GovernorSummary", "RunSummary", "summarize_run", "SweepTable"]


@dataclass(frozen=True)
class GovernorSummary:
    """One governor's per-run totals."""

    governor: str
    screened: int
    validations: int
    unchecked: int
    mistakes: int
    expected_loss: float
    realized_loss: float
    forgeries_caught: int

    @property
    def check_rate(self) -> float:
        """Validations per screened transaction."""
        return self.validations / self.screened if self.screened else 0.0

    @property
    def unchecked_rate(self) -> float:
        """Unchecked fraction — Lemma 2 bounds its expectation by f."""
        return self.unchecked / self.screened if self.screened else 0.0


@dataclass(frozen=True)
class RunSummary:
    """A whole run: per-governor rows plus system totals."""

    governors: tuple[GovernorSummary, ...]
    rounds: int
    transactions: int
    provider_messages: int
    collector_messages: int
    governor_messages: int
    stake_messages: int
    argues: int
    rewards_paid: dict[str, float]

    @property
    def mean_unchecked_rate(self) -> float:
        """Average unchecked fraction across governors."""
        rates = [g.unchecked_rate for g in self.governors]
        return float(np.mean(rates)) if rates else 0.0

    @property
    def total_mistakes(self) -> int:
        """Sum of governor mistakes."""
        return sum(g.mistakes for g in self.governors)

    @property
    def total_validations(self) -> int:
        """Sum of governor validations (the protocol's main cost)."""
        return sum(g.validations for g in self.governors)


def summarize_run(engine: ProtocolEngine) -> RunSummary:
    """Snapshot an engine's metrics into a :class:`RunSummary`."""
    rows = []
    for gid, gov in sorted(engine.governors.items()):
        m = gov.metrics
        rows.append(
            GovernorSummary(
                governor=gid,
                screened=m.transactions_screened,
                validations=m.validations,
                unchecked=m.unchecked,
                mistakes=m.mistakes,
                expected_loss=m.expected_loss,
                realized_loss=m.realized_loss,
                forgeries_caught=m.forgeries_caught,
            )
        )
    em = engine.metrics
    return RunSummary(
        governors=tuple(rows),
        rounds=em.rounds,
        transactions=em.transactions_offered,
        provider_messages=em.provider_messages,
        collector_messages=em.collector_messages,
        governor_messages=em.governor_messages,
        stake_messages=em.stake_messages,
        argues=em.argues_total,
        rewards_paid=dict(em.rewards_paid),
    )


@dataclass
class SweepTable:
    """A parameter sweep accumulated into printable columns.

    ``add`` appends one row (parameter value -> metric dict); ``column``
    extracts a series; rows keep insertion order.
    """

    parameter: str
    _rows: list[tuple[float, dict[str, float]]] = field(default_factory=list)

    def add(self, value: float, metrics: dict[str, float]) -> None:
        """Record the metrics measured at ``parameter = value``."""
        self._rows.append((value, dict(metrics)))

    @property
    def values(self) -> list[float]:
        """The swept parameter values in insertion order."""
        return [v for v, _ in self._rows]

    def column(self, name: str) -> list[float]:
        """One metric across the sweep.

        Raises:
            ConfigurationError: if any row lacks the metric.
        """
        out = []
        for value, metrics in self._rows:
            if name not in metrics:
                raise ConfigurationError(
                    f"row {self.parameter}={value} lacks metric {name!r}"
                )
            out.append(metrics[name])
        return out

    def metric_names(self) -> list[str]:
        """Union of metric names across rows, first-seen order."""
        seen: dict[str, None] = {}
        for _value, metrics in self._rows:
            for name in metrics:
                seen.setdefault(name)
        return list(seen)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterable[tuple[float, dict[str, float]]]:
        """Iterate (value, metrics) rows."""
        return iter(self._rows)
