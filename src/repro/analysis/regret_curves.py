"""Regret-vs-horizon series for experiment E1.

Runs the reputation game across a horizon grid and multiple seeds,
collects mean regret per horizon, and checks the O(sqrt(T)) shape: the
log-log slope of regret vs T should be at most ~0.5 (plus noise), and
every point must sit below Theorem 1's explicit bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.agents.behaviors import CollectorBehavior
from repro.analysis.stats import loglog_slope
from repro.core.game import ReputationGame
from repro.core.regret import theorem1_bound
from repro.exceptions import ConfigurationError

__all__ = ["RegretPoint", "RegretCurve", "run_regret_curve"]


@dataclass(frozen=True)
class RegretPoint:
    """Mean measured quantities at one horizon."""

    horizon: int
    mean_expected_loss: float
    mean_s_min: float
    mean_regret: float
    bound_rhs: float

    @property
    def within_bound(self) -> bool:
        """Whether the measured loss respects Theorem 1's RHS."""
        return self.mean_expected_loss <= self.bound_rhs + 1e-9


@dataclass(frozen=True)
class RegretCurve:
    """The full series plus its scaling diagnosis."""

    points: tuple[RegretPoint, ...]

    @property
    def horizons(self) -> list[int]:
        """The swept T values."""
        return [p.horizon for p in self.points]

    @property
    def regrets(self) -> list[float]:
        """Mean regret per horizon."""
        return [p.mean_regret for p in self.points]

    def scaling_exponent(self) -> float:
        """Log-log slope of regret vs T (sqrt growth -> ~0.5)."""
        return loglog_slope(self.horizons, self.regrets)

    def all_within_bound(self) -> bool:
        """Whether every point respects Theorem 1."""
        return all(p.within_bound for p in self.points)


def run_regret_curve(
    behavior_factory: Callable[[], Sequence[CollectorBehavior]],
    horizons: Sequence[int],
    seeds: Sequence[int],
    p_valid: float = 0.5,
    beta: float | None = None,
    reveal_lag: int = 0,
) -> RegretCurve:
    """Measure mean regret across ``horizons`` x ``seeds``.

    Args:
        behavior_factory: Builds a *fresh* behaviour list per run
            (stateful behaviours must not leak across runs).
        horizons: The T grid.
        seeds: Seeds averaged per horizon.
        p_valid: Transaction validity rate.
        beta: Fixed conceal discount, or None for the tuned schedule.
        reveal_lag: Truth-revelation latency in transactions.
    """
    if not horizons or not seeds:
        raise ConfigurationError("need at least one horizon and one seed")
    points = []
    for horizon in horizons:
        losses, s_mins, regrets, bounds = [], [], [], []
        for seed in seeds:
            behaviors = behavior_factory()
            game = ReputationGame(
                behaviors=behaviors,
                horizon=horizon,
                beta=beta,
                p_valid=p_valid,
                reveal_lag=reveal_lag,
                seed=seed,
                track_curves=False,
            )
            result = game.run()
            losses.append(result.expected_loss)
            s_mins.append(result.s_min)
            regrets.append(result.regret)
            bounds.append(theorem1_bound(result.s_min, horizon, result.r))
        points.append(
            RegretPoint(
                horizon=horizon,
                mean_expected_loss=float(np.mean(losses)),
                mean_s_min=float(np.mean(s_mins)),
                mean_regret=float(np.mean(regrets)),
                bound_rhs=float(np.mean(bounds)),
            )
        )
    return RegretCurve(points=tuple(points))
