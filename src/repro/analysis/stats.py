"""Statistical helpers for the experiments.

* :func:`empirical_tail` — empirical ``P[X > threshold]`` over repeated
  runs, compared against Theorem 3's Hoeffding bound;
* :func:`chi_squared_uniformity` — the E10 test that leader election is
  proportional to stake;
* :func:`bootstrap_ci` — percentile bootstrap confidence intervals for
  the sweep tables;
* :func:`loglog_slope` — the scaling-exponent estimate used to verify
  O(sqrt(T)) regret and O(m^2) message growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "empirical_tail",
    "ChiSquaredResult",
    "chi_squared_uniformity",
    "bootstrap_ci",
    "loglog_slope",
]


def empirical_tail(samples: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly above ``threshold``."""
    if not samples:
        raise ConfigurationError("empirical tail needs at least one sample")
    arr = np.asarray(samples, dtype=float)
    return float(np.mean(arr > threshold))


@dataclass(frozen=True)
class ChiSquaredResult:
    """Goodness-of-fit outcome for categorical frequencies."""

    statistic: float
    dof: int
    p_value: float

    def consistent(self, alpha: float = 0.01) -> bool:
        """Whether the observed frequencies are consistent at level alpha."""
        return self.p_value >= alpha


def _chi2_sf(x: float, k: int) -> float:
    """Chi-squared survival function via the regularised upper gamma.

    Implemented with a series/continued-fraction split so the analysis
    layer stays importable without scipy (scipy is available in dev
    environments; this keeps the runtime dependency footprint at numpy).
    """
    a = k / 2.0
    s = x / 2.0
    if s < 0:
        raise ConfigurationError("chi-squared statistic cannot be negative")
    if s == 0:
        return 1.0
    # Regularised lower incomplete gamma P(a, s) by series (s < a+1) or
    # upper Q(a, s) by continued fraction (s >= a+1); Numerical-Recipes
    # style with double precision tolerances.
    import math

    gln = math.lgamma(a)
    if s < a + 1.0:
        term = 1.0 / a
        total = term
        ap = a
        for _ in range(1000):
            ap += 1.0
            term *= s / ap
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p_lower = total * math.exp(-s + a * math.log(s) - gln)
        return max(0.0, min(1.0, 1.0 - p_lower))
    b = s + 1.0 - a
    c = 1e300
    d = 1.0 / b
    h = d
    for i in range(1, 1000):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < 1e-300:
            d = 1e-300
        c = b + an / c
        if abs(c) < 1e-300:
            c = 1e-300
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    q_upper = math.exp(-s + a * math.log(s) - gln) * h
    return max(0.0, min(1.0, q_upper))


def chi_squared_uniformity(
    observed: Sequence[int], expected_proportions: Sequence[float]
) -> ChiSquaredResult:
    """Pearson chi-squared test of observed counts vs expected proportions.

    Used by E10: observed leadership counts per governor vs stake shares.
    """
    obs = np.asarray(observed, dtype=float)
    props = np.asarray(expected_proportions, dtype=float)
    if obs.shape != props.shape:
        raise ConfigurationError("observed and expected shapes differ")
    if obs.size < 2:
        raise ConfigurationError("need at least two categories")
    if abs(props.sum() - 1.0) > 1e-9:
        raise ConfigurationError(f"expected proportions sum to {props.sum()}, not 1")
    total = obs.sum()
    if total <= 0:
        raise ConfigurationError("no observations")
    expected = props * total
    if np.any(expected <= 0):
        raise ConfigurationError("every category needs positive expectation")
    statistic = float(((obs - expected) ** 2 / expected).sum())
    dof = obs.size - 1
    return ChiSquaredResult(statistic=statistic, dof=dof, p_value=_chi2_sf(statistic, dof))


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``samples``."""
    if not samples:
        raise ConfigurationError("bootstrap needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    arr = np.asarray(samples, dtype=float)
    rng = np.random.default_rng(seed)
    means = rng.choice(arr, size=(n_resamples, arr.size), replace=True).mean(axis=1)
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, lo)),
        float(np.quantile(means, 1.0 - lo)),
    )


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) on log(x) — the scaling exponent.

    ``ys`` entries that are zero are floored at the smallest positive
    value to keep the fit defined (a zero regret at small T is common).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ConfigurationError("need >= 2 paired points for a slope")
    if np.any(x <= 0):
        raise ConfigurationError("x values must be positive for a log-log fit")
    positive = y[y > 0]
    if positive.size == 0:
        return 0.0
    y = np.maximum(y, positive.min())
    slope, _intercept = np.polyfit(np.log(x), np.log(y), 1)
    return float(slope)
