"""Structured run tracing — JSONL event logs for debugging and replay.

Operations teams debugging a reputation anomaly need the run's history:
which collector uploaded what, which transactions went unchecked, when
argues fired, how rewards moved.  :class:`RunTracer` captures exactly
that, one JSON object per event, by observing a
:class:`~repro.core.protocol.ProtocolEngine` round-by-round:

    tracer = RunTracer()
    for _ in range(rounds):
        result = engine.run_round(workload.take(batch))
        tracer.observe_round(engine, result)
    tracer.dump(open("run.jsonl", "w"))

Event kinds: ``round`` (leader, block serial/size), ``record`` (each
block entry with label/status), ``upload`` (collector -> label),
``reward`` (per-collector payout), ``reputation`` (post-round weight
snapshot of flagged collectors).  The log is line-delimited JSON, so it
streams through standard tooling (jq, pandas).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

from repro.core.protocol import ProtocolEngine, RoundResult
from repro.exceptions import ConfigurationError

__all__ = ["RunTracer"]


@dataclass
class RunTracer:
    """Collects engine events as JSON-compatible dicts.

    Args:
        watch_collectors: Collector ids whose reputation to snapshot
            each round (empty = skip reputation events).
        watch_governor: Whose book the reputation snapshots come from.
            Books are *per governor*, so a fixed observer is required
            for a coherent time series; None picks the first governor
            (sorted) at the first observed round.
        include_uploads: Whether to log every upload (the most verbose
            event class; disable for long runs).
    """

    watch_collectors: tuple[str, ...] = ()
    watch_governor: str | None = None
    include_uploads: bool = True
    events: list[dict[str, Any]] = field(default_factory=list)

    def observe_round(self, engine: ProtocolEngine, result: RoundResult) -> None:
        """Record one executed round's events."""
        self.events.append(
            {
                "kind": "round",
                "round": result.round_number,
                "leader": result.leader,
                "serial": result.block.serial,
                "block_size": len(result.block),
                "argues_admitted": result.argues_admitted,
            }
        )
        for rec in result.block.tx_list:
            self.events.append(
                {
                    "kind": "record",
                    "round": result.round_number,
                    "tx_id": rec.tx.tx_id,
                    "provider": rec.tx.provider,
                    "label": int(rec.label),
                    "status": rec.status.value,
                }
            )
        if self.include_uploads:
            for upload in result.uploads:
                self.events.append(
                    {
                        "kind": "upload",
                        "round": result.round_number,
                        "tx_id": upload.tx.tx_id,
                        "collector": upload.collector,
                        "label": int(upload.label),
                    }
                )
        for collector, amount in sorted(result.rewards.items()):
            self.events.append(
                {
                    "kind": "reward",
                    "round": result.round_number,
                    "collector": collector,
                    "amount": amount,
                }
            )
        if self.watch_collectors:
            if self.watch_governor is None:
                self.watch_governor = sorted(engine.governors)[0]
            book = engine.governors[self.watch_governor].book
            for cid in self.watch_collectors:
                vector = book.vector(cid)
                self.events.append(
                    {
                        "kind": "reputation",
                        "round": result.round_number,
                        "governor": self.watch_governor,
                        "collector": cid,
                        "weights": dict(vector.provider_weights),
                        "misreport": vector.misreport,
                        "forge": vector.forge,
                    }
                )

    # -- queries ----------------------------------------------------------

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All events of one kind, in order."""
        return [e for e in self.events if e["kind"] == kind]

    def tx_history(self, tx_id: str) -> list[dict[str, Any]]:
        """Every event touching one transaction (uploads + records)."""
        return [e for e in self.events if e.get("tx_id") == tx_id]

    def reputation_series(self, collector: str, provider: str) -> list[float]:
        """A watched collector's weight w.r.t. one provider over rounds."""
        return [
            e["weights"][provider]
            for e in self.of_kind("reputation")
            if e["collector"] == collector and provider in e["weights"]
        ]

    # -- serialisation ------------------------------------------------------

    def dump(self, fp: TextIO) -> int:
        """Write the log as JSONL; returns the number of lines."""
        for event in self.events:
            fp.write(json.dumps(event, sort_keys=True))
            fp.write("\n")
        return len(self.events)

    @staticmethod
    def load(lines: Iterable[str]) -> "RunTracer":
        """Rebuild a tracer from JSONL lines.

        Raises:
            ConfigurationError: on malformed lines.
        """
        tracer = RunTracer()
        for i, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"bad JSONL at line {i}: {exc}") from exc
            if "kind" not in event:
                raise ConfigurationError(f"event at line {i} lacks a kind")
            tracer.events.append(event)
        return tracer
