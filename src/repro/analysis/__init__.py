"""Analysis layer: metrics aggregation, statistics, complexity fits,
regret curves, and paper-style table formatting."""

from repro.analysis.complexity import FitResult, fit_linear, fit_power_law, fit_quadratic
from repro.analysis.experiments import Experiment, load_result, missing_results, registry
from repro.analysis.metrics import (
    GovernorSummary,
    RunSummary,
    SweepTable,
    summarize_run,
)
from repro.analysis.regret_curves import RegretCurve, RegretPoint, run_regret_curve
from repro.analysis.reporting import banner, format_sweep, format_table
from repro.analysis.tracing import RunTracer
from repro.analysis.stats import (
    ChiSquaredResult,
    bootstrap_ci,
    chi_squared_uniformity,
    empirical_tail,
    loglog_slope,
)

__all__ = [
    "ChiSquaredResult",
    "Experiment",
    "FitResult",
    "GovernorSummary",
    "RegretCurve",
    "RegretPoint",
    "RunSummary",
    "RunTracer",
    "SweepTable",
    "banner",
    "bootstrap_ci",
    "chi_squared_uniformity",
    "empirical_tail",
    "fit_linear",
    "fit_power_law",
    "fit_quadratic",
    "format_sweep",
    "format_table",
    "load_result",
    "loglog_slope",
    "missing_results",
    "registry",
    "run_regret_curve",
    "summarize_run",
]
