"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A parameter set violates the constraints required by the protocol.

    Raised, for example, when the efficiency parameter ``f`` is outside
    ``(0, 1)`` or when the reputation discounts ``beta``/``gamma`` violate
    the inequality ``beta**2 <= gamma <= beta <= (gamma - 1) * L / 2 + 1``.
    """


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class SignatureError(CryptoError):
    """A signature failed verification or could not be produced."""


class UnknownIdentityError(CryptoError):
    """An operation referenced a node id not registered with the IM/CA."""


class VRFError(CryptoError):
    """A VRF proof failed verification."""


class LedgerError(ReproError):
    """Base class for ledger/blockchain integrity failures."""


class ChainIntegrityError(LedgerError):
    """A block's previous-hash link does not match the preceding block."""


class SkippedBlockError(LedgerError):
    """A block was appended whose serial number is not the next in sequence."""


class AgreementError(LedgerError):
    """Two replicas retrieved different blocks for the same serial number."""


class BlockNotFoundError(LedgerError):
    """``retrieve(s)`` was called for a serial number not yet in the store."""


class BlockLimitExceededError(LedgerError):
    """A block contains more transactions than the universal bound b_limit."""


class NetworkError(ReproError):
    """Base class for failures in the simulated network substrate."""


class TopologyError(NetworkError):
    """The provider/collector/governor link structure is inconsistent.

    The paper requires ``r * l == s * n`` (each of the ``l`` providers
    links to ``r`` collectors and each of the ``n`` collectors serves
    ``s`` providers).
    """


class SimulationError(NetworkError):
    """The discrete-event simulation reached an invalid state."""


class SynchronyViolationError(NetworkError):
    """A message delay exceeded the known synchrony bound Delta."""


class TransportError(NetworkError):
    """Base class for failures of a real (socket-backed) transport."""


class FrameError(TransportError):
    """A wire frame failed structural or CRC validation."""


class PeerUnreachableError(TransportError):
    """A peer stayed unreachable past the transport's retry budget.

    The structured give-up signal of :mod:`repro.network.realnet`:
    raised after bounded reconnect backoff and per-frame retransmission
    budgets are exhausted (or the liveness watchdog sees no progress at
    all for its stall window) — the transport degrades to an error the
    caller can act on, never a hang.
    """

    def __init__(self, peer: str, detail: str = "", attempts: int = 0):
        self.peer = peer
        self.attempts = attempts
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"peer {peer!r} unreachable after {attempts} attempts{suffix}"
        )


class ParallelExecutionError(SimulationError):
    """Base class for failures of the multi-process shard executor."""


class WorkerCrashError(ParallelExecutionError):
    """A shard worker process died (or hung past the barrier timeout).

    Raised by the parallel backend instead of blocking forever on a
    phase barrier: a SIGKILLed worker surfaces as a *detected* fault —
    the same contract :class:`repro.faults.injector.FaultInjector` gives
    in-process crashes — carrying the phase that was in flight, the
    worker index, and the shards it hosted.
    """

    def __init__(
        self,
        worker: int,
        shards: tuple[int, ...],
        phase: str,
        detail: str = "",
        exitcode: int | None = None,
    ):
        self.worker = worker
        self.shards = shards
        self.phase = phase
        self.exitcode = exitcode
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"worker {worker} hosting shards {list(shards)} failed during "
            f"phase {phase!r} (exitcode={exitcode}){suffix}"
        )


class WorkerOpError(ParallelExecutionError):
    """A command raised inside a worker process; re-raised at the driver.

    Carries the remote exception type name and traceback text so the
    driver-side stack shows what actually failed in the worker.
    """

    def __init__(self, worker: int, phase: str, exc_type: str, detail: str, remote_traceback: str = ""):
        self.worker = worker
        self.phase = phase
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker {worker} raised {exc_type} during phase {phase!r}: {detail}"
        )


class ConsensusError(ReproError):
    """Base class for consensus-layer failures."""


class LeaderElectionError(ConsensusError):
    """Leader election could not complete (e.g. no stake in the system)."""


class StakeError(ConsensusError):
    """An invalid stake operation (negative balance, unknown governor...)."""


class LeaderMisbehaviourError(ConsensusError):
    """Evidence shows the round leader equivocated or proposed bad state."""


class ProtocolViolationError(ReproError):
    """A node deviated from the protocol in a way honest code must reject."""
