"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A parameter set violates the constraints required by the protocol.

    Raised, for example, when the efficiency parameter ``f`` is outside
    ``(0, 1)`` or when the reputation discounts ``beta``/``gamma`` violate
    the inequality ``beta**2 <= gamma <= beta <= (gamma - 1) * L / 2 + 1``.
    """


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class SignatureError(CryptoError):
    """A signature failed verification or could not be produced."""


class UnknownIdentityError(CryptoError):
    """An operation referenced a node id not registered with the IM/CA."""


class VRFError(CryptoError):
    """A VRF proof failed verification."""


class LedgerError(ReproError):
    """Base class for ledger/blockchain integrity failures."""


class ChainIntegrityError(LedgerError):
    """A block's previous-hash link does not match the preceding block."""


class SkippedBlockError(LedgerError):
    """A block was appended whose serial number is not the next in sequence."""


class AgreementError(LedgerError):
    """Two replicas retrieved different blocks for the same serial number."""


class BlockNotFoundError(LedgerError):
    """``retrieve(s)`` was called for a serial number not yet in the store."""


class BlockLimitExceededError(LedgerError):
    """A block contains more transactions than the universal bound b_limit."""


class NetworkError(ReproError):
    """Base class for failures in the simulated network substrate."""


class TopologyError(NetworkError):
    """The provider/collector/governor link structure is inconsistent.

    The paper requires ``r * l == s * n`` (each of the ``l`` providers
    links to ``r`` collectors and each of the ``n`` collectors serves
    ``s`` providers).
    """


class SimulationError(NetworkError):
    """The discrete-event simulation reached an invalid state."""


class SynchronyViolationError(NetworkError):
    """A message delay exceeded the known synchrony bound Delta."""


class ConsensusError(ReproError):
    """Base class for consensus-layer failures."""


class LeaderElectionError(ConsensusError):
    """Leader election could not complete (e.g. no stake in the system)."""


class StakeError(ConsensusError):
    """An invalid stake operation (negative balance, unknown governor...)."""


class LeaderMisbehaviourError(ConsensusError):
    """Evidence shows the round leader equivocated or proposed bad state."""


class ProtocolViolationError(ReproError):
    """A node deviated from the protocol in a way honest code must reject."""
