"""Ledger substrate: transactions, blocks, chains, stores, validity, properties."""

from repro.ledger.block import GENESIS_PREV_HASH, Block, block_hash
from repro.ledger.chain import Ledger, check_agreement
from repro.ledger.properties import PropertyReport, RunTranscript, check_all_properties
from repro.ledger.store import BlockStore
from repro.ledger.sync import sync_replica, verify_sync
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    LabeledTransaction,
    SignedTransaction,
    TransactionBody,
    TxRecord,
    make_labeled_transaction,
    make_signed_transaction,
)
from repro.ledger.validation import (
    CountingOracle,
    GroundTruthOracle,
    RuleOracle,
    ValidityOracle,
)

__all__ = [
    "Block",
    "BlockStore",
    "CheckStatus",
    "CountingOracle",
    "GENESIS_PREV_HASH",
    "GroundTruthOracle",
    "Label",
    "LabeledTransaction",
    "Ledger",
    "PropertyReport",
    "RuleOracle",
    "RunTranscript",
    "SignedTransaction",
    "TransactionBody",
    "TxRecord",
    "ValidityOracle",
    "block_hash",
    "check_agreement",
    "check_all_properties",
    "make_labeled_transaction",
    "make_signed_transaction",
    "sync_replica",
    "verify_sync",
]
