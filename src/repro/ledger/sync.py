"""Replica catch-up: sync a lagging governor from the block store.

The paper's synchronous model assumes governors never miss a block; real
deployments still need a recovery path — a governor that rebooted or was
briefly partitioned must catch up before participating again.  Because
blocks are hash-chained and the store enforces Agreement at publish
time, catch-up is just: fetch serials ``height+1 .. store.height`` and
append, letting the ledger's own integrity checks reject anything
inconsistent.

:func:`sync_replica` performs that, and :func:`verify_sync` confirms the
replica's tip now matches the store.
"""

from __future__ import annotations

from repro.exceptions import LedgerError
from repro.ledger.chain import Ledger
from repro.ledger.store import BlockStore

__all__ = ["sync_replica", "verify_sync"]


def sync_replica(ledger: Ledger, store: BlockStore, limit: int | None = None) -> int:
    """Append missing blocks from ``store`` to ``ledger``.

    Args:
        ledger: The lagging replica (possibly empty).
        store: The published chain.
        limit: Max blocks to fetch this call (None = all); lets callers
            rate-limit catch-up to interleave with live traffic.

    Returns:
        Number of blocks appended.

    Raises:
        LedgerError: if the replica holds a block that conflicts with
            the store (its own append checks fire), which indicates
            local corruption — the caller should rebuild from genesis.
    """
    if limit is not None and limit < 0:
        raise LedgerError(f"sync limit cannot be negative, got {limit}")
    appended = 0
    while ledger.height < store.height:
        if limit is not None and appended >= limit:
            break
        block = store.retrieve(ledger.height + 1)
        ledger.append(block)
        appended += 1
    return appended


def verify_sync(ledger: Ledger, store: BlockStore) -> bool:
    """Whether ``ledger`` is fully caught up and consistent with ``store``."""
    if ledger.height != store.height:
        return False
    if ledger.height == 0:
        return True
    return ledger.retrieve(ledger.height).hash() == store.retrieve(store.height).hash()
