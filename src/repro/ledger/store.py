"""Shared block store: the read path for every node.

Providers and collectors are not consensus participants, but the paper
gives *every* node ``retrieve(s)`` (Section 3.1) — providers must read
blocks to notice a mislabeled transaction and ``argue``.  The
:class:`BlockStore` is the distribution point: governors publish
committed blocks, any node reads them, and per-reader cursors let active
providers consume the chain in order without missing a block (the
definition of an *active* node).

A store may be *anchored* at a checkpoint base ``(base_serial,
base_hash)``: blocks at or below the base have been compacted away
(their integrity is pinned by a durable Merkle checkpoint — see
:mod:`repro.storage`) and only the suffix is held in memory.  The
default base is 0/genesis, which is the classic full store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import AgreementError, BlockNotFoundError, LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, Block

__all__ = ["BlockStore"]


@dataclass
class BlockStore:
    """Append-once, read-many block distribution.

    Publishing the same serial twice with an identical block is a no-op
    (every governor publishes each round); publishing a *different*
    block for an existing serial raises — that would be an Agreement
    violation surfacing at the storage layer.
    """

    _blocks: dict[int, Block] = field(default_factory=dict)
    _cursors: dict[str, int] = field(default_factory=dict)
    #: Highest serial published, tracked incrementally — ``height`` sits
    #: on the per-round per-reader hot path via ``unread_count``.
    _height: int = 0
    _base_serial: int = 0
    _base_hash: bytes = GENESIS_PREV_HASH

    @property
    def height(self) -> int:
        """Highest serial published so far."""
        return self._height

    @property
    def base_serial(self) -> int:
        """Serial the store is anchored at (0 = full chain from genesis)."""
        return self._base_serial

    @property
    def base_hash(self) -> bytes:
        """Tip hash at ``base_serial`` (genesis hash when unanchored)."""
        return self._base_hash

    def tip_hash(self) -> bytes:
        """Hash the next published block must reference."""
        if self._height == self._base_serial:
            return self._base_hash
        return self.retrieve(self._height).hash()

    def anchor(self, serial: int, tip_hash: bytes) -> None:
        """Anchor an *empty* store at a checkpointed base.

        Raises:
            LedgerError: the store already holds blocks, or the anchor
                is malformed.
        """
        if self._blocks or self._height:
            raise LedgerError("cannot anchor a non-empty store")
        if serial < 1 or len(tip_hash) != 32:
            raise LedgerError(f"malformed anchor (serial {serial})")
        self._base_serial = serial
        self._base_hash = tip_hash
        self._height = serial

    def publish(self, block: Block) -> None:
        """Make ``block`` available to all readers.

        Publishing a serial at or below the anchored base is a no-op:
        those blocks are already pinned by the checkpoint the base came
        from, and the compacted store has nothing to conflict-check
        against.

        Raises:
            AgreementError: a conflicting block exists for this serial.
        """
        if block.serial <= self._base_serial:
            return
        existing = self._blocks.get(block.serial)
        if existing is not None:
            if existing.hash() != block.hash():
                raise AgreementError(
                    f"conflicting blocks published for serial {block.serial}"
                )
            return
        self._blocks[block.serial] = block
        if block.serial > self._height:
            self._height = block.serial

    def retrieve(self, serial: int) -> Block:
        """The paper's ``retrieve(s)`` for any node.

        Raises:
            BlockNotFoundError: serial not yet published, or compacted
                below the anchored base.
        """
        try:
            return self._blocks[serial]
        except KeyError:
            if 1 <= serial <= self._base_serial:
                raise BlockNotFoundError(
                    f"serial {serial} compacted below checkpoint base "
                    f"{self._base_serial}"
                ) from None
            raise BlockNotFoundError(f"no published block with serial {serial}") from None

    def next_for(self, reader: str) -> Block | None:
        """Next unread block for ``reader`` in serial order, or None.

        Advances the reader's cursor; an *active* provider polls this
        every round so that no block escapes its argue check.  New
        readers start at the anchored base (compacted history cannot be
        replayed from this store).
        """
        cursor = self._cursors.get(reader, self._base_serial)
        block = self._blocks.get(cursor + 1)
        if block is None:
            return None
        self._cursors[reader] = cursor + 1
        return block

    def unread_count(self, reader: str) -> int:
        """How many published blocks ``reader`` has not consumed yet."""
        return self._height - self._cursors.get(reader, self._base_serial)

    def forget_reader(self, reader: str) -> None:
        """Drop ``reader``'s cursor (no-op if absent).

        Engines call this when a node is retired, quarantined or
        migrated away so ``_cursors`` does not grow without bound under
        churn soaks.
        """
        self._cursors.pop(reader, None)
