"""Shared block store: the read path for every node.

Providers and collectors are not consensus participants, but the paper
gives *every* node ``retrieve(s)`` (Section 3.1) — providers must read
blocks to notice a mislabeled transaction and ``argue``.  The
:class:`BlockStore` is the distribution point: governors publish
committed blocks, any node reads them, and per-reader cursors let active
providers consume the chain in order without missing a block (the
definition of an *active* node).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import AgreementError, BlockNotFoundError
from repro.ledger.block import Block

__all__ = ["BlockStore"]


@dataclass
class BlockStore:
    """Append-once, read-many block distribution.

    Publishing the same serial twice with an identical block is a no-op
    (every governor publishes each round); publishing a *different*
    block for an existing serial raises — that would be an Agreement
    violation surfacing at the storage layer.
    """

    _blocks: dict[int, Block] = field(default_factory=dict)
    _cursors: dict[str, int] = field(default_factory=dict)

    @property
    def height(self) -> int:
        """Highest serial published so far."""
        return max(self._blocks, default=0)

    def publish(self, block: Block) -> None:
        """Make ``block`` available to all readers.

        Raises:
            AgreementError: a conflicting block exists for this serial.
        """
        existing = self._blocks.get(block.serial)
        if existing is not None:
            if existing.hash() != block.hash():
                raise AgreementError(
                    f"conflicting blocks published for serial {block.serial}"
                )
            return
        self._blocks[block.serial] = block

    def retrieve(self, serial: int) -> Block:
        """The paper's ``retrieve(s)`` for any node.

        Raises:
            BlockNotFoundError: serial not yet published.
        """
        try:
            return self._blocks[serial]
        except KeyError:
            raise BlockNotFoundError(f"no published block with serial {serial}") from None

    def next_for(self, reader: str) -> Block | None:
        """Next unread block for ``reader`` in serial order, or None.

        Advances the reader's cursor; an *active* provider polls this
        every round so that no block escapes its argue check.
        """
        cursor = self._cursors.get(reader, 0)
        block = self._blocks.get(cursor + 1)
        if block is None:
            return None
        self._cursors[reader] = cursor + 1
        return block

    def unread_count(self, reader: str) -> int:
        """How many published blocks ``reader`` has not consumed yet."""
        return self.height - self._cursors.get(reader, 0)
