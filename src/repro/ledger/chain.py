"""The hash-chained ledger and its safety invariants.

:class:`Ledger` is a single replica's copy of the chain.  ``append``
enforces, at write time, the properties the paper states in Section 3.1:

* **Chain Integrity** — the new block's ``prev_hash`` must equal the
  hash of the current tip;
* **No Skipping** — serials are consecutive starting at 1;
* the universal block size bound ``b_limit`` (checked by ``Block``).

**Agreement** is a cross-replica property; :func:`check_agreement`
compares any number of replicas.  The remaining two properties (Almost
No Creation, Validity) depend on protocol history, so they live in
:mod:`repro.ledger.properties` where the full run transcript is
available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import (
    AgreementError,
    BlockNotFoundError,
    ChainIntegrityError,
    SkippedBlockError,
)
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.transaction import TxRecord

__all__ = ["Ledger", "check_agreement"]


@dataclass
class Ledger:
    """One replica's append-only chain with ``retrieve(s)`` access."""

    owner: str = "replica"
    _blocks: list[Block] = field(default_factory=list)
    _tx_index: dict[str, tuple[int, int]] = field(default_factory=dict)

    # -- writes --------------------------------------------------------

    def append(self, block: Block) -> None:
        """Append ``block``, enforcing No-Skipping and Chain Integrity.

        Raises:
            SkippedBlockError: serial is not ``height + 1``.
            ChainIntegrityError: prev_hash does not match the tip.
        """
        expected_serial = self.height + 1
        if block.serial != expected_serial:
            raise SkippedBlockError(
                f"{self.owner}: expected serial {expected_serial}, got {block.serial}"
            )
        expected_prev = self.tip_hash()
        if block.prev_hash != expected_prev:
            raise ChainIntegrityError(
                f"{self.owner}: block {block.serial} prev_hash mismatch"
            )
        self._blocks.append(block)
        for idx, rec in enumerate(block.tx_list):
            # Later occurrences win: a re-evaluated transaction appears in a
            # newer block, and lookups should see its final disposition.
            self._tx_index[rec.tx.tx_id] = (block.serial, idx)

    # -- reads ---------------------------------------------------------

    @property
    def height(self) -> int:
        """Serial number of the tip (0 when empty)."""
        return len(self._blocks)

    def tip_hash(self) -> bytes:
        """Hash the next block must reference."""
        return GENESIS_PREV_HASH if not self._blocks else self._blocks[-1].hash()

    def retrieve(self, serial: int) -> Block:
        """The paper's ``retrieve(s)``.

        Raises:
            BlockNotFoundError: serial not yet on this replica.
        """
        if not 1 <= serial <= self.height:
            raise BlockNotFoundError(
                f"{self.owner}: no block with serial {serial} (height {self.height})"
            )
        return self._blocks[serial - 1]

    def blocks(self) -> Iterator[Block]:
        """Iterate blocks in serial order."""
        return iter(self._blocks)

    def find_record(self, tx_id: str) -> tuple[Block, TxRecord] | None:
        """Latest (block, record) containing ``tx_id``, or None."""
        loc = self._tx_index.get(tx_id)
        if loc is None:
            return None
        block = self._blocks[loc[0] - 1]
        return block, block.tx_list[loc[1]]

    def all_records(self) -> Iterator[tuple[int, TxRecord]]:
        """Iterate (serial, record) pairs over the whole chain."""
        for block in self._blocks:
            for rec in block.tx_list:
                yield block.serial, rec

    def verify_integrity(self) -> None:
        """Re-validate the whole chain (serials + hash links) from genesis.

        Raises:
            SkippedBlockError / ChainIntegrityError: on corruption.
        """
        prev = GENESIS_PREV_HASH
        for idx, block in enumerate(self._blocks, start=1):
            if block.serial != idx:
                raise SkippedBlockError(
                    f"{self.owner}: serial {block.serial} at position {idx}"
                )
            if block.prev_hash != prev:
                raise ChainIntegrityError(
                    f"{self.owner}: hash link broken at serial {idx}"
                )
            prev = block.hash()


def check_agreement(replicas: Iterable[Ledger]) -> None:
    """Agreement: same-serial blocks are identical across replicas.

    Compares block hashes up to the shortest height among the replicas
    (a replica that is merely *behind* does not violate agreement in a
    synchronous run still in progress).

    Raises:
        AgreementError: two replicas retrieved different blocks for one s.
    """
    ledgers = list(replicas)
    if len(ledgers) < 2:
        return
    common = min(ledger.height for ledger in ledgers)
    reference = ledgers[0]
    for serial in range(1, common + 1):
        want = reference.retrieve(serial).hash()
        for other in ledgers[1:]:
            got = other.retrieve(serial).hash()
            if got != want:
                raise AgreementError(
                    f"replicas {reference.owner!r} and {other.owner!r} "
                    f"disagree at serial {serial}"
                )
