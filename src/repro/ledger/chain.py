"""The hash-chained ledger and its safety invariants.

:class:`Ledger` is a single replica's copy of the chain.  ``append``
enforces, at write time, the properties the paper states in Section 3.1:

* **Chain Integrity** — the new block's ``prev_hash`` must equal the
  hash of the current tip;
* **No Skipping** — serials are consecutive starting at 1;
* the universal block size bound ``b_limit`` (checked by ``Block``).

**Agreement** is a cross-replica property; :func:`check_agreement`
compares any number of replicas.  The remaining two properties (Almost
No Creation, Validity) depend on protocol history, so they live in
:mod:`repro.ledger.properties` where the full run transcript is
available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import (
    AgreementError,
    BlockNotFoundError,
    ChainIntegrityError,
    LedgerError,
    SkippedBlockError,
)
from repro.ledger.block import GENESIS_PREV_HASH, Block
from repro.ledger.transaction import TxRecord

__all__ = ["Ledger", "check_agreement"]


@dataclass
class Ledger:
    """One replica's append-only chain with ``retrieve(s)`` access."""

    owner: str = "replica"
    _blocks: list[Block] = field(default_factory=list)
    _tx_index: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Checkpoint base: serials ``<= _base_serial`` are compacted away
    #: and vouched for by a durable Merkle checkpoint (repro.storage).
    _base_serial: int = 0
    _base_hash: bytes = GENESIS_PREV_HASH

    @classmethod
    def from_checkpoint(cls, owner: str, serial: int, tip_hash: bytes) -> "Ledger":
        """A replica anchored at a checkpoint instead of genesis.

        Used after restart-from-disk when segments below the checkpoint
        were compacted: the replica resumes appending at
        ``serial + 1`` against ``tip_hash`` without holding the prefix.

        Raises:
            LedgerError: malformed anchor.
        """
        if serial < 1 or len(tip_hash) != 32:
            raise LedgerError(f"{owner}: malformed checkpoint anchor (serial {serial})")
        ledger = cls(owner=owner)
        ledger._base_serial = serial
        ledger._base_hash = tip_hash
        return ledger

    # -- writes --------------------------------------------------------

    def append(self, block: Block) -> None:
        """Append ``block``, enforcing No-Skipping and Chain Integrity.

        Raises:
            SkippedBlockError: serial is not ``height + 1``.
            ChainIntegrityError: prev_hash does not match the tip.
        """
        expected_serial = self.height + 1
        if block.serial != expected_serial:
            raise SkippedBlockError(
                f"{self.owner}: expected serial {expected_serial}, got {block.serial}"
            )
        expected_prev = self.tip_hash()
        if block.prev_hash != expected_prev:
            raise ChainIntegrityError(
                f"{self.owner}: block {block.serial} prev_hash mismatch"
            )
        self._blocks.append(block)
        for idx, rec in enumerate(block.tx_list):
            # Later occurrences win: a re-evaluated transaction appears in a
            # newer block, and lookups should see its final disposition.
            self._tx_index[rec.tx.tx_id] = (block.serial, idx)

    # -- reads ---------------------------------------------------------

    @property
    def height(self) -> int:
        """Serial number of the tip (0 when empty)."""
        return self._base_serial + len(self._blocks)

    @property
    def base_serial(self) -> int:
        """Serial this replica is anchored at (0 = genesis)."""
        return self._base_serial

    def tip_hash(self) -> bytes:
        """Hash the next block must reference."""
        return self._base_hash if not self._blocks else self._blocks[-1].hash()

    def retrieve(self, serial: int) -> Block:
        """The paper's ``retrieve(s)``.

        Raises:
            BlockNotFoundError: serial not on this replica (unpublished,
                or compacted below the checkpoint base).
        """
        if 1 <= serial <= self._base_serial:
            raise BlockNotFoundError(
                f"{self.owner}: serial {serial} compacted below checkpoint "
                f"base {self._base_serial}"
            )
        if not self._base_serial < serial <= self.height:
            raise BlockNotFoundError(
                f"{self.owner}: no block with serial {serial} (height {self.height})"
            )
        return self._blocks[serial - self._base_serial - 1]

    def blocks(self) -> Iterator[Block]:
        """Iterate blocks in serial order."""
        return iter(self._blocks)

    def find_record(self, tx_id: str) -> tuple[Block, TxRecord] | None:
        """Latest (block, record) containing ``tx_id``, or None."""
        loc = self._tx_index.get(tx_id)
        if loc is None:
            return None
        block = self._blocks[loc[0] - self._base_serial - 1]
        return block, block.tx_list[loc[1]]

    def all_records(self) -> Iterator[tuple[int, TxRecord]]:
        """Iterate (serial, record) pairs over the whole chain."""
        for block in self._blocks:
            for rec in block.tx_list:
                yield block.serial, rec

    def verify_integrity(self) -> None:
        """Re-validate the held chain (serials + hash links) from its base.

        For an unanchored replica this is the full genesis check; an
        anchored one verifies from the checkpoint hash instead.

        Raises:
            SkippedBlockError / ChainIntegrityError: on corruption.
        """
        prev = self._base_hash
        for idx, block in enumerate(self._blocks, start=self._base_serial + 1):
            if block.serial != idx:
                raise SkippedBlockError(
                    f"{self.owner}: serial {block.serial} at position {idx}"
                )
            if block.prev_hash != prev:
                raise ChainIntegrityError(
                    f"{self.owner}: hash link broken at serial {idx}"
                )
            prev = block.hash()


def check_agreement(replicas: Iterable[Ledger]) -> None:
    """Agreement: same-serial blocks are identical across replicas.

    Compares block hashes up to the shortest height among the replicas
    (a replica that is merely *behind* does not violate agreement in a
    synchronous run still in progress).  Serials compacted below any
    replica's checkpoint base cannot be compared block-by-block; their
    equality is vouched for by the checkpoint Merkle root instead.

    Raises:
        AgreementError: two replicas retrieved different blocks for one s.
    """
    ledgers = list(replicas)
    if len(ledgers) < 2:
        return
    common = min(ledger.height for ledger in ledgers)
    start = max(ledger.base_serial for ledger in ledgers) + 1
    reference = ledgers[0]
    for serial in range(start, common + 1):
        want = reference.retrieve(serial).hash()
        for other in ledgers[1:]:
            got = other.retrieve(serial).hash()
            if got != want:
                raise AgreementError(
                    f"replicas {reference.owner!r} and {other.owner!r} "
                    f"disagree at serial {serial}"
                )
