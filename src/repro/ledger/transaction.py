"""Transactions, labels, and the records blocks store.

Terminology follows the paper:

* ``tx`` — a *signed transaction*: payload + timestamp + the provider's
  signature over both, so *"no collector could forge a transaction"*
  (Section 3.1).
* ``Tx`` — a *labeled transaction*: a tx plus a collector's ±1 label and
  the collector's signature over (tx, label) (Section 3.3).
* A block's TXList holds :class:`TxRecord` entries: the tx, its final
  label in the block, and whether the governor actually checked it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import perf
from repro.crypto.hashing import canonical_encode, hash_value
from repro.crypto.signatures import Signature, SigningKey, sign

__all__ = [
    "Label",
    "CheckStatus",
    "TransactionBody",
    "SignedTransaction",
    "LabeledTransaction",
    "TxRecord",
    "make_signed_transaction",
    "make_labeled_transaction",
]


class Label(enum.IntEnum):
    """A collector's verdict on a transaction: +1 valid, -1 invalid."""

    VALID = 1
    INVALID = -1

    @staticmethod
    def from_bool(is_valid: bool) -> "Label":
        """Map a boolean validity check to the paper's +/-1 label."""
        return Label.VALID if is_valid else Label.INVALID


class CheckStatus(enum.Enum):
    """How a transaction entered the block (Algorithm 2's outcomes)."""

    CHECKED = "checked"        # governor ran validate(tx) itself
    UNCHECKED = "unchecked"    # recorded with the sampled label, unverified
    REEVALUATED = "reevaluated"  # validated later due to an argue() call


@dataclass(frozen=True)
class TransactionBody:
    """The application payload a provider wants recorded.

    ``payload`` is any canonically-hashable structure; domain apps (car
    sharing, insurance) put their request objects here.  ``nonce`` keeps
    bodies from identical (provider, payload) pairs distinct.
    """

    provider: str
    payload: object
    nonce: int

    def canonical_bytes(self) -> bytes:
        """Stable encoding used for hashing and signing.

        Memoized on the (frozen) instance: bodies are encoded once and
        then hashed into every downstream id, signature, and record, so
        the cache turns the dominant hot-path cost into a dict lookup.
        """
        cached = self.__dict__.get("_canonical")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(("tx-body", self.provider, self.payload, self.nonce))
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_canonical", raw)
        return raw


@dataclass(frozen=True)
class SignedTransaction:
    """The paper's ``tx``: body + timestamp + provider signature.

    The signature covers (body, timestamp), so replaying a transaction
    under a different timestamp — the paper's "cannot simply replicate a
    transaction since it is signed together with the timestamp" — breaks
    the signature.
    """

    body: TransactionBody
    timestamp: float
    provider_signature: Signature

    @property
    def provider(self) -> str:
        """Originating provider's node id."""
        return self.body.provider

    @property
    def tx_id(self) -> str:
        """Content-derived unique id (hash of body + timestamp)."""
        cached = self.__dict__.get("_tx_id")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(("tx-id", self.body.canonical_bytes(), self.timestamp)).hex()[:32]
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_tx_id", raw)
        return raw

    def signed_message(self) -> tuple:
        """The exact structure the provider's signature covers."""
        return ("tx", self.body.canonical_bytes(), self.timestamp)

    def signed_message_bytes(self) -> bytes:
        """Canonical encoding of :meth:`signed_message`, memoized.

        These are the exact bytes the provider's HMAC covers, so they can
        be handed to ``IdentityManager.verify`` directly — encode once,
        verify many (once per linked collector and again per governor).
        """
        cached = self.__dict__.get("_signed_msg")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = canonical_encode(self.signed_message())
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_signed_msg", raw)
        return raw

    def canonical_bytes(self) -> bytes:
        """Stable encoding (includes the signature tag)."""
        cached = self.__dict__.get("_canonical")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(
            ("signed-tx", self.body.canonical_bytes(), self.timestamp,
             self.provider_signature.signer, self.provider_signature.tag)
        )
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_canonical", raw)
        return raw


@dataclass(frozen=True)
class LabeledTransaction:
    """The paper's ``Tx``: a signed tx + the collector's label + signature."""

    tx: SignedTransaction
    label: Label
    collector: str
    collector_signature: Signature

    def signed_message(self) -> tuple:
        """The structure the collector's signature covers: (tx, label)."""
        return ("labeled-tx", self.tx.canonical_bytes(), int(self.label))

    def signed_message_bytes(self) -> bytes:
        """Canonical encoding of :meth:`signed_message`, memoized."""
        cached = self.__dict__.get("_signed_msg")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = canonical_encode(self.signed_message())
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_signed_msg", raw)
        return raw

    def canonical_bytes(self) -> bytes:
        """Stable encoding of the labeled transaction."""
        cached = self.__dict__.get("_canonical")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(
            ("Tx", self.tx.canonical_bytes(), int(self.label),
             self.collector, self.collector_signature.tag)
        )
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_canonical", raw)
        return raw

    def parse(self) -> tuple[SignedTransaction, Label]:
        """The paper's ``parse(Tx)``: the original tx and the label."""
        return self.tx, self.label


@dataclass(frozen=True)
class TxRecord:
    """One TXList entry: how a transaction appears in a block."""

    tx: SignedTransaction
    label: Label
    status: CheckStatus

    @property
    def is_unchecked(self) -> bool:
        """Whether the governor skipped validation for this record."""
        return self.status is CheckStatus.UNCHECKED

    def canonical_bytes(self) -> bytes:
        """Stable encoding for block hashing."""
        cached = self.__dict__.get("_canonical")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(
            ("tx-record", self.tx.canonical_bytes(), int(self.label), self.status.value)
        )
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_canonical", raw)
        return raw


def make_signed_transaction(
    key: SigningKey, payload: object, timestamp: float, nonce: int
) -> SignedTransaction:
    """Create and sign a transaction as provider ``key.owner``."""
    body = TransactionBody(provider=key.owner, payload=payload, nonce=nonce)
    message = ("tx", body.canonical_bytes(), timestamp)
    signature = sign(key, message)
    return SignedTransaction(body=body, timestamp=timestamp, provider_signature=signature)


def make_labeled_transaction(
    key: SigningKey, tx: SignedTransaction, label: Label
) -> LabeledTransaction:
    """Label ``tx`` and sign (tx, label) as collector ``key.owner``."""
    message = ("labeled-tx", tx.canonical_bytes(), int(label))
    signature = sign(key, message)
    return LabeledTransaction(
        tx=tx, label=label, collector=key.owner, collector_signature=signature
    )
