"""JSON codec for ledger objects — persistence and interchange.

A downstream deployment needs to store the chain and replay it; this
module serialises every ledger object to plain JSON-compatible
structures and back, with two guarantees:

* **round-trip fidelity** — ``decode(encode(x))`` reproduces ``x``
  exactly, including signatures (bytes are hex-encoded), so block
  hashes survive the trip (property-tested);
* **tamper evidence on import** — :func:`load_chain` re-runs the
  ledger's own append-time checks, so an edited file fails with
  ``ChainIntegrityError`` rather than silently loading.

Payloads must be JSON-typed (dict/list/str/int/float/bool/None), which
all workloads and apps in this repository satisfy; tuples inside
payloads are normalised to lists on the round trip (their canonical
hashes already coincide).
"""

from __future__ import annotations

import json
from typing import Any

from repro import perf
from repro.crypto.signatures import Signature
from repro.exceptions import LedgerError
from repro.ledger.block import Block
from repro.ledger.chain import Ledger
from repro.ledger.transaction import (
    CheckStatus,
    Label,
    LabeledTransaction,
    SignedTransaction,
    TransactionBody,
    TxRecord,
)

__all__ = [
    "encode_transaction",
    "decode_transaction",
    "encode_labeled",
    "decode_labeled",
    "encode_record",
    "decode_record",
    "encode_block",
    "decode_block",
    "dump_chain",
    "load_chain",
]

_FORMAT_VERSION = 1


def _sig_to_json(sig: Signature) -> dict:
    return {"signer": sig.signer, "tag": sig.tag.hex()}


def _sig_from_json(obj: dict) -> Signature:
    try:
        return Signature(signer=obj["signer"], tag=bytes.fromhex(obj["tag"]))
    except (KeyError, ValueError) as exc:
        raise LedgerError(f"malformed signature object: {exc}") from exc


def encode_transaction(tx: SignedTransaction) -> dict:
    """Serialise a signed transaction.

    A transaction's JSON shape never changes (frozen dataclasses), so
    the encoding is memoized on the object — every governor replica
    serialising its copy of the chain reuses one encoding.  The top
    level and the signature sub-object are copied per call so callers
    may edit them (the tamper tests do); ``payload`` is shared exactly
    as in the uncached path.
    """
    cached = tx.__dict__.get("_codec_json")
    if cached is not None and perf.ACTIVE.codec_fast_path:
        out = dict(cached)
        out["signature"] = dict(cached["signature"])
        return out
    obj = {
        "provider": tx.body.provider,
        "payload": tx.body.payload,
        "nonce": tx.body.nonce,
        "timestamp": tx.timestamp,
        "signature": _sig_to_json(tx.provider_signature),
    }
    if perf.ACTIVE.codec_fast_path:
        cached = dict(obj)
        cached["signature"] = dict(obj["signature"])
        object.__setattr__(tx, "_codec_json", cached)
    return obj


#: Key set of the dominant (well-formed) transaction object shape.
_TX_SHAPE = frozenset(("provider", "payload", "nonce", "timestamp", "signature"))


def decode_transaction(obj: dict) -> SignedTransaction:
    """Deserialise a signed transaction.

    Raises:
        LedgerError: on missing or malformed fields.
    """
    if perf.ACTIVE.codec_fast_path and obj.keys() == _TX_SHAPE:
        # Dominant shape: every field present, so the KeyError scaffold
        # below cannot trigger; construct directly.
        return SignedTransaction(
            body=TransactionBody(
                provider=obj["provider"], payload=obj["payload"], nonce=obj["nonce"]
            ),
            timestamp=obj["timestamp"],
            provider_signature=_sig_from_json(obj["signature"]),
        )
    try:
        body = TransactionBody(
            provider=obj["provider"], payload=obj["payload"], nonce=obj["nonce"]
        )
        return SignedTransaction(
            body=body,
            timestamp=obj["timestamp"],
            provider_signature=_sig_from_json(obj["signature"]),
        )
    except KeyError as exc:
        raise LedgerError(f"transaction object missing field {exc}") from exc


def encode_labeled(labeled: LabeledTransaction) -> dict:
    """Serialise a labeled transaction (collector upload)."""
    return {
        "tx": encode_transaction(labeled.tx),
        "label": int(labeled.label),
        "collector": labeled.collector,
        "signature": _sig_to_json(labeled.collector_signature),
    }


def decode_labeled(obj: dict) -> LabeledTransaction:
    """Deserialise a labeled transaction."""
    try:
        return LabeledTransaction(
            tx=decode_transaction(obj["tx"]),
            label=Label(obj["label"]),
            collector=obj["collector"],
            collector_signature=_sig_from_json(obj["signature"]),
        )
    except (KeyError, ValueError) as exc:
        raise LedgerError(f"malformed labeled transaction: {exc}") from exc


def encode_record(record: TxRecord) -> dict:
    """Serialise a block TXList entry."""
    return {
        "tx": encode_transaction(record.tx),
        "label": int(record.label),
        "status": record.status.value,
    }


def decode_record(obj: dict) -> TxRecord:
    """Deserialise a block TXList entry."""
    try:
        return TxRecord(
            tx=decode_transaction(obj["tx"]),
            label=Label(obj["label"]),
            status=CheckStatus(obj["status"]),
        )
    except (KeyError, ValueError) as exc:
        raise LedgerError(f"malformed tx record: {exc}") from exc


def encode_block(block: Block) -> dict:
    """Serialise a block, embedding its hash for import verification."""
    return {
        "serial": block.serial,
        "prev_hash": block.prev_hash.hex(),
        "proposer": block.proposer,
        "round_number": block.round_number,
        "b_limit": block.b_limit,
        "tx_list": [encode_record(rec) for rec in block.tx_list],
        "hash": block.hash().hex(),
    }


def decode_block(obj: dict) -> Block:
    """Deserialise a block and verify its recorded hash.

    Raises:
        LedgerError: missing fields or a hash mismatch (tampering).
    """
    try:
        block = Block(
            serial=obj["serial"],
            tx_list=tuple(decode_record(rec) for rec in obj["tx_list"]),
            prev_hash=bytes.fromhex(obj["prev_hash"]),
            proposer=obj["proposer"],
            round_number=obj["round_number"],
            b_limit=obj["b_limit"],
        )
    except (KeyError, ValueError) as exc:
        raise LedgerError(f"malformed block object: {exc}") from exc
    recorded = obj.get("hash")
    if recorded is not None and block.hash().hex() != recorded:
        raise LedgerError(
            f"block {obj.get('serial')} hash mismatch on import — file tampered?"
        )
    return block


def dump_chain(ledger: Ledger, fp: Any = None) -> str:
    """Serialise a whole chain to a JSON string (and optionally a file)."""
    doc = {
        "format": _FORMAT_VERSION,
        "owner": ledger.owner,
        "height": ledger.height,
        "blocks": [encode_block(block) for block in ledger.blocks()],
    }
    text = json.dumps(doc, indent=None, separators=(",", ":"), sort_keys=True)
    if fp is not None:
        fp.write(text)
    return text


def load_chain(text: str, owner: str | None = None) -> Ledger:
    """Rebuild a ledger from :func:`dump_chain` output.

    Every block passes through ``Ledger.append``, so hash links and
    serial continuity are re-verified — a tampered file cannot load.

    Raises:
        LedgerError / ChainIntegrityError / SkippedBlockError: on any
            malformation or inconsistency.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise LedgerError(f"chain file is not valid JSON: {exc}") from exc
    if doc.get("format") != _FORMAT_VERSION:
        raise LedgerError(f"unsupported chain format {doc.get('format')!r}")
    ledger = Ledger(owner=owner or doc.get("owner", "imported"))
    for block_obj in doc.get("blocks", []):
        ledger.append(decode_block(block_obj))
    if ledger.height != doc.get("height"):
        raise LedgerError(
            f"declared height {doc.get('height')} != loaded height {ledger.height}"
        )
    return ledger
