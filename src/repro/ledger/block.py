"""Blocks: ``B = (s, TXList, h)`` plus commitments and proposer metadata.

The paper defines a block as a serial number, a list of signed labeled
transactions, and the hash of the previous block (Section 3.1), with a
universal bound ``b_limit`` on the transaction count.  We additionally
commit to the TXList with a Merkle root so providers can check how their
transaction was labeled with an O(log b) proof before invoking
``argue`` — a standard production refinement that changes no protocol
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import perf
from repro.crypto.hashing import hash_value
from repro.crypto.merkle import MerkleTree
from repro.exceptions import BlockLimitExceededError, LedgerError
from repro.ledger.transaction import TxRecord

__all__ = ["Block", "GENESIS_PREV_HASH", "block_hash"]

#: The previous-hash value carried by the genesis block.
GENESIS_PREV_HASH = b"\x00" * 32


@dataclass(frozen=True)
class Block:
    """An immutable block.

    Attributes:
        serial: One-based serial number ``s``; consecutive in the chain.
        tx_list: The TXList of :class:`TxRecord` entries.
        prev_hash: ``h`` — hash of the previous block (Chain Integrity).
        proposer: Governor id of the round leader that packed the block.
        round_number: Protocol round that produced the block.
        b_limit: The universal transaction-count bound in force.
    """

    serial: int
    tx_list: tuple[TxRecord, ...]
    prev_hash: bytes
    proposer: str
    round_number: int
    b_limit: int = 1024
    _tree: MerkleTree = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.serial < 1:
            raise LedgerError(f"block serial numbers start at 1, got {self.serial}")
        if len(self.prev_hash) != 32:
            raise LedgerError("prev_hash must be a 32-byte digest")
        if self.b_limit < 1:
            raise LedgerError(f"b_limit must be >= 1, got {self.b_limit}")
        if len(self.tx_list) > self.b_limit:
            raise BlockLimitExceededError(
                f"block holds {len(self.tx_list)} transactions, over b_limit={self.b_limit}"
            )
        object.__setattr__(self, "_tree", MerkleTree(list(self.tx_list)))

    @property
    def tx_root(self) -> bytes:
        """Merkle root committing to the TXList."""
        return self._tree.root

    def header_tuple(self) -> tuple:
        """The fields the block hash covers."""
        return (
            "block",
            self.serial,
            self.prev_hash,
            self.tx_root,
            self.proposer,
            self.round_number,
            len(self.tx_list),
        )

    def canonical_bytes(self) -> bytes:
        """Stable encoding: header plus every record."""
        cached = self.__dict__.get("_canonical")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(
            (self.header_tuple(), tuple(rec.canonical_bytes() for rec in self.tx_list))
        )
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_canonical", raw)
        return raw

    def hash(self) -> bytes:
        """``H(B)`` — the CRHF over the whole block, memoized per instance."""
        cached = self.__dict__.get("_hash")
        if cached is not None and perf.ACTIVE.encode_cache:
            return cached
        raw = hash_value(("block-hash", self.canonical_bytes()))
        if perf.ACTIVE.encode_cache:
            object.__setattr__(self, "_hash", raw)
        return raw

    def prove_inclusion(self, index: int):
        """Merkle proof that ``tx_list[index]`` is committed by ``tx_root``."""
        return self._tree.prove(index)

    def find_tx(self, tx_id: str) -> TxRecord | None:
        """Locate a record by transaction id, or None if absent."""
        for rec in self.tx_list:
            if rec.tx.tx_id == tx_id:
                return rec
        return None

    def __len__(self) -> int:
        return len(self.tx_list)


def block_hash(block: Block) -> bytes:
    """Module-level alias for ``block.hash()`` (the paper's ``H``)."""
    return block.hash()
