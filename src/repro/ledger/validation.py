"""Transaction validity: the ``validate(tx)`` oracle.

The paper treats validity as an oracle bit: collectors and governors can
both call ``validate(tx)`` and always learn the true status (collectors
may then *lie about* it; governors pay a cost to call it).  We model the
ground truth as a :class:`ValidityOracle` strategy object so that:

* synthetic workloads fix validity at generation time
  (:class:`GroundTruthOracle`);
* domain applications derive validity from payload semantics
  (:class:`RuleOracle` wraps a predicate over the payload);
* experiments can count every governor-side validation
  (:class:`CountingOracle`), which is what the efficiency benches
  measure — the paper's whole point is reducing these calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.exceptions import LedgerError
from repro.ledger.transaction import SignedTransaction

__all__ = [
    "ValidityOracle",
    "GroundTruthOracle",
    "RuleOracle",
    "CountingOracle",
]


class ValidityOracle(Protocol):
    """Anything that can answer ``validate(tx)`` with the true status."""

    def validate(self, tx: SignedTransaction) -> bool:
        """True iff ``tx`` is genuinely valid."""
        ...


@dataclass
class GroundTruthOracle:
    """Validity fixed per transaction id at workload-generation time."""

    _truth: dict[str, bool] = field(default_factory=dict)

    def assign(self, tx: SignedTransaction, is_valid: bool) -> None:
        """Record the ground truth for ``tx`` (idempotent if unchanged).

        Raises:
            LedgerError: on an attempt to flip an already-assigned truth,
                which would make experiment accounting meaningless.
        """
        prior = self._truth.get(tx.tx_id)
        if prior is not None and prior != is_valid:
            raise LedgerError(f"conflicting ground truth for tx {tx.tx_id}")
        self._truth[tx.tx_id] = is_valid

    def validate(self, tx: SignedTransaction) -> bool:
        """The true status; unknown transactions are invalid (forgeries)."""
        return self._truth.get(tx.tx_id, False)

    def knows(self, tx: SignedTransaction) -> bool:
        """Whether ``tx`` was generated through this oracle."""
        return tx.tx_id in self._truth

    def __len__(self) -> int:
        return len(self._truth)


@dataclass
class RuleOracle:
    """Validity derived from payload semantics via a predicate.

    Domain apps use this: e.g. an insurance application is valid iff its
    declared history is consistent with the registry.
    """

    predicate: Callable[[SignedTransaction], bool]

    def validate(self, tx: SignedTransaction) -> bool:
        """Apply the domain rule."""
        return bool(self.predicate(tx))


@dataclass
class CountingOracle:
    """Wrap an oracle and count calls — the governor's validation cost.

    ``cost_per_call`` lets efficiency benches convert counts into a time
    model without re-running.
    """

    inner: ValidityOracle
    cost_per_call: float = 1.0
    calls: int = 0

    def validate(self, tx: SignedTransaction) -> bool:
        """Delegate and count."""
        self.calls += 1
        return self.inner.validate(tx)

    @property
    def total_cost(self) -> float:
        """Accumulated validation cost under the linear cost model."""
        return self.calls * self.cost_per_call

    def reset(self) -> None:
        """Zero the counter (between experiment phases)."""
        self.calls = 0
