"""Run-level safety and liveness property checkers (Section 3.1).

The five properties the protocol must satisfy:

1. **Agreement** — same-serial blocks identical across replicas
   (:func:`repro.ledger.chain.check_agreement`).
2. **Chain Integrity** — ``h' = H(B)`` links (checked on append and by
   :meth:`Ledger.verify_integrity`; re-checked here across a run).
3. **No Skipping** — consecutive serials (same).
4. **Almost No Creation** — every transaction perceived in a block was
   previously broadcast by a provider *and* a collector.  This needs the
   broadcast transcript, so the checker takes a :class:`RunTranscript`.
5. **Validity** — a valid transaction from an honest *active* provider
   eventually appears (with a valid disposition) in a block.

:class:`RunTranscript` is the minimal trace protocol runs record to make
4 and 5 checkable after the fact; the simulation harness populates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import (
    AgreementError,
    ChainIntegrityError,
    LedgerError,
    SkippedBlockError,
)
from repro.ledger.chain import Ledger, check_agreement
from repro.ledger.transaction import CheckStatus, Label

__all__ = ["RunTranscript", "PropertyReport", "check_all_properties"]


@dataclass
class RunTranscript:
    """What happened during a run, as needed by the property checkers.

    Attributes:
        provider_broadcasts: tx ids that went through broadcast_provider.
        collector_uploads: tx ids that went through broadcast_collector.
        honest_valid_tx: tx ids of *valid* transactions sent by honest,
            active providers (the Validity property quantifies these).
        argue_calls: tx ids the provider argued about.
    """

    provider_broadcasts: set[str] = field(default_factory=set)
    collector_uploads: set[str] = field(default_factory=set)
    honest_valid_tx: set[str] = field(default_factory=set)
    argue_calls: set[str] = field(default_factory=set)


@dataclass
class PropertyReport:
    """Outcome of checking all five properties over a run."""

    agreement: bool = True
    chain_integrity: bool = True
    no_skipping: bool = True
    almost_no_creation: bool = True
    validity: bool = True
    violations: list[str] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        """True iff every property held."""
        return (
            self.agreement
            and self.chain_integrity
            and self.no_skipping
            and self.almost_no_creation
            and self.validity
        )


def check_all_properties(
    replicas: Iterable[Ledger],
    transcript: RunTranscript,
    run_complete: bool = True,
) -> PropertyReport:
    """Check the five Section-3.1 properties over a finished run.

    Args:
        replicas: Every governor's ledger copy.
        transcript: The run's broadcast/argue trace.
        run_complete: When False, the Validity check is skipped — a
            still-running system has not had "eventually" yet.

    Returns:
        A :class:`PropertyReport`; inspect ``violations`` for details.
    """
    ledgers = list(replicas)
    if not ledgers:
        raise LedgerError("need at least one replica to check properties")
    report = PropertyReport()

    # Catch exactly the checker's violation exceptions: anything else
    # (including an auditor-raised violation crossing this layer) is a
    # bug in the run, not a property verdict, and must propagate.
    try:
        check_agreement(ledgers)
    except AgreementError as exc:
        report.agreement = False
        report.violations.append(f"agreement: {exc}")

    for ledger in ledgers:
        try:
            ledger.verify_integrity()
        except SkippedBlockError as exc:
            report.no_skipping = False
            report.violations.append(f"no-skipping: {exc}")
        except ChainIntegrityError as exc:
            report.chain_integrity = False
            report.violations.append(f"chain-integrity: {exc}")

    # Almost No Creation: everything in any replica must have been both
    # provider-broadcast and collector-uploaded.
    for ledger in ledgers:
        for serial, rec in ledger.all_records():
            tx_id = rec.tx.tx_id
            if tx_id not in transcript.provider_broadcasts:
                report.almost_no_creation = False
                report.violations.append(
                    f"almost-no-creation: tx {tx_id} in block {serial} of "
                    f"{ledger.owner} was never provider-broadcast"
                )
            if tx_id not in transcript.collector_uploads:
                report.almost_no_creation = False
                report.violations.append(
                    f"almost-no-creation: tx {tx_id} in block {serial} of "
                    f"{ledger.owner} was never collector-uploaded"
                )

    if run_complete:
        reference = ledgers[0]
        for tx_id in transcript.honest_valid_tx:
            found = reference.find_record(tx_id)
            if found is None:
                report.validity = False
                report.violations.append(
                    f"validity: honest valid tx {tx_id} never appeared in a block"
                )
                continue
            _block, rec = found
            # "Appear in a block eventually" with its true (valid) status:
            # either checked-valid, or re-evaluated to valid after an argue.
            ok = rec.label is Label.VALID or rec.status is CheckStatus.REEVALUATED
            if not ok:
                report.validity = False
                report.violations.append(
                    f"validity: honest valid tx {tx_id} is permanently "
                    f"recorded as {rec.label.name}/{rec.status.value}"
                )
    return report
