"""Reputation-aware sharding: S committees, one clock, atomic cross-shard commits.

The scale-out subsystem the ROADMAP's production north-star calls for:
:class:`ShardCoordinator` partitions the provider/collector/governor
population into shards (:meth:`repro.network.topology.Topology.sharded`),
runs one :class:`~repro.core.netengine.NetworkedProtocolEngine` per
shard on a shared simulator clock with overlapping rounds, relays
signed :class:`~repro.sharding.receipts.CrossShardReceipt` certificates
for cross-shard transactions, and rebalances collectors across shards
each epoch by live reputation mass (RepChain-style,
:mod:`repro.sharding.assignment`).  Atomicity of the two-leg commit is
certified by :class:`repro.audit.CrossShardAuditor`.
"""

from repro.sharding.assignment import (
    Migration,
    migration_moves,
    reshuffle_assignment,
)
from repro.sharding.coordinator import ShardCoordinator, SuperRoundResult
from repro.sharding.receipts import (
    CrossShardReceipt,
    make_receipt,
    receipt_id_for,
    verify_receipt,
)

__all__ = [
    "CrossShardReceipt",
    "Migration",
    "ShardCoordinator",
    "SuperRoundResult",
    "make_receipt",
    "migration_moves",
    "receipt_id_for",
    "reshuffle_assignment",
    "verify_receipt",
]
