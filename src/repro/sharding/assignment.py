"""Reputation-weighted shard assignment and epoch reshuffling.

RepChain-style placement: collectors are distributed so every shard
hosts an (approximately) equal share of the total reputation mass, and
each epoch the assignment is recomputed from the *live* reputation
books and collectors migrate accordingly.  Everything here is pure and
deterministic — the seeded permutation is the only randomness, derived
from ``(seed, epoch)`` so a reshuffle schedule is reproducible
bit-for-bit and two coordinators with the same seed shuffle
identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.topology import balanced_groups

__all__ = ["Migration", "migration_moves", "reshuffle_assignment"]


@dataclass(frozen=True)
class Migration:
    """One collector's move in an epoch reshuffle."""

    collector: str
    source: int
    target: int


def reshuffle_assignment(
    current: dict[str, int],
    masses: dict[str, float],
    shards: int,
    seed: int,
    epoch: int,
) -> dict[str, int]:
    """Recompute the collector -> shard map for a new epoch.

    The collector universe is permuted with an RNG seeded by
    ``(seed, epoch)`` (deterministic, epoch-varying tie-breaking), then
    greedily re-packed into equal-size, reputation-balanced groups by
    :func:`repro.network.topology.balanced_groups`.

    Raises:
        ConfigurationError: when the current map is not evenly sharded.
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shards}")
    ids = sorted(current)
    if len(ids) % shards:
        raise ConfigurationError(
            f"{len(ids)} collectors cannot split evenly into {shards} shards"
        )
    rng = np.random.default_rng([seed, epoch])
    permuted = [ids[int(i)] for i in rng.permutation(len(ids))]
    groups = balanced_groups(permuted, masses, shards)
    return {cid: k for k, group in enumerate(groups) for cid in group}


def migration_moves(
    current: dict[str, int], target: dict[str, int]
) -> list[Migration]:
    """The collectors that change shard between two assignments, sorted.

    Raises:
        ConfigurationError: when the two maps cover different collectors
            or per-shard counts differ (migrations must fill exactly the
            slots that departures vacate).
    """
    if set(current) != set(target):
        raise ConfigurationError("assignments cover different collector sets")
    for k in set(current.values()) | set(target.values()):
        before = sum(1 for s in current.values() if s == k)
        after = sum(1 for s in target.values() if s == k)
        if before != after:
            raise ConfigurationError(
                f"shard {k} size changes {before} -> {after}; reshuffles "
                "must preserve per-shard collector counts"
            )
    return [
        Migration(collector=cid, source=current[cid], target=target[cid])
        for cid in sorted(current)
        if current[cid] != target[cid]
    ]
