"""The shard coordinator: the driver half of sharded execution.

:class:`ShardCoordinator` routes workload, mints/relays cross-shard
receipts, audits atomicity, and reshuffles collectors by reputation
mass — while the actual protocol engines run behind a pluggable
:class:`~repro.parallel.ShardExecutionBackend`:

* the **serial** backend (default, ``workers=None`` or ``1``) hosts all
  ``S`` engines in-process on one shared
  :class:`~repro.network.simnet.Simulator` — the original coordinator
  execution model, bit for bit;
* the **parallel** backend (``workers >= 2``) hosts each shard's engine
  in a spawned worker process with deterministic barrier sync at the
  phase boundaries (:mod:`repro.parallel`), turning sim-time shard
  scaling into *wall-clock* scaling on multi-core hosts.

Both backends produce **bit-identical ledgers** for the same seed: the
driver issues the same phase targets, preserves per-remote-shard
receipt-relay order, and performs reshuffle release/adopt calls in the
same per-engine order regardless of where the engines live.

**Super-rounds.**  A super-round starts round ``t`` on *every* shard
(:meth:`~repro.core.netengine.NetworkedProtocolEngine.begin_round`),
drains every shard's simulator to the same barrier time so the shards'
rounds overlap in simulated time, runs every argue phase, drains again,
and closes all rounds.  S shards commit up to ``S * b_limit`` records
in the same sim-seconds one shard commits ``b_limit`` — the aggregate
throughput scaling ``benchmarks/bench_shards.py`` (E14) measures, and
the parallel backend realises in wall-clock (E16).

**Cross-shard transactions.**  The workload marks a transaction whose
counterparty provider lives on another shard (payload key
``"xshard_to"``).  It commits on its home shard like any transaction;
the backend scan then mints a :class:`~repro.sharding.receipts.
CrossShardReceipt` signed by the home proposer and verified against the
home identity manager, and the driver relays it to every governor of
the remote shard (surviving any single governor crash).  The remote
leader packs the receipt as a relay-signed record.  Exactly-once is
layered: content-derived receipt ids, per-governor buffer dedup, the
engine-wide applied-id set, and the pack-time ``_packed_tx_ids``
filter.  Receipts are *not* fault-exempt — lost relays are re-sent
every super-round until the remote commit lands, and the
:class:`~repro.audit.CrossShardAuditor` certifies no receipt was ever
half-applied or replayed.

**Epoch reshuffling.**  Every ``epoch_rounds`` super-rounds (or on an
explicit :meth:`reshuffle` call) the coordinator reads live reputation
masses from every engine, recomputes the balanced assignment
(:mod:`repro.sharding.assignment`), and migrates collectors: the source
engine retires them through the churn rules, the destination admits
them into the vacated provider slots via the **median-bootstrap**
readmission path — reputation never travels across shards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.agents.behaviors import CollectorBehavior
from repro.audit.config import AuditConfig
from repro.audit.xshard import CrossShardAuditor
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.network.topology import ShardedTopology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.parallel.backend import SerialBackend, ShardChainStats
from repro.parallel.pool import ParallelBackend, parallel_metrics
from repro.sharding.assignment import (
    Migration,
    migration_moves,
    reshuffle_assignment,
)
from repro.sharding.receipts import CrossShardReceipt
from repro.workloads.generator import TxSpec

__all__ = ["ShardCoordinator", "SuperRoundResult"]


@dataclass
class SuperRoundResult:
    """Outcome of one super-round across all shards."""

    round_number: int
    #: Per-shard round outcomes: :class:`~repro.core.netengine.
    #: NetworkedRoundResult` under the serial backend, picklable
    #: :class:`~repro.parallel.ShardRoundInfo` under the parallel one.
    shard_results: list
    #: Origin (non-receipt) records committed this super-round.
    committed_tx: int
    #: Receipts minted from fresh home-shard commits this super-round.
    receipts_minted: int
    #: Receipt records that landed on their remote shard this super-round.
    receipts_committed: int
    #: Migrations applied by an epoch reshuffle at the end of the round.
    migrations: list[Migration] = field(default_factory=list)


class _VerifiedIM:
    """Stand-in identity manager carrying a pre-computed verdict.

    Receipt signatures are verified where the home shard's keys live —
    in-process for the serial backend, worker-side for the parallel one
    — and the verdict travels with the scan event.  This shim lets the
    driver-side :class:`CrossShardAuditor` run its usual
    ``im.verify(...)`` check (same ``checks_run`` accounting) against
    that verdict without needing a live identity manager.
    """

    __slots__ = ("_verdict",)

    def __init__(self, verdict: bool):
        self._verdict = verdict

    def verify(self, node_id, message, signature) -> bool:
        return self._verdict


class ShardCoordinator:
    """Drive ``S`` shard engines through overlapping rounds.

    Args:
        topology: The sharded deployment (:meth:`Topology.sharded`).
        params: Shared protocol parameters (one ``b_limit`` per shard
            block, so aggregate capacity scales with the shard count).
        behaviors: Global collector id -> behaviour map; each behaviour
            follows its collector through epoch migrations.
        seed: Master seed.  Shard ``k``'s engine derives its own seed
            from it, and reshuffle permutations mix in the epoch.
        epoch_rounds: Reshuffle every this many super-rounds (None:
            only on explicit :meth:`reshuffle` calls).
        min_delay / max_delay / resilience / obs / audit: Forwarded to
            every shard engine (see
            :class:`~repro.core.netengine.NetworkedProtocolEngine`).
        workers: ``None`` or ``1`` selects the serial in-process
            backend; ``>= 2`` spawns that many worker processes and
            distributes shards round-robin (capped at the shard count).
        storage: Optional per-shard
            :class:`~repro.storage.StorageConfig` list — required for
            post-crash worker restarts under the parallel backend.
        worker_timeout: Per-phase barrier timeout (seconds) before a
            silent worker is declared crashed (parallel backend only).
    """

    def __init__(
        self,
        topology: ShardedTopology,
        params: ProtocolParams,
        behaviors: Mapping[str, CollectorBehavior] | None = None,
        seed: int = 0,
        epoch_rounds: int | None = None,
        min_delay: float = 0.005,
        max_delay: float = 0.05,
        resilience: bool = False,
        obs: MetricsRegistry | None = None,
        audit: AuditConfig | None = None,
        workers: int | None = None,
        storage: Sequence[object | None] | None = None,
        worker_timeout: float = 60.0,
    ):
        if epoch_rounds is not None and epoch_rounds < 1:
            raise ConfigurationError(f"epoch_rounds must be >= 1, got {epoch_rounds}")
        self.topology = topology
        self.params = params
        self.seed = seed
        self.epoch_rounds = epoch_rounds
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._behaviors = dict(behaviors or {})
        self._max_delay = max_delay
        if workers is not None and workers >= 2:
            self.backend = ParallelBackend(
                topology,
                params,
                behaviors=self._behaviors,
                seed=seed,
                min_delay=min_delay,
                max_delay=max_delay,
                resilience=resilience,
                obs=self.obs,
                audit=audit,
                storage=storage,
                workers=workers,
                phase_timeout=worker_timeout,
            )
        else:
            self.backend = SerialBackend(
                topology,
                params,
                behaviors=self._behaviors,
                seed=seed,
                min_delay=min_delay,
                max_delay=max_delay,
                resilience=resilience,
                obs=self.obs,
                audit=audit,
                storage=storage,
            )
        self.obs.bind_clock(lambda: self.now)
        self.auditor = CrossShardAuditor(obs=self.obs)
        self.provider_shard = dict(topology.provider_shard)
        self.collector_shard = dict(topology.collector_shard)
        self._round = 0
        self._epoch = 0
        # Per-shard scan cursor into the published store (receipt minting).
        self._cursors = [0] * topology.num_shards
        # Per-shard offered-but-not-yet-started workload.
        self._backlog: list[deque[TxSpec]] = [deque() for _ in topology.shards]
        # receipt_id -> (receipt, home-commit sim time) awaiting remote leg.
        self._pending: dict[str, tuple[CrossShardReceipt, float]] = {}
        # (super-round, epoch, migrations applied)
        self.reshuffle_log: list[tuple[int, int, list[Migration]]] = []
        self.committed_total = 0
        self._m_rounds = self.obs.counter(
            "shard_rounds_total", "Per-shard rounds executed", labels=("shard",)
        )
        self._m_committed = self.obs.counter(
            "shard_committed_tx_total",
            "Origin (non-receipt) records committed, by shard",
            labels=("shard",),
        )
        self._m_cross_out = self.obs.counter(
            "shard_cross_tx_out_total",
            "Cross-shard transactions home-committed (receipts minted), by home shard",
            labels=("shard",),
        )
        self._m_cross_in = self.obs.counter(
            "shard_cross_tx_in_total",
            "Cross-shard receipts committed on their remote shard, by that shard",
            labels=("shard",),
        )
        self._m_relays = self.obs.counter(
            "shard_receipt_relays_total",
            "Receipt relay fan-outs, first sends vs retries",
            labels=("attempt",),
        )
        self._m_cross_latency = self.obs.histogram(
            "shard_cross_latency_seconds",
            "Sim-time from home-shard commit to remote-shard commit",
            buckets=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        )
        self._m_reshuffles = self.obs.counter(
            "shard_reshuffles_total", "Epoch reshuffles executed"
        )
        self._m_migrations = self.obs.counter(
            "shard_migrations_total", "Collector migrations applied by reshuffles"
        )
        self._m_mass = self.obs.gauge(
            "shard_reputation_mass",
            "Total live collector reputation mass hosted, by shard",
            labels=("shard",),
        )
        # Register the par_* family on every backend so serial runs
        # export them (at zero) too — OBSERVABILITY.md coverage is
        # backend-independent.
        parallel_metrics(self.obs)
        self._update_mass_gauge()

    # -- backend access ----------------------------------------------------

    @property
    def now(self) -> float:
        """The shared barrier clock (simulated seconds)."""
        return self.backend.now()

    @property
    def engines(self):
        """The live shard engines — serial backend only.

        Under the parallel backend the engines live in worker
        processes; use :meth:`chain_stats`, :meth:`tip_hashes`, or
        :meth:`collector_masses` for cross-backend reporting.
        """
        if self.backend.kind != "serial":
            raise ConfigurationError(
                "shard engines live in worker processes under the parallel "
                "backend; use chain_stats()/tip_hashes() instead"
            )
        return self.backend.engines

    @property
    def sim(self):
        """The shared simulator — serial backend only (see :attr:`now`)."""
        if self.backend.kind != "serial":
            raise ConfigurationError(
                "no shared in-process simulator under the parallel backend; "
                "use .now for the barrier clock"
            )
        return self.backend.sim

    # -- workload routing -------------------------------------------------

    def submit(self, specs: Sequence[TxSpec]) -> None:
        """Queue workload; each spec lands on its provider's home shard.

        Shards consume their backlog at up to ``b_limit`` per round, so
        offered load beyond capacity is buffered, not dropped — the
        saturation regime the throughput benchmark runs in.
        """
        for spec in specs:
            shard = self.provider_shard.get(spec.provider)
            if shard is None:
                raise ConfigurationError(f"unknown provider {spec.provider!r}")
            self._backlog[shard].append(spec)

    def backlog_depth(self) -> int:
        """Total specs queued and not yet offered to a shard."""
        return sum(len(q) for q in self._backlog)

    # -- super-round execution --------------------------------------------

    def run_super_round(self) -> SuperRoundResult:
        """Run one protocol round on every shard, overlapped in sim time."""
        self._round += 1
        # Re-relay receipts whose remote commit is still outstanding
        # (first relay lost to faults, or the remote leader crashed
        # before packing).  Receiver-side dedup makes retries harmless.
        if self._pending:
            retry: dict[int, list[CrossShardReceipt]] = {}
            for rid in sorted(self._pending):
                receipt = self._pending[rid][0]
                retry.setdefault(receipt.remote_shard, []).append(receipt)
                self._m_relays.labels(attempt="retry").inc()
            self.backend.relay(retry)
        carryover = self.backend.carryover()
        specs: list[list[TxSpec]] = []
        for k in range(self.topology.num_shards):
            capacity = self.params.b_limit - carryover[k]
            queue = self._backlog[k]
            specs.append(
                [queue.popleft() for _ in range(min(max(capacity, 0), len(queue)))]
            )
        drain_until = self.backend.begin_round(specs)
        self.backend.run_until(max(drain_until))
        argue_until = self.backend.begin_argue()
        self.backend.run_until(max(argue_until))
        results = self.backend.complete_round()
        for k in range(self.topology.num_shards):
            self._m_rounds.labels(shard=str(k)).inc()
        minted, receipts_in, origin = self._ingest_scans()
        self.committed_total += origin
        migrations: list[Migration] = []
        if self.epoch_rounds is not None and self._round % self.epoch_rounds == 0:
            migrations = self.reshuffle()
        self._update_mass_gauge()
        return SuperRoundResult(
            round_number=self._round,
            shard_results=results,
            committed_tx=origin,
            receipts_minted=minted,
            receipts_committed=receipts_in,
            migrations=migrations,
        )

    def _ingest_scans(self) -> tuple[int, int, int]:
        """Advance block cursors: mint+relay receipts, settle remote legs.

        The backend scans each shard's chain past the driver's cursor
        and reports, in exact commit order, receipt landings and freshly
        minted (home-verified) receipts.  The driver audits both legs
        and batches first relays per remote shard — batch order is each
        remote shard's arrival order under the old per-receipt relay
        loop, so remote network latency draws are unchanged.
        """
        minted = receipts_in = origin = 0
        first: dict[int, list[CrossShardReceipt]] = {}
        for scan in self.backend.scan_commits(self._cursors):
            k = scan.shard
            self._cursors[k] = scan.cursor
            origin += scan.origin
            if scan.origin:
                self._m_committed.labels(shard=str(k)).inc(scan.origin)
            for event in scan.events:
                if event[0] == "r":
                    _, rid, serial = event
                    receipts_in += 1
                    self._m_cross_in.labels(shard=str(k)).inc()
                    pending = self._pending.pop(rid, None)
                    if pending is not None:
                        self._m_cross_latency.observe(self.now - pending[1])
                    self.auditor.record_remote_commit(
                        rid, shard=k, serial=serial, round_number=self._round
                    )
                    continue
                _, receipt, verified = event
                if not verified:
                    self.auditor.record_home_commit(
                        receipt, _VerifiedIM(False), self._round
                    )
                    raise ConfigurationError(
                        f"refusing to relay unverifiable receipt {receipt.receipt_id}"
                    )
                self.auditor.record_home_commit(
                    receipt, _VerifiedIM(True), self._round
                )
                minted += 1
                self._m_cross_out.labels(shard=str(k)).inc()
                self._pending[receipt.receipt_id] = (receipt, self.now)
                first.setdefault(receipt.remote_shard, []).append(receipt)
                self._m_relays.labels(attempt="first").inc()
        if first:
            self.backend.relay(first)
        return minted, receipts_in, origin

    # -- epoch reshuffling -------------------------------------------------

    def reshuffle(self) -> list[Migration]:
        """Rebalance collectors across shards by live reputation mass.

        Reads every engine's collector masses, recomputes the seeded
        balanced assignment for the new epoch, and migrates the
        collectors that change shard: released from the source engine
        (churn retirement) and adopted by the destination into the
        vacated provider slots via median-bootstrap readmission.
        Returns the migrations applied (possibly none).
        """
        self._epoch += 1
        masses = self.backend.collector_masses()
        target = reshuffle_assignment(
            self.collector_shard,
            masses,
            self.topology.num_shards,
            seed=self.seed,
            epoch=self._epoch,
        )
        moves = migration_moves(self.collector_shard, target)
        # Release every migrant first (capturing its provider slots and
        # live behaviour), then fill each shard's vacancies in sorted
        # arrival order — deterministic slot inheritance.  Per-engine
        # call order follows the sorted move order on both backends.
        release_order: dict[int, list[str]] = {}
        for move in moves:
            release_order.setdefault(move.source, []).append(move.collector)
        released = self.backend.release_collectors(release_order)
        vacancies: dict[int, deque[tuple[str, ...]]] = {}
        for move in moves:
            providers, _ = released[move.collector]
            vacancies.setdefault(move.source, deque()).append(providers)
        adoptions = []
        for move in moves:
            slots = vacancies[move.target].popleft()
            _, behavior = released[move.collector]
            adoptions.append((move.target, move.collector, slots, behavior))
        self.backend.adopt_collectors(adoptions)
        self.collector_shard = dict(target)
        self.reshuffle_log.append((self._round, self._epoch, moves))
        self._m_reshuffles.inc()
        self._m_migrations.inc(len(moves))
        self._update_mass_gauge()
        return moves

    def collector_masses(self) -> dict[str, float]:
        """Live reputation mass per collector, across every shard."""
        return self.backend.collector_masses()

    def _update_mass_gauge(self) -> None:
        if self.obs is NULL_REGISTRY:
            return  # skip the (possibly cross-process) mass read
        masses = self.backend.collector_masses()
        totals = [0.0] * self.topology.num_shards
        for cid, mass in masses.items():
            totals[self.collector_shard[cid]] += mass
        for k, total in enumerate(totals):
            self._m_mass.labels(shard=str(k)).set(total)

    # -- faults, finalisation, reporting -----------------------------------

    def install_faults(self, shard: int, plan: FaultPlan, tamperer=None):
        """Install a seeded fault plan on one shard's engine.

        Serial backend: returns the live
        :class:`~repro.faults.FaultInjector`.  Parallel backend: the
        injector lives worker-side and ``None`` is returned; tamperers
        (live callbacks) are rejected there.
        """
        return self.backend.install_faults(shard, plan, tamperer=tamperer)

    def restart_worker(self, worker: int) -> None:
        """Respawn a crashed worker from durable storage (parallel only)."""
        if self.backend.kind != "parallel":
            raise ConfigurationError(
                "restart_worker requires the parallel backend"
            )
        self.backend.restart_worker(worker)

    def flush(self, max_rounds: int = 6) -> int:
        """Run empty super-rounds until no receipt awaits its remote leg.

        Returns the number of flush rounds executed.  Bounded: a receipt
        that cannot land within ``max_rounds`` (e.g. its remote shard
        has no live governor) is left pending for :meth:`finalize`'s
        auditor to flag as half-applied.
        """
        executed = 0
        # Stash the backlog so flush rounds are genuinely empty — under
        # saturating offered load the drain could otherwise mint new
        # receipts every round and never converge.
        stashed = self._backlog
        self._backlog = [deque() for _ in range(self.topology.num_shards)]
        try:
            while self._pending and executed < max_rounds:
                self.run_super_round()
                executed += 1
        finally:
            self._backlog = stashed
        return executed

    def finalize(self, flush: bool = True):
        """Close the run: drain relays, finalize engines, audit atomicity.

        Returns the :class:`~repro.audit.auditor.AuditReport` of the
        cross-shard auditor; ``report.clean`` means every cross-shard
        transaction committed exactly once on both legs.  Workers (if
        any) stay up for post-run reporting — call :meth:`close` when
        done with the coordinator.
        """
        if flush:
            self.flush()
        self._drain_recovery()
        self.backend.finalize_engines()
        return self.auditor.finalize(self._round)

    def _drain_recovery(self) -> None:
        """Walk each shard's end-of-run recovery drain at shared targets.

        Mirrors :meth:`~repro.core.netengine.NetworkedProtocolEngine.
        drain_recovery` shard by shard, but issues the clock advances
        through the backend so *every* engine reaches the same barrier
        times — the final simulated clock (and sim-time throughput) is
        then identical between the serial and parallel backends.  Cheap
        when resilience is off: one probe per shard, no advances.
        """
        grace = 40 * self._max_delay
        cycles = 6
        for k in range(self.topology.num_shards):
            for _ in range(cycles):
                if not self.backend.repair_scan(k):
                    break
                self.backend.run_until(self.now + grace / cycles)

    def close(self) -> None:
        """Tear down the execution backend (shuts worker processes down)."""
        self.backend.close()

    def throughput(self) -> float:
        """Aggregate committed origin records per simulated second."""
        if self.now <= 0:
            return 0.0
        return self.committed_total / self.now

    def tip_hashes(self) -> list[str]:
        """Each shard's chain tip hash (the determinism fingerprint)."""
        return self.backend.tip_hashes()

    def chain_stats(self) -> list[ShardChainStats]:
        """Per-shard chain summaries (works on every backend)."""
        return self.backend.chain_stats()
