"""The shard coordinator: S protocol engines on one simulated clock.

:class:`ShardCoordinator` owns a single
:class:`~repro.network.simnet.Simulator` and runs one
:class:`~repro.core.netengine.NetworkedProtocolEngine` per shard of a
:class:`~repro.network.topology.ShardedTopology` on it.  Each engine
keeps its own network, broadcast fabric, identity manager, and ledger
family — shards are sovereign committees; only the clock, the workload
router, and the receipt relay connect them.

**Super-rounds.**  A super-round starts round ``t`` on *every* shard
(:meth:`~repro.core.netengine.NetworkedProtocolEngine.begin_round`),
drains the shared simulator once so all shards' packet traffic
interleaves in one timeline, runs every argue phase, drains again, and
closes all rounds.  The shards' rounds therefore **overlap** in
simulated time: S shards commit up to ``S * b_limit`` records in the
same sim-seconds one shard commits ``b_limit`` — the aggregate
throughput scaling ``benchmarks/bench_shards.py`` (E14) measures.

**Cross-shard transactions.**  The workload marks a transaction whose
counterparty provider lives on another shard (payload key
``"xshard_to"``).  It commits on its home shard like any transaction;
the coordinator then mints a :class:`~repro.sharding.receipts.
CrossShardReceipt` signed by the home proposer, verifies it against the
home identity manager, and relays it to every governor of the remote
shard (surviving any single governor crash).  The remote leader packs
the receipt as a relay-signed record.  Exactly-once is layered:
content-derived receipt ids, per-governor buffer dedup, the engine-wide
applied-id set, and the pack-time ``_packed_tx_ids`` filter.  Receipts
are *not* fault-exempt — lost relays are re-sent every super-round
until the remote commit lands, and the
:class:`~repro.audit.CrossShardAuditor` certifies no receipt was ever
half-applied or replayed.

**Epoch reshuffling.**  Every ``epoch_rounds`` super-rounds (or on an
explicit :meth:`reshuffle` call) the coordinator reads live reputation
masses from every engine, recomputes the balanced assignment
(:mod:`repro.sharding.assignment`), and migrates collectors: the source
engine retires them through the churn rules, the destination admits
them into the vacated provider slots via the **median-bootstrap**
readmission path — reputation never travels across shards.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.agents.behaviors import CollectorBehavior
from repro.audit.config import AuditConfig
from repro.audit.xshard import CrossShardAuditor
from repro.core.netengine import NetworkedProtocolEngine, NetworkedRoundResult
from repro.core.params import ProtocolParams
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.network.simnet import Simulator
from repro.network.topology import ShardedTopology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.sharding.assignment import (
    Migration,
    migration_moves,
    reshuffle_assignment,
)
from repro.sharding.receipts import CrossShardReceipt, make_receipt, verify_receipt
from repro.workloads.generator import TxSpec

__all__ = ["ShardCoordinator", "SuperRoundResult"]


@dataclass
class SuperRoundResult:
    """Outcome of one super-round across all shards."""

    round_number: int
    shard_results: list[NetworkedRoundResult]
    #: Origin (non-receipt) records committed this super-round.
    committed_tx: int
    #: Receipts minted from fresh home-shard commits this super-round.
    receipts_minted: int
    #: Receipt records that landed on their remote shard this super-round.
    receipts_committed: int
    #: Migrations applied by an epoch reshuffle at the end of the round.
    migrations: list[Migration] = field(default_factory=list)


class ShardCoordinator:
    """Drive ``S`` shard engines through overlapping rounds.

    Args:
        topology: The sharded deployment (:meth:`Topology.sharded`).
        params: Shared protocol parameters (one ``b_limit`` per shard
            block, so aggregate capacity scales with the shard count).
        behaviors: Global collector id -> behaviour map; each behaviour
            follows its collector through epoch migrations.
        seed: Master seed.  Shard ``k``'s engine derives its own seed
            from it, and reshuffle permutations mix in the epoch.
        epoch_rounds: Reshuffle every this many super-rounds (None:
            only on explicit :meth:`reshuffle` calls).
        min_delay / max_delay / resilience / obs / audit: Forwarded to
            every shard engine (see
            :class:`~repro.core.netengine.NetworkedProtocolEngine`).
    """

    def __init__(
        self,
        topology: ShardedTopology,
        params: ProtocolParams,
        behaviors: Mapping[str, CollectorBehavior] | None = None,
        seed: int = 0,
        epoch_rounds: int | None = None,
        min_delay: float = 0.005,
        max_delay: float = 0.05,
        resilience: bool = False,
        obs: MetricsRegistry | None = None,
        audit: AuditConfig | None = None,
    ):
        if epoch_rounds is not None and epoch_rounds < 1:
            raise ConfigurationError(f"epoch_rounds must be >= 1, got {epoch_rounds}")
        self.topology = topology
        self.params = params
        self.seed = seed
        self.epoch_rounds = epoch_rounds
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.sim = Simulator(seed=seed)
        self.obs.bind_clock(lambda: self.sim.now)
        self._behaviors = dict(behaviors or {})
        self.engines: list[NetworkedProtocolEngine] = []
        for k, shard_topo in enumerate(topology.shards):
            shard_behaviors = {
                cid: b
                for cid, b in self._behaviors.items()
                if cid in shard_topo.collectors
            }
            engine = NetworkedProtocolEngine(
                shard_topo,
                params,
                behaviors=shard_behaviors,
                seed=seed + 7919 * (k + 1),
                min_delay=min_delay,
                max_delay=max_delay,
                resilience=resilience,
                obs=self.obs,
                audit=audit,
                sim=self.sim,
            )
            engine.enable_xshard(relay_id=f"relay-s{k}")
            self.engines.append(engine)
        self.auditor = CrossShardAuditor(obs=self.obs)
        self.provider_shard = dict(topology.provider_shard)
        self.collector_shard = dict(topology.collector_shard)
        self._round = 0
        self._epoch = 0
        # Per-shard scan cursor into the published store (receipt minting).
        self._cursors = [0] * topology.num_shards
        # Per-shard offered-but-not-yet-started workload.
        self._backlog: list[deque[TxSpec]] = [deque() for _ in topology.shards]
        # receipt_id -> (receipt, home-commit sim time) awaiting remote leg.
        self._pending: dict[str, tuple[CrossShardReceipt, float]] = {}
        # (super-round, epoch, migrations applied)
        self.reshuffle_log: list[tuple[int, int, list[Migration]]] = []
        self.committed_total = 0
        self._m_rounds = self.obs.counter(
            "shard_rounds_total", "Per-shard rounds executed", labels=("shard",)
        )
        self._m_committed = self.obs.counter(
            "shard_committed_tx_total",
            "Origin (non-receipt) records committed, by shard",
            labels=("shard",),
        )
        self._m_cross_out = self.obs.counter(
            "shard_cross_tx_out_total",
            "Cross-shard transactions home-committed (receipts minted), by home shard",
            labels=("shard",),
        )
        self._m_cross_in = self.obs.counter(
            "shard_cross_tx_in_total",
            "Cross-shard receipts committed on their remote shard, by that shard",
            labels=("shard",),
        )
        self._m_relays = self.obs.counter(
            "shard_receipt_relays_total",
            "Receipt relay fan-outs, first sends vs retries",
            labels=("attempt",),
        )
        self._m_cross_latency = self.obs.histogram(
            "shard_cross_latency_seconds",
            "Sim-time from home-shard commit to remote-shard commit",
            buckets=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        )
        self._m_reshuffles = self.obs.counter(
            "shard_reshuffles_total", "Epoch reshuffles executed"
        )
        self._m_migrations = self.obs.counter(
            "shard_migrations_total", "Collector migrations applied by reshuffles"
        )
        self._m_mass = self.obs.gauge(
            "shard_reputation_mass",
            "Total live collector reputation mass hosted, by shard",
            labels=("shard",),
        )
        self._update_mass_gauge()

    # -- workload routing -------------------------------------------------

    def submit(self, specs: Sequence[TxSpec]) -> None:
        """Queue workload; each spec lands on its provider's home shard.

        Shards consume their backlog at up to ``b_limit`` per round, so
        offered load beyond capacity is buffered, not dropped — the
        saturation regime the throughput benchmark runs in.
        """
        for spec in specs:
            shard = self.provider_shard.get(spec.provider)
            if shard is None:
                raise ConfigurationError(f"unknown provider {spec.provider!r}")
            self._backlog[shard].append(spec)

    def backlog_depth(self) -> int:
        """Total specs queued and not yet offered to a shard."""
        return sum(len(q) for q in self._backlog)

    # -- super-round execution --------------------------------------------

    def run_super_round(self) -> SuperRoundResult:
        """Run one protocol round on every shard, overlapped in sim time."""
        self._round += 1
        # Re-relay receipts whose remote commit is still outstanding
        # (first relay lost to faults, or the remote leader crashed
        # before packing).  Receiver-side dedup makes retries harmless.
        for rid in sorted(self._pending):
            self._relay(self._pending[rid][0], attempt="retry")
        ctxs = []
        for k, engine in enumerate(self.engines):
            capacity = self.params.b_limit - len(engine._reevaluated_queue)
            queue = self._backlog[k]
            specs = [queue.popleft() for _ in range(min(max(capacity, 0), len(queue)))]
            ctxs.append(engine.begin_round(specs))
        self.sim.run(until=max(ctx.drain_until for ctx in ctxs))
        argue_until = [
            engine.begin_argue(ctx) for engine, ctx in zip(self.engines, ctxs)
        ]
        self.sim.run(until=max(argue_until))
        results = [
            engine.complete_round(ctx) for engine, ctx in zip(self.engines, ctxs)
        ]
        for k in range(len(self.engines)):
            self._m_rounds.labels(shard=str(k)).inc()
        minted, receipts_in, origin = self._scan_and_relay()
        self.committed_total += origin
        migrations: list[Migration] = []
        if self.epoch_rounds is not None and self._round % self.epoch_rounds == 0:
            migrations = self.reshuffle()
        self._update_mass_gauge()
        return SuperRoundResult(
            round_number=self._round,
            shard_results=results,
            committed_tx=origin,
            receipts_minted=minted,
            receipts_committed=receipts_in,
            migrations=migrations,
        )

    def _scan_and_relay(self) -> tuple[int, int, int]:
        """Advance block cursors: mint+relay receipts, settle remote legs."""
        minted = receipts_in = origin = 0
        for k, engine in enumerate(self.engines):
            while self._cursors[k] < engine.store.height:
                self._cursors[k] += 1
                block = engine.store.retrieve(self._cursors[k])
                for record in block.tx_list:
                    payload = record.tx.body.payload
                    if isinstance(payload, dict) and "xshard_receipt" in payload:
                        receipts_in += 1
                        self._m_cross_in.labels(shard=str(k)).inc()
                        rid = payload["xshard_receipt"]
                        pending = self._pending.pop(rid, None)
                        if pending is not None:
                            self._m_cross_latency.observe(self.sim.now - pending[1])
                        self.auditor.record_remote_commit(
                            rid, shard=k, serial=block.serial, round_number=self._round
                        )
                        continue
                    origin += 1
                    self._m_committed.labels(shard=str(k)).inc()
                    if not (isinstance(payload, dict) and "xshard_to" in payload):
                        continue
                    target = self.provider_shard.get(payload["xshard_to"])
                    if target is None or target == k:
                        continue  # same-shard counterparty needs no relay
                    receipt = make_receipt(
                        engine.governors[block.proposer].key,
                        home_shard=k,
                        remote_shard=target,
                        tx_id=record.tx.tx_id,
                        home_serial=block.serial,
                    )
                    self.auditor.record_home_commit(receipt, engine.im, self._round)
                    minted += 1
                    self._m_cross_out.labels(shard=str(k)).inc()
                    self._pending[receipt.receipt_id] = (receipt, self.sim.now)
                    self._relay(receipt, attempt="first")
        return minted, receipts_in, origin

    def _relay(self, receipt: CrossShardReceipt, attempt: str) -> None:
        """Fan a verified receipt out to every remote-shard governor.

        Sending to the full governor set (not just the next leader)
        is what lets a relay survive any single governor crash: the
        eventual pack-time leader, whoever it is, holds the receipt.
        """
        engine = self.engines[receipt.remote_shard]
        home = self.engines[receipt.home_shard]
        if not verify_receipt(receipt, home.im):
            raise ConfigurationError(
                f"refusing to relay unverifiable receipt {receipt.receipt_id}"
            )
        relay_id = engine._xshard_relay
        for gid in engine.topology.governors:
            engine.network.send(relay_id, gid, receipt)
        self._m_relays.labels(attempt=attempt).inc()

    # -- epoch reshuffling -------------------------------------------------

    def reshuffle(self) -> list[Migration]:
        """Rebalance collectors across shards by live reputation mass.

        Reads every engine's :meth:`collector_masses`, recomputes the
        seeded balanced assignment for the new epoch, and migrates the
        collectors that change shard: released from the source engine
        (churn retirement) and adopted by the destination into the
        vacated provider slots via median-bootstrap readmission.
        Returns the migrations applied (possibly none).
        """
        self._epoch += 1
        masses: dict[str, float] = {}
        for engine in self.engines:
            masses.update(engine.collector_masses())
        target = reshuffle_assignment(
            self.collector_shard,
            masses,
            self.topology.num_shards,
            seed=self.seed,
            epoch=self._epoch,
        )
        moves = migration_moves(self.collector_shard, target)
        # Release every migrant first (capturing its provider slots and
        # live behaviour), then fill each shard's vacancies in sorted
        # arrival order — deterministic slot inheritance.
        released: dict[str, tuple[tuple[str, ...], CollectorBehavior]] = {}
        vacancies: dict[int, deque[tuple[str, ...]]] = {}
        for move in moves:
            providers, behavior = self.engines[move.source].release_collector(
                move.collector
            )
            released[move.collector] = (providers, behavior)
            vacancies.setdefault(move.source, deque()).append(providers)
        for move in moves:
            slots = vacancies[move.target].popleft()
            _, behavior = released[move.collector]
            self.engines[move.target].adopt_collector(
                move.collector, slots, behavior=behavior
            )
        self.collector_shard = dict(target)
        self.reshuffle_log.append((self._round, self._epoch, moves))
        self._m_reshuffles.inc()
        self._m_migrations.inc(len(moves))
        self._update_mass_gauge()
        return moves

    def _update_mass_gauge(self) -> None:
        for k, engine in enumerate(self.engines):
            total = sum(engine.collector_masses().values())
            self._m_mass.labels(shard=str(k)).set(total)

    # -- faults, finalisation, reporting -----------------------------------

    def install_faults(self, shard: int, plan: FaultPlan, tamperer=None):
        """Install a seeded fault plan on one shard's engine."""
        return self.engines[shard].install_faults(plan, tamperer=tamperer)

    def flush(self, max_rounds: int = 6) -> int:
        """Run empty super-rounds until no receipt awaits its remote leg.

        Returns the number of flush rounds executed.  Bounded: a receipt
        that cannot land within ``max_rounds`` (e.g. its remote shard
        has no live governor) is left pending for :meth:`finalize`'s
        auditor to flag as half-applied.
        """
        executed = 0
        # Stash the backlog so flush rounds are genuinely empty — under
        # saturating offered load the drain could otherwise mint new
        # receipts every round and never converge.
        stashed = self._backlog
        self._backlog = [deque() for _ in self.engines]
        try:
            while self._pending and executed < max_rounds:
                self.run_super_round()
                executed += 1
        finally:
            self._backlog = stashed
        return executed

    def finalize(self, flush: bool = True):
        """Close the run: drain relays, finalize engines, audit atomicity.

        Returns the :class:`~repro.audit.auditor.AuditReport` of the
        cross-shard auditor; ``report.clean`` means every cross-shard
        transaction committed exactly once on both legs.
        """
        if flush:
            self.flush()
        for engine in self.engines:
            engine.finalize()
        return self.auditor.finalize(self._round)

    def throughput(self) -> float:
        """Aggregate committed origin records per simulated second."""
        if self.sim.now <= 0:
            return 0.0
        return self.committed_total / self.sim.now

    def tip_hashes(self) -> list[str]:
        """Each shard's chain tip hash (the determinism fingerprint)."""
        tips = []
        for engine in self.engines:
            height = engine.store.height
            tips.append(
                engine.store.retrieve(height).hash().hex() if height else ""
            )
        return tips
