"""Signed cross-shard commit receipts.

When a cross-shard transaction commits on its home shard, the
coordinator mints a :class:`CrossShardReceipt` — a compact, signed
statement "transaction ``tx_id`` is on shard ``home_shard``'s chain at
serial ``home_serial``" — and relays it to every governor of the
counterparty's shard.  The receipt id is **content-derived**
(:func:`receipt_id_for` hashes the home shard and transaction id), so
every relay attempt, duplicate delivery, and re-mint of the same commit
names the same id; the remote shard's dedup layers key on it, which is
what makes the commit replay-proof.

The signature is the home-shard proposer's, over the full receipt
content, verifiable against the home shard's
:class:`~repro.crypto.identity.IdentityManager` — a remote shard (or
the :class:`~repro.audit.CrossShardAuditor`) accepts no receipt it
cannot authenticate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature, SigningKey, sign

__all__ = ["CrossShardReceipt", "make_receipt", "receipt_id_for", "verify_receipt"]


@dataclass(frozen=True)
class CrossShardReceipt:
    """A home-shard commit certificate for one cross-shard transaction.

    Attributes:
        receipt_id: Content-derived id (see :func:`receipt_id_for`).
        home_shard: Shard index where the transaction committed first.
        remote_shard: Shard index that must commit the receipt.
        tx_id: The committed transaction's id on the home chain.
        home_serial: Serial of the home-shard block carrying it.
        proposer: Governor that packed the home block (the signer).
        signature: ``proposer``'s signature over the receipt content.
    """

    receipt_id: str
    home_shard: int
    remote_shard: int
    tx_id: str
    home_serial: int
    proposer: str
    signature: Signature
    #: Payload discriminator for network dispatch.  Deliberately **not**
    #: in :data:`repro.faults.injector.EXEMPT_KINDS`: receipt relays are
    #: ordinary traffic the fault injector may drop or duplicate — the
    #: dedup/retry machinery, not exemption, provides exactly-once.
    kind: str = field(default="xshard-receipt", repr=False)

    def signed_message(self) -> tuple:
        """The canonical tuple ``signature`` covers."""
        return (
            "xshard-receipt",
            self.receipt_id,
            self.home_shard,
            self.remote_shard,
            self.tx_id,
            self.home_serial,
            self.proposer,
        )


def receipt_id_for(home_shard: int, tx_id: str) -> str:
    """Deterministic receipt id of one (home shard, transaction) commit."""
    return hash_value(("xshard-receipt", home_shard, tx_id)).hex()[:32]


def make_receipt(
    key: SigningKey,
    home_shard: int,
    remote_shard: int,
    tx_id: str,
    home_serial: int,
) -> CrossShardReceipt:
    """Mint the signed receipt for a home-committed cross-shard tx."""
    receipt_id = receipt_id_for(home_shard, tx_id)
    message = (
        "xshard-receipt",
        receipt_id,
        home_shard,
        remote_shard,
        tx_id,
        home_serial,
        key.owner,
    )
    return CrossShardReceipt(
        receipt_id=receipt_id,
        home_shard=home_shard,
        remote_shard=remote_shard,
        tx_id=tx_id,
        home_serial=home_serial,
        proposer=key.owner,
        signature=sign(key, message),
    )


def verify_receipt(receipt: CrossShardReceipt, im) -> bool:
    """Authenticate a receipt against the home shard's identity manager."""
    return im.verify(receipt.proposer, receipt.signed_message(), receipt.signature)
