"""Runtime performance knobs for the hot-path caches.

Every cache added by the performance layer is *semantics-preserving*: a
seeded run produces bit-identical ledgers and experiment outputs whether
the caches are enabled or force-disabled.  This module is the single
switchboard that makes "force-disabled" possible, so the regression
tests (``tests/test_perf.py``) can diff the two modes.

The knobs are read on every hot call, so flipping them mid-process is
safe (already-populated caches are simply bypassed, never consulted).

Usage::

    from repro import perf

    perf.configure(signature_cache=False)      # flip one knob globally
    with perf.overridden(encode_cache=False):  # scoped override
        run_experiment(...)
    with perf.all_disabled():                  # reference (uncached) mode
        run_experiment(...)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

__all__ = [
    "PerfConfig",
    "ACTIVE",
    "get_config",
    "set_config",
    "configure",
    "overridden",
    "all_disabled",
]


@dataclass(frozen=True)
class PerfConfig:
    """Feature flags for each optimisation, all on by default.

    Attributes:
        encode_cache: memoize ``canonical_bytes``/``tx_id``/signed-message
            encodings on frozen ledger objects (encode once, reuse many).
        signature_cache: LRU HMAC-verification cache in the
            :class:`~repro.crypto.identity.IdentityManager` keyed on
            ``(signer, payload digest, tag)``.
        reputation_cache: contiguous weight-row / normalization caches in
            :class:`~repro.core.reputation.ReputationBook` so screening's
            source-selection probabilities are O(1) amortized.
        batched_delays: one vectorized RNG call per multicast in
            :class:`~repro.network.simnet.SyncNetwork` instead of one
            scalar draw per edge (bit-identical stream, see PERFORMANCE.md).
        codec_fast_path: reuse per-object JSON encodings in
            ``repro.ledger.codec`` for the dominant transaction shape.
    """

    encode_cache: bool = True
    signature_cache: bool = True
    reputation_cache: bool = True
    batched_delays: bool = True
    codec_fast_path: bool = True


#: The process-wide active configuration.  Hot paths read attributes off
#: this object directly (``perf.ACTIVE.encode_cache``); replace it only
#: through :func:`set_config` / :func:`configure` / the context managers.
ACTIVE = PerfConfig()


def get_config() -> PerfConfig:
    """The currently active :class:`PerfConfig`."""
    return ACTIVE


def set_config(config: PerfConfig) -> None:
    """Install ``config`` as the process-wide active configuration."""
    global ACTIVE
    ACTIVE = config


def configure(**knobs: bool) -> PerfConfig:
    """Flip individual knobs on the active configuration and return it."""
    set_config(replace(ACTIVE, **knobs))
    return ACTIVE


@contextmanager
def overridden(**knobs: bool) -> Iterator[PerfConfig]:
    """Scoped override of individual knobs; restores the prior config."""
    prior = ACTIVE
    set_config(replace(prior, **knobs))
    try:
        yield ACTIVE
    finally:
        set_config(prior)


@contextmanager
def all_disabled() -> Iterator[PerfConfig]:
    """Scoped reference mode with every optimisation switched off."""
    prior = ACTIVE
    set_config(
        PerfConfig(
            encode_cache=False,
            signature_cache=False,
            reputation_cache=False,
            batched_delays=False,
            codec_fast_path=False,
        )
    )
    try:
        yield ACTIVE
    finally:
        set_config(prior)
