"""Multi-core shard execution: pluggable backends for the shard driver.

The :class:`~repro.sharding.ShardCoordinator` drives its shard engines
through a narrow :class:`ShardExecutionBackend` protocol with two
implementations:

* :class:`SerialBackend` — every engine in-process on one shared
  simulator (the original coordinator execution model, bit-for-bit);
* :class:`ParallelBackend` — one engine per shard in spawned worker
  processes, synchronized at the ``begin_round`` / ``begin_argue`` /
  ``complete_round`` phase barriers, receipts batched over pipes.

Both produce bit-identical ledgers for the same seed; the parallel
backend turns E14's sim-time shard scaling into *wall-clock* scaling
on multi-core hosts (benchmark E16).
"""

from repro.parallel.backend import (
    SerialBackend,
    ShardChainStats,
    ShardExecutionBackend,
    ShardRoundInfo,
    ShardScan,
    build_shard_engine,
    scan_shard_commits,
)
from repro.parallel.pool import ParallelBackend, parallel_metrics
from repro.parallel.worker import WorkerInit, worker_main

__all__ = [
    "ShardExecutionBackend",
    "SerialBackend",
    "ParallelBackend",
    "ShardRoundInfo",
    "ShardScan",
    "ShardChainStats",
    "WorkerInit",
    "worker_main",
    "build_shard_engine",
    "scan_shard_commits",
    "parallel_metrics",
]
