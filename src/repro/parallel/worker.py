"""Shard worker process: engines on a private clock, driven over a pipe.

``worker_main`` is the spawn entry point of the parallel backend.  Each
worker hosts one or more shard engines, every engine on its **own**
:class:`~repro.network.simnet.Simulator` — shard event streams are
independent (they share only barrier *times*, never events), so private
clocks advanced to the same targets reproduce the serial coordinator's
history bit for bit (see :mod:`repro.parallel.backend`).

The command loop speaks length-prefixed pickles over a
``multiprocessing.Pipe``: the driver sends ``(seq, op, payload)``, the
worker replies ``(seq, "ok", result, wall_seconds)`` or ``(seq, "err",
type, message, traceback)``.  The echoed sequence number lets the
driver discard stale replies after a sibling worker's crash aborted a
phase mid-collect — survivors' unread replies are skipped, not misread
as answers to later commands.  ``wall_seconds`` is the worker-side
compute time for the op, which the driver accumulates into the
``par_worker_round_seconds`` histogram — barrier skew (fast workers
idling at the barrier) is then the difference between the slowest and
fastest worker, exported as ``par_barrier_wait_seconds``.

Engines run with observability **disabled** in workers (metrics
registries are process-local and the no-op registry is guaranteed
behaviour-neutral); all shard/parallel metrics live driver-side.
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Mapping

from repro.network.simnet import Simulator
from repro.parallel.backend import (
    build_shard_engine,
    scan_shard_commits,
    shard_chain_stats,
)

__all__ = ["WorkerInit", "worker_main"]


@dataclass(frozen=True)
class WorkerInit:
    """Everything a worker needs to rebuild its shard engines from scratch.

    Pure picklable data — topologies, params, behaviours, seeds, storage
    configs — so the same ``WorkerInit`` that spawned a worker can
    respawn its replacement after a crash (engines then re-anchor from
    their durable checkpoints, when storage is configured).
    """

    worker: int
    #: Global shard indices hosted by this worker, in driver order.
    shards: tuple[int, ...]
    #: Per-hosted-shard :class:`~repro.network.topology.Topology`.
    topologies: tuple
    params: object
    #: Global behaviour map; each engine filters to its own collectors.
    behaviors: Mapping[str, object]
    seed: int
    min_delay: float
    max_delay: float
    resilience: bool
    audit: object | None
    #: provider id -> home shard (receipt-minting target lookup).
    provider_shard: Mapping[str, int]
    #: Per-hosted-shard :class:`~repro.storage.StorageConfig` (or None).
    storage: tuple


def _send(conn, obj) -> None:
    conn.send_bytes(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class _WorkerHost:
    """The live state behind one worker process's command loop."""

    def __init__(self, init: WorkerInit):
        self.init = init
        self.sims: dict[int, Simulator] = {}
        self.engines: dict[int, object] = {}
        self._ctxs: dict[int, object] = {}
        for shard, topo, storage in zip(init.shards, init.topologies, init.storage):
            sim = Simulator(seed=init.seed)
            self.sims[shard] = sim
            self.engines[shard] = build_shard_engine(
                shard,
                topo,
                init.params,
                init.behaviors,
                init.seed,
                init.min_delay,
                init.max_delay,
                init.resilience,
                obs=None,
                audit=init.audit,
                sim=sim,
                storage=storage,
            )

    # Each handler takes the op payload and returns a picklable result.

    def op_carryover(self, _payload) -> dict[int, int]:
        return {k: e.carryover_depth() for k, e in self.engines.items()}

    def op_begin_round(self, payload: Mapping[int, list]) -> dict[int, float]:
        targets = {}
        for shard, specs in payload.items():
            ctx = self.engines[shard].begin_round(specs)
            self._ctxs[shard] = ctx
            targets[shard] = ctx.drain_until
        return targets

    def op_run_until(self, payload: float) -> None:
        for sim in self.sims.values():
            sim.run(until=payload)

    def op_begin_argue(self, _payload) -> dict[int, float]:
        return {
            shard: self.engines[shard].begin_argue(ctx)
            for shard, ctx in self._ctxs.items()
        }

    def op_complete_round(self, _payload) -> dict[int, tuple]:
        out = {}
        for shard, ctx in self._ctxs.items():
            result = self.engines[shard].complete_round(ctx)
            out[shard] = (
                result.round_number,
                result.leader,
                result.block.serial,
                len(result.block.tx_list),
                result.argues_sent,
                self.engines[shard].carryover_depth(),
            )
        self._ctxs.clear()
        return out

    def op_scan(self, payload: Mapping[int, int]) -> dict[int, object]:
        return {
            shard: scan_shard_commits(
                self.engines[shard], shard, cursor, self.init.provider_shard
            )
            for shard, cursor in payload.items()
        }

    def op_relay(self, payload: Mapping[int, list]) -> None:
        for shard, receipts in payload.items():
            self.engines[shard].inject_receipts(receipts)

    def op_repair_scan(self, payload: int) -> bool:
        return self.engines[payload].recovery_lagging()

    def op_masses(self, _payload) -> dict[str, float]:
        masses: dict[str, float] = {}
        for engine in self.engines.values():
            masses.update(engine.collector_masses())
        return masses

    def op_release(self, payload: Mapping[int, list]) -> dict[str, tuple]:
        released = {}
        for shard, cids in payload.items():
            for cid in cids:
                released[cid] = self.engines[shard].release_collector(cid)
        return released

    def op_adopt(self, payload) -> None:
        for shard, cid, slots, behavior in payload:
            self.engines[shard].adopt_collector(cid, slots, behavior=behavior)

    def op_install_faults(self, payload) -> None:
        shard, plan = payload
        self.engines[shard].install_faults(plan)

    def op_fault_stats(self, _payload) -> dict[int, object]:
        out: dict[int, object] = {}
        for shard, engine in self.engines.items():
            injector = getattr(engine, "injector", None)
            out[shard] = None if injector is None else injector.stats
        return out

    def op_tips(self, _payload) -> dict[int, str]:
        tips = {}
        for shard, engine in self.engines.items():
            height = engine.store.height
            tips[shard] = (
                engine.store.retrieve(height).hash().hex() if height else ""
            )
        return tips

    def op_chain_stats(self, _payload) -> dict[int, object]:
        return {
            shard: shard_chain_stats(engine, shard)
            for shard, engine in self.engines.items()
        }

    def op_finalize(self, _payload) -> None:
        # Recovery was drained driver-side at shared barrier targets.
        for engine in self.engines.values():
            engine.finalize(drain=False)


def worker_main(conn, init: WorkerInit) -> None:
    """Spawn entry point: build engines, acknowledge, serve commands.

    Never raises out: construction and per-op failures are shipped back
    as ``("err", ...)`` replies so the driver can re-raise them with the
    worker context attached.  The loop exits on ``"shutdown"`` or when
    the driver end of the pipe closes.
    """
    try:
        host = _WorkerHost(init)
    except BaseException as exc:  # construction failed: report, don't hang
        _send(
            conn, (0, "err", type(exc).__name__, str(exc), traceback.format_exc())
        )
        conn.close()
        return
    _send(conn, (0, "ok", "ready", 0.0))
    while True:
        try:
            raw = conn.recv_bytes()
        except EOFError:
            break
        seq, op, payload = pickle.loads(raw)
        if op == "shutdown":
            _send(conn, (seq, "ok", None, 0.0))
            break
        handler = getattr(host, f"op_{op}", None)
        if handler is None:
            _send(conn, (seq, "err", "ValueError", f"unknown op {op!r}", ""))
            continue
        start = time.perf_counter()
        try:
            result = handler(payload)
        except BaseException as exc:
            _send(
                conn,
                (seq, "err", type(exc).__name__, str(exc), traceback.format_exc()),
            )
            continue
        _send(conn, (seq, "ok", result, time.perf_counter() - start))
    conn.close()
