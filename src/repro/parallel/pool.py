"""Process-pool shard execution: spawned workers behind phase barriers.

:class:`ParallelBackend` implements
:class:`~repro.parallel.backend.ShardExecutionBackend` by hosting the
``S`` shard engines in ``N`` spawned worker processes (shards assigned
round-robin, so ``N`` may be smaller than ``S``).  Every phase of the
super-round is one broadcast of pickled ``(op, payload)`` commands —
one message per worker, receipts and specs batched inside it — followed
by a barrier collect of the replies.

**Crash handling.**  A worker that dies (SIGKILL, OOM, bug) or hangs
past the per-phase barrier timeout surfaces as a structured
:class:`~repro.exceptions.WorkerCrashError` carrying the worker index,
its hosted shards, and the in-flight phase — a *detected* fault, the
same contract the in-process :class:`~repro.faults.FaultInjector` gives
for simulated crashes, never a hung barrier.  With durable storage
configured, :meth:`restart_worker` respawns the replacement from the
same :class:`~repro.parallel.worker.WorkerInit`; its engines re-anchor
from their on-disk checkpoints and any fault plans installed on its
shards are re-applied to the replacement (crash semantics: the
continuation is correct but not bit-identical — the fresh injector
replays its plan's RNG from the start).

**Determinism.**  Workers advance private simulator clocks to the exact
barrier targets the serial backend would use, and the driver preserves
per-remote-shard receipt-relay order inside each batch, so a parallel
run's ledgers are bit-identical to a serial run with the same seed (the
full argument lives in :mod:`repro.parallel.backend`).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from typing import Mapping, Sequence

from repro.exceptions import (
    ConfigurationError,
    WorkerCrashError,
    WorkerOpError,
)
from repro.network.topology import ShardedTopology
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.parallel.backend import ShardChainStats, ShardRoundInfo, ShardScan
from repro.parallel.worker import WorkerInit, worker_main
from repro.workloads.generator import TxSpec

__all__ = ["ParallelBackend", "parallel_metrics"]

#: Extra slack over the phase timeout for worker construction — spawning
#: an interpreter and replaying a durable store takes longer than a phase.
_READY_TIMEOUT_FLOOR = 120.0


def parallel_metrics(obs: MetricsRegistry) -> dict[str, object]:
    """Fetch-or-register the ``par_*`` metric family on ``obs``.

    Called by the coordinator for every backend (so the metrics appear —
    at zero — in serial runs too, keeping OBSERVABILITY.md coverage
    honest) and by :class:`ParallelBackend` to obtain the same
    instances.
    """
    return {
        "barrier_wait": obs.histogram(
            "par_barrier_wait_seconds",
            "Wall-clock barrier skew per phase: slowest minus fastest worker reply",
            buckets=(0.0005, 0.002, 0.01, 0.05, 0.2, 1.0, 5.0),
        ),
        "worker_round": obs.histogram(
            "par_worker_round_seconds",
            "Worker-side wall-clock compute per super-round, by worker",
            labels=("worker",),
            buckets=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0),
        ),
        "ipc_msgs": obs.counter(
            "par_ipc_msgs_total",
            "Pipe messages between driver and workers, by direction",
            labels=("direction",),
        ),
        "ipc_bytes": obs.counter(
            "par_ipc_bytes_total",
            "Pickled payload bytes between driver and workers, by direction",
            labels=("direction",),
        ),
        "crashes": obs.counter(
            "par_worker_crashes_total",
            "Worker processes detected dead or hung at a phase barrier, by phase",
            labels=("phase",),
        ),
        "restarts": obs.counter(
            "par_worker_restarts_total",
            "Worker processes respawned from durable checkpoints after a crash",
        ),
    }


class _WorkerHandle:
    """Driver-side state of one spawned worker."""

    __slots__ = ("index", "shards", "init", "proc", "conn", "alive", "seq")

    def __init__(self, index: int, shards: tuple[int, ...], init: WorkerInit):
        self.index = index
        self.shards = shards
        self.init = init
        self.proc = None
        self.conn = None
        self.alive = False
        #: Last command sequence number sent; replies echo it, so stale
        #: replies left over from a crash-aborted phase are discardable.
        self.seq = 0


class ParallelBackend:
    """Run shard engines in spawned worker processes with barrier sync."""

    kind = "parallel"

    def __init__(
        self,
        topology: ShardedTopology,
        params,
        behaviors: Mapping[str, object] | None = None,
        seed: int = 0,
        min_delay: float = 0.005,
        max_delay: float = 0.05,
        resilience: bool = False,
        obs: MetricsRegistry | None = None,
        audit=None,
        storage: Sequence[object | None] | None = None,
        workers: int = 2,
        phase_timeout: float = 60.0,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.topology = topology
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.phase_timeout = phase_timeout
        self._metrics = parallel_metrics(self.obs)
        self._now = 0.0
        self._storage = (
            list(storage) if storage is not None else [None] * topology.num_shards
        )
        behaviors = dict(behaviors or {})
        try:
            pickle.dumps(behaviors, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ConfigurationError(
                "collector behaviours must be picklable to cross the worker "
                f"process boundary (workers={workers}): {exc}"
            ) from exc
        num_workers = min(workers, topology.num_shards)
        #: shard index -> hosting worker index (round-robin).
        self.worker_for_shard = {
            k: k % num_workers for k in range(topology.num_shards)
        }
        self._ctx = mp.get_context("spawn")
        self._workers: list[_WorkerHandle] = []
        for w in range(num_workers):
            shards = tuple(
                k for k in range(topology.num_shards)
                if self.worker_for_shard[k] == w
            )
            init = WorkerInit(
                worker=w,
                shards=shards,
                topologies=tuple(topology.shards[k] for k in shards),
                params=params,
                behaviors=behaviors,
                seed=seed,
                min_delay=min_delay,
                max_delay=max_delay,
                resilience=resilience,
                audit=audit,
                provider_shard=dict(topology.provider_shard),
                storage=tuple(self._storage[k] for k in shards),
            )
            self._workers.append(_WorkerHandle(w, shards, init))
        # Per-worker accumulated compute seconds this super-round.
        self._round_wall = [0.0] * num_workers
        #: shard index -> installed FaultPlan, so a respawned worker can
        #: have its shards' plans re-applied (tamperers never cross the
        #: process boundary, so a plan is the whole fault state).
        self._fault_plans: dict[int, object] = {}
        for handle in self._workers:
            self._spawn(handle)

    # -- process lifecycle -------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child, handle.init),
            name=f"shard-worker-{handle.index}",
            daemon=True,
        )
        proc.start()
        child.close()
        handle.proc = proc
        handle.conn = parent
        handle.alive = True
        handle.seq = 0  # fresh process, fresh sequence space
        ready_timeout = max(self.phase_timeout, _READY_TIMEOUT_FLOOR)
        reply = self._recv(handle, "spawn", timeout=ready_timeout)
        if reply[1] != "ready":  # pragma: no cover - defensive
            raise WorkerCrashError(
                handle.index, handle.shards, "spawn",
                detail=f"unexpected ready reply {reply[1]!r}",
            )

    def restart_worker(self, worker: int) -> None:
        """Kill (if needed) and respawn one worker from durable storage.

        The replacement rebuilds its engines from the same
        :class:`WorkerInit`; with a :class:`~repro.storage.StorageConfig`
        per hosted shard the engines re-anchor to their checkpointed
        chains and resume committing.  Without storage there is nothing
        to hand off, so the restart is refused.  Fault plans previously
        installed on the worker's shards are re-applied to the
        replacement (fresh injectors, so each plan's RNG restarts from
        its seed — the schedule stays seeded, not bit-continuous).
        """
        handle = self._workers[worker]
        missing = [k for k in handle.shards if self._storage[k] is None]
        if missing:
            raise ConfigurationError(
                f"cannot restart worker {worker}: shards {missing} have no "
                "durable storage to hand off from"
            )
        if handle.proc is not None:
            handle.proc.terminate()
            handle.proc.join(timeout=10.0)
        if handle.conn is not None:
            handle.conn.close()
        handle.alive = False
        self._spawn(handle)
        for shard in handle.shards:
            plan = self._fault_plans.get(shard)
            if plan is not None:
                self._call(
                    "install_faults",
                    {handle.index: (shard, plan)},
                    phase="install_faults",
                )
        self._metrics["restarts"].inc()

    def close(self) -> None:
        """Shut every worker down; terminate stragglers."""
        for handle in self._workers:
            if not handle.alive:
                continue
            try:
                self._send(handle, "shutdown", None)
                self._recv(handle, "shutdown", timeout=5.0)
            except Exception:
                pass
            handle.alive = False
        for handle in self._workers:
            if handle.proc is not None:
                handle.proc.join(timeout=5.0)
                if handle.proc.is_alive():
                    handle.proc.terminate()
                    handle.proc.join(timeout=5.0)
            if handle.conn is not None:
                handle.conn.close()

    # -- pipe plumbing -----------------------------------------------------

    def _send(self, handle: _WorkerHandle, op: str, payload) -> None:
        handle.seq += 1
        blob = pickle.dumps(
            (handle.seq, op, payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        try:
            handle.conn.send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            self._crash(handle, op, str(exc))
        self._metrics["ipc_msgs"].labels(direction="send").inc()
        self._metrics["ipc_bytes"].labels(direction="send").inc(len(blob))

    def _recv(self, handle: _WorkerHandle, phase: str, timeout: float | None = None):
        timeout = self.phase_timeout if timeout is None else timeout
        while True:
            try:
                if not handle.conn.poll(timeout):
                    self._crash(
                        handle, phase,
                        f"no reply within {timeout:.0f}s barrier timeout",
                    )
                blob = handle.conn.recv_bytes()
            except (EOFError, BrokenPipeError, OSError) as exc:
                self._crash(handle, phase, str(exc) or type(exc).__name__)
            self._metrics["ipc_msgs"].labels(direction="recv").inc()
            self._metrics["ipc_bytes"].labels(direction="recv").inc(len(blob))
            reply = pickle.loads(blob)
            if reply[0] == handle.seq:
                break
            # A reply to an older command: the phase it answered was
            # aborted by a sibling worker's crash before this worker's
            # reply was collected.  Skip it and keep waiting for ours.
        if reply[1] == "err":
            _, _, exc_type, message, tb = reply
            raise WorkerOpError(handle.index, phase, exc_type, message, tb)
        return reply[1:]

    def _crash(self, handle: _WorkerHandle, phase: str, detail: str):
        """Mark a worker dead and raise the structured crash fault."""
        handle.alive = False
        exitcode = handle.proc.exitcode if handle.proc is not None else None
        if handle.proc is not None and handle.proc.is_alive():
            # Hung past the barrier: SIGKILL reaps it even if the
            # process is wedged or stopped, so the driver never blocks.
            handle.proc.kill()
            handle.proc.join(timeout=5.0)
            exitcode = handle.proc.exitcode
        self._metrics["crashes"].labels(phase=phase).inc()
        raise WorkerCrashError(
            handle.index, handle.shards, phase, detail=detail, exitcode=exitcode
        )

    def _call(self, op: str, payloads: Mapping[int, object], phase: str | None = None):
        """Broadcast one op to the given workers, collect at the barrier.

        Sends every command before reading any reply — workers compute
        concurrently — then drains replies in worker order, recording
        arrival skew (barrier wait) and per-worker compute seconds.
        Returns ``{worker_index: result}``.
        """
        phase = phase or op
        handles = [self._workers[w] for w in payloads]
        for handle in handles:
            if not handle.alive:
                raise WorkerCrashError(
                    handle.index, handle.shards, phase, detail="worker already dead"
                )
            self._send(handle, op, payloads[handle.index])
        results: dict[int, object] = {}
        arrivals: list[float] = []
        for handle in handles:
            _, result, wall = self._recv(handle, phase)
            arrivals.append(time.perf_counter())
            self._round_wall[handle.index] += wall
            results[handle.index] = result
        if len(arrivals) > 1:
            self._metrics["barrier_wait"].observe(max(arrivals) - min(arrivals))
        return results

    def _call_all(self, op: str, payload=None, phase: str | None = None):
        return self._call(
            op, {h.index: payload for h in self._workers}, phase=phase
        )

    def _by_shard(self, results: Mapping[int, dict]) -> dict:
        """Merge per-worker ``{shard: value}`` replies into one dict."""
        merged: dict = {}
        for part in results.values():
            merged.update(part)
        return merged

    # -- ShardExecutionBackend ---------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.topology.num_shards

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def carryover(self) -> list[int]:
        merged = self._by_shard(self._call_all("carryover"))
        return [merged[k] for k in range(self.num_shards)]

    def begin_round(self, specs: Sequence[Sequence[TxSpec]]) -> list[float]:
        payloads: dict[int, dict[int, list]] = {h.index: {} for h in self._workers}
        for k, batch in enumerate(specs):
            payloads[self.worker_for_shard[k]][k] = list(batch)
        merged = self._by_shard(self._call("begin_round", payloads))
        return [merged[k] for k in range(self.num_shards)]

    def run_until(self, until: float) -> None:
        self._call_all("run_until", until)
        self._now = until

    def begin_argue(self) -> list[float]:
        merged = self._by_shard(self._call_all("begin_argue"))
        return [merged[k] for k in range(self.num_shards)]

    def complete_round(self) -> list[ShardRoundInfo]:
        merged = self._by_shard(self._call_all("complete_round"))
        for w, handle in enumerate(self._workers):
            self._metrics["worker_round"].labels(worker=str(w)).observe(
                self._round_wall[w]
            )
            self._round_wall[w] = 0.0
        return [
            ShardRoundInfo(
                shard=k,
                round_number=merged[k][0],
                leader=merged[k][1],
                block_serial=merged[k][2],
                block_size=merged[k][3],
                argues_sent=merged[k][4],
                carryover=merged[k][5],
            )
            for k in range(self.num_shards)
        ]

    def scan_commits(self, cursors: Sequence[int]) -> list[ShardScan]:
        payloads: dict[int, dict[int, int]] = {h.index: {} for h in self._workers}
        for k, cursor in enumerate(cursors):
            payloads[self.worker_for_shard[k]][k] = cursor
        merged = self._by_shard(self._call("scan", payloads, phase="scan"))
        return [merged[k] for k in range(self.num_shards)]

    def relay(self, batches: Mapping[int, Sequence]) -> None:
        # Satellite: one message per (driver, worker) pair per phase —
        # all receipts bound for a worker's shards travel together, in
        # per-shard relay order (the order the remote network draws
        # latencies in, hence part of the determinism contract).
        payloads: dict[int, dict[int, list]] = {}
        for shard, receipts in batches.items():
            if not receipts:
                continue
            worker = self.worker_for_shard[shard]
            payloads.setdefault(worker, {})[shard] = list(receipts)
        if payloads:
            self._call("relay", payloads)

    def repair_scan(self, shard: int) -> bool:
        worker = self.worker_for_shard[shard]
        return self._call("repair_scan", {worker: shard})[worker]

    def collector_masses(self) -> dict[str, float]:
        masses: dict[str, float] = {}
        for part in self._call_all("masses").values():
            masses.update(part)
        return masses

    def release_collectors(
        self, by_shard: Mapping[int, Sequence[str]]
    ) -> dict[str, tuple]:
        payloads: dict[int, dict[int, list]] = {}
        for shard, cids in by_shard.items():
            worker = self.worker_for_shard[shard]
            payloads.setdefault(worker, {})[shard] = list(cids)
        released: dict[str, tuple] = {}
        if payloads:
            for part in self._call("release", payloads, phase="release").values():
                released.update(part)
        return released

    def adopt_collectors(
        self, assignments: Sequence[tuple[int, str, tuple[str, ...], object]]
    ) -> None:
        payloads: dict[int, list] = {}
        for shard, cid, slots, behavior in assignments:
            worker = self.worker_for_shard[shard]
            payloads.setdefault(worker, []).append((shard, cid, slots, behavior))
        if payloads:
            self._call("adopt", payloads, phase="adopt")

    def install_faults(self, shard: int, plan, tamperer=None):
        if tamperer is not None:
            raise ConfigurationError(
                "message tamperers hold live callbacks and cannot cross the "
                "worker process boundary; run Byzantine tampering on the "
                "serial backend"
            )
        worker = self.worker_for_shard[shard]
        self._call(
            "install_faults", {worker: (shard, plan)}, phase="install_faults"
        )
        self._fault_plans[shard] = plan
        return None  # the injector lives (and stays) worker-side

    def fault_stats(self) -> dict[int, object]:
        """Per-shard worker-side injector stats (None where no plan)."""
        merged = self._by_shard(self._call_all("fault_stats"))
        return {k: merged[k] for k in range(self.num_shards)}

    def tip_hashes(self) -> list[str]:
        merged = self._by_shard(self._call_all("tips"))
        return [merged[k] for k in range(self.num_shards)]

    def chain_stats(self) -> list[ShardChainStats]:
        merged = self._by_shard(self._call_all("chain_stats"))
        return [merged[k] for k in range(self.num_shards)]

    def finalize_engines(self) -> None:
        self._call_all("finalize")

    def now(self) -> float:
        return self._now
