"""The pluggable shard execution surface and its in-process backend.

:class:`~repro.sharding.ShardCoordinator` is split into a *driver*
(workload routing, receipt bookkeeping, auditing, epoch reshuffles) and
an *execution backend* that actually runs the ``S`` protocol engines
through the phase-split round API.  :class:`ShardExecutionBackend` is
the narrow protocol between the two — the thin-Protocol-over-richer-
engine idiom: the driver only ever speaks in phase commands and plain
picklable results, so the same driver logic runs against

* :class:`SerialBackend` — all engines in this process on one shared
  :class:`~repro.network.simnet.Simulator` (the original coordinator
  behaviour, bit-for-bit), and
* :class:`~repro.parallel.pool.ParallelBackend` — one engine per shard
  in spawned worker processes, synchronized at the phase barriers over
  command pipes.

Every value that crosses the interface (specs in, drain targets,
round summaries, scan events, receipts) is picklable by construction;
nothing in the driver ever holds a live engine reference through this
interface, which is exactly what makes the process-pool backend a
drop-in.

**Why parallel == serial, bit for bit.**  Shard engines are sovereign:
each owns its network, broadcast fabric, identity manager, RNG streams,
and ledger family.  In the serial coordinator they share only the
simulator *clock*, and every phase ends with the clock parked at the
barrier maximum (``Simulator.run(until=...)`` always parks).  Since the
shared simulator's own RNG is never consumed, a shard's event stream
depends only on (a) its own seeded state and (b) the barrier times —
so a worker that runs the same engine on a private clock, advanced to
the same barrier targets, reproduces the exact event history.  The one
cross-shard interaction — receipt relays — happens only while the
clock is parked between super-rounds, and the driver preserves the
per-remote-shard relay order, so each remote network's latency-RNG
draw sequence is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Protocol, Sequence

from repro.exceptions import ConfigurationError
from repro.ledger.properties import check_all_properties
from repro.network.simnet import Simulator
from repro.network.topology import ShardedTopology
from repro.workloads.generator import TxSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports)
    from repro.core.netengine import NetworkedProtocolEngine

__all__ = [
    "ShardExecutionBackend",
    "SerialBackend",
    "ShardRoundInfo",
    "ShardScan",
    "ShardChainStats",
    "scan_shard_commits",
    "build_shard_engine",
]


@dataclass(frozen=True)
class ShardRoundInfo:
    """Picklable outcome of one shard's round, as the driver sees it.

    The parallel backend returns these instead of full
    :class:`~repro.core.netengine.NetworkedRoundResult` objects — the
    driver needs the summary (and ``carryover`` for next round's spec
    budget), not the block body, which stays worker-side.
    """

    shard: int
    round_number: int
    leader: str
    block_serial: int
    block_size: int
    argues_sent: int
    #: Re-evaluated-record queue depth after the round — next round's
    #: fresh-spec budget is ``b_limit - carryover``.
    carryover: int


@dataclass(frozen=True)
class ShardScan:
    """One shard's committed-block scan since the driver's last cursor.

    ``events`` preserves exact (block, record) order with two shapes:

    * ``("r", receipt_id, serial)`` — a cross-shard receipt record
      landed on this (remote) shard's chain at ``serial``;
    * ``("m", receipt, verified)`` — a fresh cross-shard origin commit
      minted ``receipt`` for relay; ``verified`` is the home identity
      manager's verdict on the proposer signature (checked where the
      keys live, so the driver never needs a remote shard's IM).
    """

    shard: int
    #: Store height after the scan — the driver's next cursor.
    cursor: int
    #: Origin (non-receipt) records committed in the scanned range.
    origin: int
    events: tuple


@dataclass(frozen=True)
class ShardChainStats:
    """Per-shard chain/reporting summary (CLI + benchmarks)."""

    shard: int
    height: int
    origin: int
    cross_out: int
    receipts_in: int
    reputation_mass: float
    properties_hold: bool


class ShardExecutionBackend(Protocol):
    """What a shard driver needs from an execution substrate — no more.

    One round trip per phase; all arguments and results picklable.  The
    driver calls, in super-round order: :meth:`relay` (retries),
    :meth:`carryover`, :meth:`begin_round`, :meth:`run_until`,
    :meth:`begin_argue`, :meth:`run_until`, :meth:`complete_round`,
    :meth:`scan_commits`, :meth:`relay` (first sends) — then, on epoch
    boundaries, :meth:`collector_masses` / :meth:`release_collectors` /
    :meth:`adopt_collectors`.
    """

    @property
    def num_shards(self) -> int: ...

    @property
    def kind(self) -> str: ...

    def carryover(self) -> list[int]: ...

    def begin_round(self, specs: Sequence[Sequence[TxSpec]]) -> list[float]: ...

    def run_until(self, until: float) -> None: ...

    def begin_argue(self) -> list[float]: ...

    def complete_round(self) -> list: ...

    def scan_commits(self, cursors: Sequence[int]) -> list[ShardScan]: ...

    def relay(self, batches: Mapping[int, Sequence]) -> None: ...

    def repair_scan(self, shard: int) -> bool: ...

    def collector_masses(self) -> dict[str, float]: ...

    def release_collectors(
        self, by_shard: Mapping[int, Sequence[str]]
    ) -> dict[str, tuple[tuple[str, ...], object]]: ...

    def adopt_collectors(
        self, assignments: Sequence[tuple[int, str, tuple[str, ...], object]]
    ) -> None: ...

    def install_faults(self, shard: int, plan, tamperer=None): ...

    def tip_hashes(self) -> list[str]: ...

    def chain_stats(self) -> list[ShardChainStats]: ...

    def finalize_engines(self) -> None: ...

    def now(self) -> float: ...

    def close(self) -> None: ...


def build_shard_engine(
    shard: int,
    topology,
    params,
    behaviors: Mapping[str, object],
    seed: int,
    min_delay: float,
    max_delay: float,
    resilience: bool,
    obs=None,
    audit=None,
    sim: Simulator | None = None,
    storage=None,
) -> "NetworkedProtocolEngine":
    """Construct shard ``k``'s engine exactly as every backend must.

    Single source of truth for the per-shard derived seed
    (``seed + 7919 * (k + 1)``), the behaviour filtering, and the relay
    enrolment order — any divergence here would break serial/parallel
    bit-identity, so both backends call this one function.
    """
    from repro.core.netengine import NetworkedProtocolEngine

    shard_behaviors = {
        cid: b for cid, b in dict(behaviors or {}).items()
        if cid in topology.collectors
    }
    engine = NetworkedProtocolEngine(
        topology,
        params,
        behaviors=shard_behaviors,
        seed=seed + 7919 * (shard + 1),
        min_delay=min_delay,
        max_delay=max_delay,
        resilience=resilience,
        obs=obs,
        audit=audit,
        sim=sim,
        storage=storage,
    )
    engine.enable_xshard(relay_id=f"relay-s{shard}")
    return engine


def scan_shard_commits(
    engine: "NetworkedProtocolEngine",
    shard: int,
    from_serial: int,
    provider_shard: Mapping[str, int],
) -> ShardScan:
    """Scan one shard's chain past ``from_serial`` for the driver.

    Receipts for fresh cross-shard origin commits are minted *here* —
    where the proposer's signing key and the home identity manager
    live — and shipped to the driver pre-verified.  Event order is the
    exact (block, record) commit order, which the driver relies on to
    replay the serial coordinator's audit/relay sequence.
    """
    # Imported here, not at module level: ``repro.sharding``'s package
    # init pulls in the coordinator, which imports this module — spawned
    # workers import ``repro.parallel`` first and would hit the cycle.
    from repro.sharding.receipts import make_receipt, verify_receipt

    events: list[tuple] = []
    origin = 0
    serial = from_serial
    while serial < engine.store.height:
        serial += 1
        block = engine.store.retrieve(serial)
        for record in block.tx_list:
            payload = record.tx.body.payload
            if isinstance(payload, dict) and "xshard_receipt" in payload:
                events.append(("r", payload["xshard_receipt"], serial))
                continue
            origin += 1
            if not (isinstance(payload, dict) and "xshard_to" in payload):
                continue
            target = provider_shard.get(payload["xshard_to"])
            if target is None or target == shard:
                continue  # same-shard counterparty needs no relay
            receipt = make_receipt(
                engine.governors[block.proposer].key,
                home_shard=shard,
                remote_shard=target,
                tx_id=record.tx.tx_id,
                home_serial=serial,
            )
            events.append(("m", receipt, verify_receipt(receipt, engine.im)))
    return ShardScan(shard=shard, cursor=serial, origin=origin, events=tuple(events))


def shard_chain_stats(
    engine: "NetworkedProtocolEngine", shard: int
) -> ShardChainStats:
    """Reporting summary of one shard engine (shared by both backends)."""
    origin = cross_out = receipts_in = 0
    for serial in range(1, engine.store.height + 1):
        for record in engine.store.retrieve(serial).tx_list:
            payload = record.tx.body.payload
            if isinstance(payload, dict) and "xshard_receipt" in payload:
                receipts_in += 1
                continue
            origin += 1
            if isinstance(payload, dict) and "xshard_to" in payload:
                cross_out += 1
    props = check_all_properties(engine.ledgers(), engine.transcript)
    return ShardChainStats(
        shard=shard,
        height=engine.store.height,
        origin=origin,
        cross_out=cross_out,
        receipts_in=receipts_in,
        reputation_mass=float(sum(engine.collector_masses().values())),
        properties_hold=props.all_hold,
    )


class SerialBackend:
    """All shard engines in-process on one shared simulator clock.

    The original :class:`~repro.sharding.ShardCoordinator` execution
    model, factored behind :class:`ShardExecutionBackend`.  Seeded runs
    are bit-identical to pre-split builds: engine construction order,
    per-shard seeds, relay enrolment, and the per-remote receipt-relay
    order are all unchanged.
    """

    kind = "serial"

    def __init__(
        self,
        topology: ShardedTopology,
        params,
        behaviors: Mapping[str, object] | None = None,
        seed: int = 0,
        min_delay: float = 0.005,
        max_delay: float = 0.05,
        resilience: bool = False,
        obs=None,
        audit=None,
        storage: Sequence[object | None] | None = None,
    ):
        self.topology = topology
        self.provider_shard = dict(topology.provider_shard)
        self.sim = Simulator(seed=seed)
        if obs is not None:
            obs.bind_clock(lambda: self.sim.now)
        storage = list(storage) if storage is not None else [None] * topology.num_shards
        self.engines: list = [
            build_shard_engine(
                k,
                shard_topo,
                params,
                behaviors or {},
                seed,
                min_delay,
                max_delay,
                resilience,
                obs=obs,
                audit=audit,
                sim=self.sim,
                storage=storage[k],
            )
            for k, shard_topo in enumerate(topology.shards)
        ]
        self._ctxs: list | None = None

    @property
    def num_shards(self) -> int:
        return len(self.engines)

    def carryover(self) -> list[int]:
        return [engine.carryover_depth() for engine in self.engines]

    def begin_round(self, specs: Sequence[Sequence[TxSpec]]) -> list[float]:
        self._ctxs = [
            engine.begin_round(batch) for engine, batch in zip(self.engines, specs)
        ]
        return [ctx.drain_until for ctx in self._ctxs]

    def run_until(self, until: float) -> None:
        self.sim.run(until=until)

    def begin_argue(self) -> list[float]:
        if self._ctxs is None:
            raise ConfigurationError("begin_argue before begin_round")
        return [
            engine.begin_argue(ctx) for engine, ctx in zip(self.engines, self._ctxs)
        ]

    def complete_round(self) -> list:
        if self._ctxs is None:
            raise ConfigurationError("complete_round before begin_round")
        results = [
            engine.complete_round(ctx)
            for engine, ctx in zip(self.engines, self._ctxs)
        ]
        self._ctxs = None
        return results

    def scan_commits(self, cursors: Sequence[int]) -> list[ShardScan]:
        return [
            scan_shard_commits(engine, k, cursors[k], self.provider_shard)
            for k, engine in enumerate(self.engines)
        ]

    def relay(self, batches: Mapping[int, Sequence]) -> None:
        for shard, receipts in batches.items():
            self.engines[shard].inject_receipts(receipts)

    def repair_scan(self, shard: int) -> bool:
        return self.engines[shard].recovery_lagging()

    def collector_masses(self) -> dict[str, float]:
        masses: dict[str, float] = {}
        for engine in self.engines:
            masses.update(engine.collector_masses())
        return masses

    def release_collectors(
        self, by_shard: Mapping[int, Sequence[str]]
    ) -> dict[str, tuple[tuple[str, ...], object]]:
        released: dict[str, tuple[tuple[str, ...], object]] = {}
        for shard, cids in by_shard.items():
            for cid in cids:
                released[cid] = self.engines[shard].release_collector(cid)
        return released

    def adopt_collectors(
        self, assignments: Sequence[tuple[int, str, tuple[str, ...], object]]
    ) -> None:
        for shard, cid, slots, behavior in assignments:
            self.engines[shard].adopt_collector(cid, slots, behavior=behavior)

    def install_faults(self, shard: int, plan, tamperer=None):
        return self.engines[shard].install_faults(plan, tamperer=tamperer)

    def tip_hashes(self) -> list[str]:
        tips = []
        for engine in self.engines:
            height = engine.store.height
            tips.append(engine.store.retrieve(height).hash().hex() if height else "")
        return tips

    def chain_stats(self) -> list[ShardChainStats]:
        return [shard_chain_stats(engine, k) for k, engine in enumerate(self.engines)]

    def finalize_engines(self) -> None:
        # The driver already ran the barrier-synchronized recovery drain
        # (see ShardCoordinator.finalize), so engines skip their own.
        for engine in self.engines:
            engine.finalize(drain=False)

    def now(self) -> float:
        return self.sim.now

    def close(self) -> None:  # in-process: nothing to tear down
        pass
