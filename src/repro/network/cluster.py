"""Localhost cluster harness: one seeded scenario, both transports.

The parity gate of the transport backend: build the *identical* engine
twice — once on the discrete-event :class:`~repro.network.simnet.SyncNetwork`,
once on :class:`~repro.network.realnet.RealNetwork` wired to an n-peer
localhost cluster — drive the same seeded workload through the
phase-split round API, and compare committed chain tips byte for byte.

Custodian peers are real processes (``python -m repro serve``) by
default; :func:`run_scenario` also accepts pre-started in-process
servers (tests) or :class:`~repro.faults.proxy.TransportFaultProxy`
addresses (socket chaos).  The distribution split is deliberate and
documented: the driver hosts the agents' logical state, the peers are
transport custodians that every admitted message must physically reach
— deterministic replay over a real wire; moving agent state into the
peers is the ROADMAP's next step, not this one's.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.netengine import NetworkedProtocolEngine
from repro.core.params import ProtocolParams
from repro.exceptions import PeerUnreachableError
from repro.faults.plan import FaultPlan
from repro.network.realnet import RealNetwork, TransportConfig
from repro.network.topology import Topology
from repro.obs.registry import MetricsRegistry
from repro.workloads.generator import BernoulliWorkload

__all__ = [
    "ClusterHandle",
    "ClusterScenario",
    "compare_backends",
    "launch_custodians",
    "run_scenario",
]

_LISTENING = re.compile(r"listening host=(\S+) port=(\d+)")


@dataclass(frozen=True)
class ClusterScenario:
    """One seeded run, identical on either backend."""

    l: int = 8
    n: int = 4
    m: int = 4
    r: int = 2
    rounds: int = 4
    batch: int = 12
    seed: int = 5
    p_valid: float = 0.8
    min_delay: float = 0.005
    max_delay: float = 0.05
    resilience: bool = True
    #: Logical fault plan (installed via the engine's FaultInjector) —
    #: applied identically on both backends, part of the seeded schedule.
    plan: FaultPlan | None = None
    #: Optional collector-behaviour map (collector id -> behaviour),
    #: applied identically on both backends.
    behaviors: dict | None = None
    #: Optional workload hook: ``(scenario, topology) -> (round -> specs)``.
    #: Seeded inside the factory, so both backends replay the identical
    #: stream; ``None`` keeps the historical Bernoulli workload.
    workload_factory: Callable | None = None

    def params(self) -> ProtocolParams:
        return ProtocolParams(f=0.5, delta=max(0.2, 2 * self.max_delay), b_limit=64)


@dataclass
class ClusterHandle:
    """Live custodian subprocesses and their bound addresses."""

    procs: list = field(default_factory=list)
    addresses: list = field(default_factory=list)  # (name, host, port)

    def close(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)


def launch_custodians(count: int, startup_timeout: float = 30.0) -> ClusterHandle:
    """Spawn ``count`` ``repro serve`` peer processes on localhost.

    Each peer binds an OS-assigned port and announces it on stdout; the
    harness parses the announcement.  A peer that fails to announce
    within the timeout aborts the launch (cluster torn down) with a
    structured :class:`~repro.exceptions.PeerUnreachableError`.
    """
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    handle = ClusterHandle()
    try:
        for i in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--host", "127.0.0.1", "--port", "0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=env,
            )
            handle.procs.append(proc)
            deadline = time.monotonic() + startup_timeout
            line = ""
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if line or proc.poll() is not None:
                    break
            match = _LISTENING.search(line or "")
            if match is None:
                raise PeerUnreachableError(
                    f"peer-{i}",
                    f"serve process announced {line!r} instead of an address",
                )
            handle.addresses.append(
                (f"peer-{i}", match.group(1), int(match.group(2)))
            )
    except BaseException:
        handle.close()
        raise
    return handle


def _drive(engine: NetworkedProtocolEngine, scenario: ClusterScenario) -> dict:
    """Run the scenario through the phase-split API on either backend.

    All clock advancement goes through ``network.run_until`` — the one
    method whose meaning differs between backends (pure event stepping
    vs physically-mediated stepping) — so the engine itself stays
    byte-identical across them.
    """
    network = engine.network
    if scenario.workload_factory is not None:
        next_batch = scenario.workload_factory(scenario, engine.topology)
    else:
        workload = BernoulliWorkload(
            engine.topology.providers, p_valid=scenario.p_valid,
            seed=scenario.seed + 1,
        )

        def next_batch(rnd: int) -> list:
            return workload.take(scenario.batch)

    committed = 0
    for rnd in range(1, scenario.rounds + 1):
        ctx = engine.begin_round(next_batch(rnd))
        network.run_until(ctx.drain_until)
        network.run_until(engine.begin_argue(ctx))
        result = engine.complete_round(ctx)
        committed += len(result.block.tx_list)
    # The recovery drain, walked in bounded slices so realnet conveyance
    # gates apply inside it too (mirrors ShardCoordinator._drain_recovery).
    grace = 40 * network.max_delay
    for _ in range(6):
        if not engine.recovery_lagging():
            break
        network.run_until(engine.sim.now + grace / 6)
    engine.finalize(drain=False)
    height = engine.store.height
    return {
        "tip": engine.store.retrieve(height).hash().hex() if height else "",
        "height": height,
        "committed": committed,
        "clock": engine.sim.now,
        "audit_clean": engine.harness_auditor.report.clean,
        "violations": len(engine.harness_auditor.report.violations),
    }


def run_scenario(
    scenario: ClusterScenario,
    backend: str = "sim",
    custodians: Sequence[tuple[str, str, int]] = (),
    config: TransportConfig | None = None,
    obs: MetricsRegistry | None = None,
) -> dict:
    """Execute the scenario on one backend; returns the result summary.

    ``backend="real"`` needs ``custodians`` — ``(name, host, port)``
    triples of live peers (or chaos proxies fronting them).
    """
    factory: Callable | None = None
    if backend == "real":
        if not custodians:
            raise PeerUnreachableError("cluster", "no custodian addresses given")
        peer_addrs = tuple(custodians)
        transport_config = config

        def factory(sim, **kwargs):
            return RealNetwork(
                sim, custodians=peer_addrs, config=transport_config, **kwargs
            )

    topo = Topology.regular(l=scenario.l, n=scenario.n, m=scenario.m, r=scenario.r)
    engine = NetworkedProtocolEngine(
        topo,
        scenario.params(),
        seed=scenario.seed,
        behaviors=dict(scenario.behaviors) if scenario.behaviors else None,
        min_delay=scenario.min_delay,
        max_delay=scenario.max_delay,
        resilience=scenario.resilience,
        obs=obs,
        network_factory=factory,
    )
    if scenario.plan is not None:
        engine.install_faults(scenario.plan)
    try:
        result = _drive(engine, scenario)
    finally:
        engine.network.close()
    result["backend"] = backend
    return result


def compare_backends(
    scenario: ClusterScenario,
    peers: int | None = None,
    config: TransportConfig | None = None,
    obs: MetricsRegistry | None = None,
) -> dict:
    """The headline assertion: both backends commit the identical tip.

    Launches a ``peers``-process localhost cluster (default 3), runs the
    scenario on the simulator and on the real transport, and reports
    both summaries plus the tip/height/clock comparison.
    """
    sim_result = run_scenario(scenario, backend="sim")
    handle = launch_custodians(peers if peers is not None else 3)
    try:
        real_result = run_scenario(
            scenario, backend="real", custodians=handle.addresses,
            config=config, obs=obs,
        )
    finally:
        handle.close()
    return {
        "sim": sim_result,
        "real": real_result,
        "tips_match": sim_result["tip"] == real_result["tip"]
        and sim_result["height"] == real_result["height"]
        and sim_result["clock"] == real_result["clock"],
    }
