"""Partial governor visibility — adjusting the structure (Section 3.1).

The paper defaults to every governor being connected to all collectors,
but notes: *"in real cases, a governor may only perceive partial
information. Under such conditions, the structure of the network can be
adjusted."*  :class:`VisibilityMap` is that adjustment: a per-governor
subset of collectors whose uploads he receives.

For the protocol to stay live the map must satisfy a **coverage**
constraint: for every (governor, provider) pair, the governor must see
at least one collector linked with that provider — otherwise that
governor can never screen that provider's transactions (and, if leader,
would silently drop them).  :meth:`validate` enforces it;
:meth:`random_partial` constructs random maps that respect it by always
keeping one covering collector per (governor, provider) before thinning
the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TopologyError
from repro.network.topology import Topology

__all__ = ["VisibilityMap"]


@dataclass(frozen=True)
class VisibilityMap:
    """governor id -> frozenset of visible collector ids."""

    visible: dict[str, frozenset[str]]

    @staticmethod
    def full(topology: Topology) -> "VisibilityMap":
        """The paper's default: every governor sees every collector."""
        all_collectors = frozenset(topology.collectors)
        return VisibilityMap({g: all_collectors for g in topology.governors})

    @staticmethod
    def random_partial(
        topology: Topology, keep_fraction: float, seed: int = 0
    ) -> "VisibilityMap":
        """A random coverage-preserving partial map.

        Each governor first builds a *small* covering set greedily (the
        collector covering the most still-uncovered providers wins, ties
        broken randomly), then keeps each remaining collector
        independently with probability ``keep_fraction``.  At
        ``keep_fraction = 0`` the view is a near-minimal set cover; at 1
        it is the full view.
        """
        if not 0.0 <= keep_fraction <= 1.0:
            raise TopologyError(f"keep_fraction must be in [0, 1], got {keep_fraction}")
        rng = np.random.default_rng(seed)
        visible: dict[str, frozenset[str]] = {}
        for governor in topology.governors:
            uncovered = set(topology.providers)
            keep: set[str] = set()
            while uncovered:
                best_gain = 0
                candidates: list[str] = []
                for collector in topology.collectors:
                    if collector in keep:
                        continue
                    gain = len(uncovered & set(topology.providers_of(collector)))
                    if gain > best_gain:
                        best_gain, candidates = gain, [collector]
                    elif gain == best_gain and gain > 0:
                        candidates.append(collector)
                chosen = candidates[int(rng.integers(len(candidates)))]
                keep.add(chosen)
                uncovered -= set(topology.providers_of(chosen))
            for collector in topology.collectors:
                if collector not in keep and rng.random() < keep_fraction:
                    keep.add(collector)
            visible[governor] = frozenset(keep)
        vmap = VisibilityMap(visible)
        vmap.validate(topology)
        return vmap

    def collectors_for(self, governor: str) -> frozenset[str]:
        """The collectors ``governor`` receives uploads from."""
        try:
            return self.visible[governor]
        except KeyError:
            raise TopologyError(f"no visibility entry for governor {governor!r}") from None

    def sees(self, governor: str, collector: str) -> bool:
        """Whether the governor receives this collector's uploads."""
        return collector in self.collectors_for(governor)

    def validate(self, topology: Topology) -> None:
        """Check shape and the coverage constraint.

        Raises:
            TopologyError: missing governors, unknown collectors, or a
                (governor, provider) pair with no visible linked collector.
        """
        missing = set(topology.governors) - set(self.visible)
        if missing:
            raise TopologyError(f"no visibility entry for governors {sorted(missing)}")
        all_collectors = set(topology.collectors)
        for governor, collectors in self.visible.items():
            unknown = set(collectors) - all_collectors
            if unknown:
                raise TopologyError(
                    f"governor {governor!r} lists unknown collectors {sorted(unknown)}"
                )
            if not collectors:
                raise TopologyError(f"governor {governor!r} sees no collectors")
            for provider in topology.providers:
                linked = set(topology.collectors_of(provider))
                if not (linked & set(collectors)):
                    raise TopologyError(
                        f"coverage violated: governor {governor!r} sees no "
                        f"collector linked with provider {provider!r}"
                    )

    def mean_visibility(self, topology: Topology) -> float:
        """Average fraction of collectors visible per governor."""
        n = topology.n
        return float(
            np.mean([len(self.visible[g]) / n for g in topology.governors])
        )
