"""Synchronous network substrate.

Discrete-event simulation, bounded-drift clocks, point-to-point channels
with the synchrony bound Delta, atomic (total-order) broadcast, and the
Figure-1 topology builder.
"""

from repro.network.broadcast import AtomicBroadcast, SequencedPayload
from repro.network.clock import GlobalClock, LocalClock
from repro.network.events import Event, EventQueue
from repro.network.simnet import Message, NetworkStats, Simulator, SyncNetwork
from repro.network.topology import Topology, collector_id, governor_id, provider_id
from repro.network.visibility import VisibilityMap

__all__ = [
    "AtomicBroadcast",
    "Event",
    "EventQueue",
    "GlobalClock",
    "LocalClock",
    "Message",
    "NetworkStats",
    "SequencedPayload",
    "Simulator",
    "SyncNetwork",
    "Topology",
    "VisibilityMap",
    "collector_id",
    "governor_id",
    "provider_id",
]
