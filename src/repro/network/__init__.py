"""Synchronous network substrate.

Discrete-event simulation, bounded-drift clocks, point-to-point channels
with the synchrony bound Delta, atomic (total-order) broadcast, and the
Figure-1 topology builder.
"""

from repro.network.broadcast import AtomicBroadcast, GapRepairRequest, SequencedPayload
from repro.network.clock import GlobalClock, LocalClock
from repro.network.events import Event, EventQueue
from repro.network.reliable import (
    ReliableAck,
    ReliableChannel,
    ReliableEnvelope,
    ReliableStats,
)
from repro.network.simnet import Message, NetworkStats, Simulator, SyncNetwork
from repro.network.topology import Topology, collector_id, governor_id, provider_id
from repro.network.transport import Transport
from repro.network.visibility import VisibilityMap

__all__ = [
    "AtomicBroadcast",
    "Event",
    "EventQueue",
    "GapRepairRequest",
    "GlobalClock",
    "LocalClock",
    "Message",
    "NetworkStats",
    "ReliableAck",
    "ReliableChannel",
    "ReliableEnvelope",
    "ReliableStats",
    "SequencedPayload",
    "Simulator",
    "SyncNetwork",
    "Topology",
    "Transport",
    "VisibilityMap",
    "collector_id",
    "governor_id",
    "provider_id",
]
