"""Ack/retransmit reliable channel over the lossy simulated network.

:class:`~repro.network.simnet.SyncNetwork` under fault injection
(``repro.faults``) may drop, duplicate, or reorder messages.
:class:`ReliableChannel` restores at-least-once delivery with duplicate
suppression — i.e. exactly-once *application* delivery — for the traffic
the protocol cannot afford to lose (provider→collector feeds and
collector→governor uploads):

* every payload is wrapped in a :class:`ReliableEnvelope` carrying a
  channel-unique ``msg_id``;
* the receiver acks each envelope and suppresses ``msg_id`` replays, so
  retransmissions and fault-injected duplicates deliver at most once;
* the sender retransmits unacked envelopes with exponential backoff in
  *simulated* time, up to ``max_retries``; a message unacked after the
  full budget is abandoned (``gave_up``) — bounded retries keep a
  crashed receiver from pinning sender state forever.

Nodes register their handlers through the channel; non-envelope traffic
passes through untouched, so a node can receive both reliable and plain
messages on the same identity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.exceptions import SimulationError
from repro.network.simnet import Message, SyncNetwork
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["ReliableEnvelope", "ReliableAck", "ReliableStats", "ReliableChannel"]


@dataclass(frozen=True)
class ReliableEnvelope:
    """A payload wrapped for acked delivery."""

    msg_id: int
    sender: str
    body: Any
    kind: str = "rel"


@dataclass(frozen=True)
class ReliableAck:
    """Receiver's acknowledgement of one envelope."""

    msg_id: int
    kind: str = "rel-ack"


@dataclass
class ReliableStats:
    """Channel-level counters for the fault experiments (E12)."""

    sent: int = 0
    delivered: int = 0
    retransmits: int = 0
    duplicates_suppressed: int = 0
    acks_sent: int = 0
    gave_up: int = 0


@dataclass
class _Pending:
    sender: str
    receiver: str
    envelope: ReliableEnvelope
    size_hint: int
    attempts: int = 0


class ReliableChannel:
    """At-least-once delivery with dedup over a :class:`SyncNetwork`.

    Args:
        network: The underlying (possibly faulty) network.
        max_retries: Retransmissions per message after the initial send.
        base_timeout: First retransmit timer; defaults to
            ``3 * network.max_delay`` (one round trip plus slack).
        backoff: Multiplier applied to the timer per attempt.
        obs: Metrics registry (see OBSERVABILITY.md); defaults to the
            no-op registry.
    """

    def __init__(
        self,
        network: SyncNetwork,
        max_retries: int = 4,
        base_timeout: float | None = None,
        backoff: float = 2.0,
        obs: MetricsRegistry | None = None,
    ):
        if base_timeout is None:
            base_timeout = 3 * network.max_delay
        if base_timeout <= 0:
            raise SimulationError(f"base_timeout must be positive, got {base_timeout}")
        if backoff < 1.0:
            raise SimulationError(f"backoff must be >= 1, got {backoff}")
        self.network = network
        self.max_retries = max_retries
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.stats = ReliableStats()
        self._ids = itertools.count()
        self._pending: dict[int, _Pending] = {}
        self._seen: dict[str, set[int]] = {}
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._m_sent = self.obs.counter(
            "rel_sent_total", "Application payloads submitted for reliable delivery"
        )
        self._m_delivered = self.obs.counter(
            "rel_delivered_total", "Envelopes delivered to application handlers"
        )
        self._m_retransmits = self.obs.counter(
            "rel_retransmits_total", "Envelope retransmissions after timeout"
        )
        self._m_dups = self.obs.counter(
            "rel_duplicates_suppressed_total",
            "Envelope replays suppressed by msg_id dedup",
        )
        self._m_acks = self.obs.counter(
            "rel_acks_total", "Acknowledgements sent by receivers"
        )
        self._m_gave_up = self.obs.counter(
            "rel_gave_up_total", "Envelopes abandoned after the full retry budget"
        )
        self._m_unacked = self.obs.gauge(
            "rel_unacked", "Envelopes currently awaiting an ack"
        )
        self._m_backoff = self.obs.histogram(
            "rel_backoff_wait_seconds",
            "Retransmit timer values scheduled (sim seconds)",
        )

    # -- receiver side --------------------------------------------------

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` on the network behind the reliable layer.

        Envelopes are acked + deduped and unwrapped before reaching the
        handler (which sees a :class:`Message` whose payload is the
        inner body); acks are consumed; anything else passes through.
        """
        self._seen.setdefault(node_id, set())

        def wrapped(message: Message) -> None:
            payload = message.payload
            if isinstance(payload, ReliableAck):
                if self._pending.pop(payload.msg_id, None) is not None:
                    self._m_unacked.set(len(self._pending))
                return
            if isinstance(payload, ReliableEnvelope):
                self.stats.acks_sent += 1
                self._m_acks.inc()
                self.network.send(node_id, payload.sender, ReliableAck(payload.msg_id))
                seen = self._seen[node_id]
                if payload.msg_id in seen:
                    self.stats.duplicates_suppressed += 1
                    self._m_dups.inc()
                    return
                seen.add(payload.msg_id)
                self.stats.delivered += 1
                self._m_delivered.inc()
                handler(replace(message, payload=payload.body))
                return
            handler(message)

        self.network.register(node_id, wrapped)

    # -- sender side ----------------------------------------------------

    def send(self, sender: str, receiver: str, body: Any, size_hint: int = 1) -> int:
        """Send ``body`` reliably; returns the assigned message id."""
        msg_id = next(self._ids)
        envelope = ReliableEnvelope(msg_id=msg_id, sender=sender, body=body)
        self._pending[msg_id] = _Pending(
            sender=sender, receiver=receiver, envelope=envelope, size_hint=size_hint
        )
        self.stats.sent += 1
        self._m_sent.inc()
        self._m_unacked.set(len(self._pending))
        self._transmit(msg_id)
        return msg_id

    def _transmit(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        if pending is None:
            return
        self.network.send(
            pending.sender, pending.receiver, pending.envelope, pending.size_hint
        )
        timeout = self.base_timeout * (self.backoff ** pending.attempts)
        self._m_backoff.observe(timeout)
        self.network.sim.schedule_after(
            timeout,
            lambda: self._retry(msg_id),
            label=f"rel-timer:{pending.sender}->{pending.receiver}:{msg_id}",
        )

    def _retry(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        if pending is None:
            return  # acked in the meantime
        if pending.attempts >= self.max_retries:
            del self._pending[msg_id]
            self.stats.gave_up += 1
            self._m_gave_up.inc()
            self._m_unacked.set(len(self._pending))
            return
        pending.attempts += 1
        self.stats.retransmits += 1
        self._m_retransmits.inc()
        self._transmit(msg_id)

    @property
    def unacked(self) -> int:
        """Messages still awaiting an ack (retry timers live)."""
        return len(self._pending)
