"""Discrete-event simulator and synchronous message-passing network.

The paper assumes a synchronous system (Section 3.1): known upper bounds
on processing and transmission delays.  :class:`Simulator` provides the
event loop; :class:`SyncNetwork` layers message delivery with per-message
delays drawn in ``(min_delay, max_delay]`` where ``max_delay`` plays the
role of the paper's synchrony bound.  Delivery order between distinct
(sender, receiver) pairs is by delivery time; per-channel FIFO is
enforced so a node never observes reordering from a single peer, which
the atomic-broadcast layer builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import perf
from repro.exceptions import SimulationError, SynchronyViolationError
from repro.network.clock import GlobalClock
from repro.network.events import Event, EventQueue
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["Message", "Simulator", "SyncNetwork", "NetworkStats"]


@dataclass(frozen=True, slots=True)
class Message:
    """An in-flight network message (slotted — allocated per edge copy)."""

    sender: str
    receiver: str
    payload: Any
    sent_at: float
    deliver_at: float

    @property
    def latency(self) -> float:
        """Transmission delay experienced by this message."""
        return self.deliver_at - self.sent_at


@dataclass
class NetworkStats:
    """Counters used by the complexity experiments (E7).

    ``messages_by_kind`` buckets on ``payload.kind`` when present (all
    protocol payloads define it) so benches can report per-phase counts.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)

    def record(self, message: Message, size_hint: int) -> None:
        """Account for one sent message."""
        self.messages_sent += 1
        self.bytes_sent += size_hint
        self.latencies.append(message.latency)
        kind = getattr(message.payload, "kind", type(message.payload).__name__)
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def record_drop(self) -> None:
        """Account for one message that was dropped before delivery.

        Dropped messages never contribute to ``messages_sent``,
        ``bytes_sent`` or the latency percentiles — they never crossed
        the wire, so counting them would inflate the complexity
        experiments (E7) and skew latency tails.
        """
        self.messages_dropped += 1

    def latency_percentile(self, q: float) -> float:
        """The q-th latency percentile (q in [0, 100]) over sent messages.

        Raises:
            SimulationError: no messages recorded or q out of range.
        """
        if not self.latencies:
            raise SimulationError("no messages recorded yet")
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.latencies, q))


class Simulator:
    """Deterministic discrete-event loop.

    Runs callbacks in (time, schedule-order); the global clock is only
    ever advanced by the loop, so all code observes a consistent notion
    of "now".
    """

    def __init__(self, seed: int = 0):
        self.clock = GlobalClock()
        self.queue = EventQueue()
        self.rng = np.random.default_rng(seed)
        self._steps = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        return self.queue.schedule(time, callback, label)

    def schedule_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.queue.schedule(self.now + delay, callback, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        event.callback()
        self._steps += 1
        return True

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> int:
        """Drain the event queue, optionally stopping at time ``until``.

        With ``until`` given, the clock always ends exactly at ``until``
        — including when the queue empties early.  Engines rely on this
        to make phase boundaries (and hence transaction timestamps)
        independent of which straggler event happened to execute last,
        so optional traffic (audit votes) cannot shift the next round's
        start time.

        Returns the number of events executed.  ``max_events`` is a
        runaway guard: exceeding it raises instead of hanging a bench.
        """
        executed = 0
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            if not self.step():
                break
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}; runaway simulation?")
        if until is not None and self.now < until:
            self.clock.advance_to(until)
        return executed


class SyncNetwork:
    """Point-to-point synchronous network over a :class:`Simulator`.

    Args:
        sim: The event loop that drives delivery.
        min_delay: Lower bound on message latency.
        max_delay: The synchrony bound Delta-net; every message arrives
            within it.  Screening's per-transaction window must be at
            least the spread collectors' uploads can exhibit.
        seed: Per-network RNG seed for latency draws (independent of the
            simulator's RNG so workload randomness does not perturb
            network timing and vice versa).
        obs: Metrics registry (see OBSERVABILITY.md); defaults to the
            no-op registry, leaving the hot path untouched.
    """

    def __init__(
        self,
        sim: Simulator,
        min_delay: float = 0.01,
        max_delay: float = 0.1,
        seed: int = 1,
        obs: MetricsRegistry | None = None,
    ):
        if not 0 <= min_delay <= max_delay:
            raise SimulationError(
                f"need 0 <= min_delay <= max_delay, got [{min_delay}, {max_delay}]"
            )
        self.sim = sim
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.stats = NetworkStats()
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._m_sent = self.obs.counter(
            "net_messages_sent_total",
            "Messages scheduled for delivery, by payload kind",
            labels=("kind",),
        )
        self._m_bytes = self.obs.counter(
            "net_bytes_sent_total", "Sum of size hints over sent messages"
        )
        self._m_dropped = self.obs.counter(
            "net_messages_dropped_total",
            "Messages destroyed before delivery, by cause",
            labels=("reason",),
        )
        self._m_delay = self.obs.histogram(
            "net_delay_seconds", "Per-message transmission delay (sim seconds)"
        )
        self._rng = np.random.default_rng(seed)
        self._handlers: dict[str, Callable[[Message], None]] = {}
        # Per (sender, receiver) channel: time of the latest scheduled
        # delivery, used to enforce FIFO per channel.
        self._channel_front: dict[tuple[str, str], float] = {}
        self._partitioned: set[str] = set()
        # Optional fault-interception hook (see repro.faults): called as
        # fault_filter(sender, receiver, payload) and may return an
        # object with ``drop`` / ``duplicates`` / ``extra_delay``
        # attributes.  None (no hook, or the hook declines) means
        # deliver normally.
        self.fault_filter: Callable[[str, str, Any], Any] | None = None

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach a node's message handler; overwrites any previous one."""
        self._handlers[node_id] = handler

    # ``recv`` is the Transport-protocol name for handler registration
    # (see repro.network.transport); ``register`` predates the protocol
    # and stays as the primary spelling.
    recv = register

    def peers(self) -> tuple[str, ...]:
        """Node ids with a registered handler, in registration order."""
        return tuple(self._handlers)

    def close(self) -> None:
        """Release backend resources — nothing to do for pure simulation."""

    def run_until(self, until: float) -> int:
        """Advance the clock to ``until``, executing due deliveries.

        The driver-side spelling of :meth:`Simulator.run` shared with
        :class:`~repro.network.realnet.RealNetwork` (where advancing the
        clock additionally waits for physical frame conveyance), so
        harnesses drive either backend through one call.
        """
        return self.sim.run(until=until)

    def partition(self, node_id: str) -> None:
        """Crash-fault a node: messages to/from it are silently dropped.

        Used by failure-injection tests; the paper's model has no
        governor crashes, but the substrate supports exploring them.
        """
        self._partitioned.add(node_id)

    def heal(self, node_id: str) -> None:
        """Reconnect a partitioned node."""
        self._partitioned.discard(node_id)

    def _draw_delay(self) -> float:
        if self.max_delay == self.min_delay:
            return self.max_delay
        return float(self._rng.uniform(self.min_delay, self.max_delay))

    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        size_hint: int = 1,
        fixed_delay: float | None = None,
    ) -> None:
        """Send one message; delivery is scheduled on the event loop.

        Dropped silently if either endpoint is partitioned — the sender
        cannot tell, exactly as with a real crash fault.  Dropped
        messages (partition or fault injection) are counted in
        ``stats.messages_dropped`` and never in the sent counters.

        A fault hook may substitute the payload (``action.replace`` —
        Byzantine in-flight tampering); the receiver then gets the
        substituted object with the original timing.

        ``fixed_delay`` bypasses the latency RNG entirely and delivers
        after exactly that many seconds (must respect the synchrony
        bound).  Audit traffic uses it so that enabling the auditor
        consumes no draw from the latency stream — seeded runs stay
        bit-identical with the auditor on or off.
        """
        if receiver not in self._handlers:
            raise SimulationError(f"no handler registered for receiver {receiver!r}")
        if sender in self._partitioned or receiver in self._partitioned:
            self.stats.record_drop()
            self._m_dropped.labels(reason="partition").inc()
            return
        action = (
            self.fault_filter(sender, receiver, payload)
            if self.fault_filter is not None
            else None
        )
        if action is not None and getattr(action, "drop", False):
            self.stats.record_drop()
            self._m_dropped.labels(reason="fault").inc()
            return
        if action is not None:
            replacement = getattr(action, "replace", None)
            if replacement is not None:
                payload = replacement
        copies = 1 + (int(getattr(action, "duplicates", 0)) if action is not None else 0)
        extra_delay = float(getattr(action, "extra_delay", 0.0)) if action is not None else 0.0
        delay = float(fixed_delay) if fixed_delay is not None else self._draw_delay()
        self._schedule_delivery(
            sender, receiver, payload, size_hint,
            self.sim.now, delay, copies, extra_delay,
        )

    def _schedule_delivery(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        size_hint: int,
        now: float,
        delay: float,
        copies: int = 1,
        extra_delay: float = 0.0,
    ) -> None:
        """Schedule delivery of an already-admitted message.

        Shared by :meth:`send` and the batched :meth:`multicast` fast
        path; ``delay`` is the primary latency draw, already consumed
        from the network RNG by the caller.
        """
        if delay > self.max_delay:
            raise SynchronyViolationError(
                f"drawn delay {delay} exceeds synchrony bound {self.max_delay}"
            )
        deliver_at = now + delay
        # FIFO per channel: never deliver before the channel's current front.
        key = (sender, receiver)
        front = self._channel_front.get(key, 0.0)
        deliver_at = max(deliver_at, front)
        self._channel_front[key] = deliver_at
        # Injected extra delay is applied AFTER the FIFO bookkeeping, so
        # later sends on the channel may overtake this one — that is the
        # reordering fault.  It intentionally escapes the synchrony
        # bound: faults model exactly the failures the paper assumes
        # away.
        deliver_at += extra_delay
        for copy in range(copies):
            at = deliver_at if copy == 0 else deliver_at + copy * self._draw_delay()
            message = Message(
                sender=sender, receiver=receiver, payload=payload,
                sent_at=now, deliver_at=at,
            )
            self.stats.record(message, size_hint)
            kind = getattr(payload, "kind", type(payload).__name__)
            self._m_sent.labels(kind=kind).inc()
            self._m_bytes.inc(size_hint)
            self._m_delay.observe(message.latency)
            self.sim.schedule_at(
                at,
                lambda m=message: self._deliver(m),
                label=f"deliver:{sender}->{receiver}",
            )
            self._convey(message, size_hint)

    def _convey(self, message: Message, size_hint: int) -> None:
        """Hook: physically ship an admitted message (no-op in simulation).

        :class:`~repro.network.realnet.RealNetwork` overrides this to
        put the payload on a real socket; the base simulator delivers
        purely from the event queue.  Called once per scheduled copy,
        after all RNG draws for the copy — overriding it cannot perturb
        the seeded delivery schedule.
        """

    def _deliver(self, message: Message) -> None:
        """Hand a message to its receiver — unless it crashed in flight.

        Partition state is re-checked at delivery time: a receiver that
        crashed after the send loses the in-flight message (a sender
        crash does not destroy packets already on the wire).
        """
        if message.receiver in self._partitioned:
            self.stats.record_drop()
            self._m_dropped.labels(reason="in_flight").inc()
            return
        self._handlers[message.receiver](message)

    def multicast(self, sender: str, receivers: list[str], payload: Any, size_hint: int = 1) -> None:
        """Send the same payload to each receiver (independent delays).

        Fast path: with no fault hook, no partitions, and all receivers
        registered, the per-edge latencies come from ONE vectorized RNG
        call instead of one scalar draw per edge.  NumPy's
        ``Generator.uniform(lo, hi, size=n)`` yields exactly the same
        variates (and leaves the same generator state) as n sequential
        scalar draws, so the fast path is bit-identical to the loop of
        :meth:`send` calls it replaces.
        """
        if (
            perf.ACTIVE.batched_delays
            and len(receivers) > 1
            and self.fault_filter is None
            and not self._partitioned
            and self.max_delay != self.min_delay
            and all(r in self._handlers for r in receivers)
        ):
            now = self.sim.now
            delays = self._rng.uniform(
                self.min_delay, self.max_delay, size=len(receivers)
            )
            for receiver, delay in zip(receivers, delays):
                self._schedule_delivery(
                    sender, receiver, payload, size_hint, now, float(delay)
                )
            return
        for receiver in receivers:
            self.send(sender, receiver, payload, size_hint)
