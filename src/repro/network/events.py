"""Event queue for the discrete-event simulator.

A tiny, deterministic priority queue: events fire in (time, sequence)
order, so two events scheduled for the same instant execute in the order
they were scheduled.  Determinism here is what makes whole-protocol runs
reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)``; the callback itself never affects
    ordering.  ``cancelled`` events stay in the heap but are skipped on
    pop (lazy deletion — O(log n) cancel without heap surgery).
    Slotted: the event loop allocates one of these per message copy, so
    the per-instance ``__dict__`` was measurable churn.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Enqueue ``callback`` to fire at ``time``; returns a cancellable handle.

        Raises:
            SimulationError: for a negative or non-finite time.
        """
        if not (time >= 0.0) or time != time or time == float("inf"):
            raise SimulationError(f"invalid event time: {time!r}")
        event = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: if the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (idempotent, lazy deletion)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1
