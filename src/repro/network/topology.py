"""Hierarchical topology builder (Figure 1 of the paper).

The model links ``l`` providers, ``n`` collectors and ``m`` governors:
each provider submits to ``r`` collectors, each collector receives from
``s`` providers, hence ``r * l == s * n``; every governor connects to
all collectors (the default the paper assumes).

:class:`Topology` constructs and validates such a structure.  Two
builders are offered:

* :meth:`Topology.regular` — a deterministic circulant design where
  provider ``k`` links to collectors ``k*r//s ... `` in a balanced way,
  guaranteeing *exact* degrees ``r`` and ``s``;
* :meth:`Topology.random_regular` — a seeded random bipartite regular
  graph via configuration-model shuffling, for experiments that need
  varied overlap patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import TopologyError

__all__ = [
    "Topology",
    "ShardedTopology",
    "balanced_groups",
    "provider_id",
    "collector_id",
    "governor_id",
]


def provider_id(k: int) -> str:
    """Canonical node id of provider ``p_k`` (0-based)."""
    return f"p{k}"


def collector_id(i: int) -> str:
    """Canonical node id of collector ``c_i`` (0-based)."""
    return f"c{i}"


def governor_id(j: int) -> str:
    """Canonical node id of governor ``g_j`` (0-based)."""
    return f"g{j}"


@dataclass(frozen=True)
class Topology:
    """An immutable provider/collector/governor link structure.

    Attributes:
        providers: Ordered provider ids (length ``l``).
        collectors: Ordered collector ids (length ``n``).
        governors: Ordered governor ids (length ``m``).
        provider_links: provider id -> tuple of its ``r`` collector ids.
        collector_links: collector id -> tuple of its ``s`` provider ids.
    """

    providers: tuple[str, ...]
    collectors: tuple[str, ...]
    governors: tuple[str, ...]
    provider_links: dict[str, tuple[str, ...]] = field(hash=False)
    collector_links: dict[str, tuple[str, ...]] = field(hash=False)

    def __post_init__(self) -> None:
        self.validate()

    # -- constructors ---------------------------------------------------

    @staticmethod
    def regular(l: int, n: int, m: int, r: int) -> "Topology":
        """Build the deterministic circulant topology.

        Provider ``k`` links to collectors ``(k + 0) % n, ..., (k + r - 1) % n``
        scaled so degrees balance.  Requires ``r * l % n == 0`` so that
        ``s = r * l / n`` is integral, and ``r <= n``.

        Raises:
            TopologyError: when the degree equation cannot be satisfied.
        """
        if min(l, n, m, r) < 1:
            raise TopologyError(f"all sizes must be >= 1, got l={l} n={n} m={m} r={r}")
        if r > n:
            raise TopologyError(f"provider degree r={r} exceeds collector count n={n}")
        if (r * l) % n != 0:
            raise TopologyError(
                f"r*l = {r * l} is not divisible by n = {n}; "
                "the paper requires r*l == s*n with integral s"
            )
        providers = tuple(provider_id(k) for k in range(l))
        collectors = tuple(collector_id(i) for i in range(n))
        governors = tuple(governor_id(j) for j in range(m))
        provider_links: dict[str, tuple[str, ...]] = {}
        collector_links: dict[str, list[str]] = {c: [] for c in collectors}
        for k in range(l):
            # Circulant stride keeps per-collector load exactly s.
            start = (k * r) % n
            chosen = tuple(collectors[(start + offset) % n] for offset in range(r))
            provider_links[providers[k]] = chosen
            for c in chosen:
                collector_links[c].append(providers[k])
        return Topology(
            providers=providers,
            collectors=collectors,
            governors=governors,
            provider_links=provider_links,
            collector_links={c: tuple(ps) for c, ps in collector_links.items()},
        )

    @staticmethod
    def random_regular(l: int, n: int, m: int, r: int, seed: int = 0) -> "Topology":
        """Random bipartite (r, s)-biregular topology.

        Built as a randomly relabeled circulant: the deterministic
        balanced design of :meth:`regular` composed with independent
        random permutations of the provider and collector index spaces.
        Always simple (no multi-edges), always exactly biregular, and
        deterministic in ``seed``; overlap patterns vary with the seed,
        which is what the sensitivity experiments need.
        """
        if min(l, n, m, r) < 1:
            raise TopologyError(f"all sizes must be >= 1, got l={l} n={n} m={m} r={r}")
        if r > n:
            raise TopologyError(f"provider degree r={r} exceeds collector count n={n}")
        if (r * l) % n != 0:
            raise TopologyError(f"r*l = {r * l} not divisible by n = {n}")
        rng = np.random.default_rng(seed)
        providers = tuple(provider_id(k) for k in range(l))
        collectors = tuple(collector_id(i) for i in range(n))
        governors = tuple(governor_id(j) for j in range(m))
        provider_perm = rng.permutation(l)
        collector_perm = rng.permutation(n)
        provider_links = {}
        for k in range(l):
            start = (int(provider_perm[k]) * r) % n
            chosen = tuple(
                collectors[int(collector_perm[(start + offset) % n])]
                for offset in range(r)
            )
            provider_links[providers[k]] = tuple(sorted(chosen))
        collector_links: dict[str, list[str]] = {c: [] for c in collectors}
        for p, cs in provider_links.items():
            for c in cs:
                collector_links[c].append(p)
        return Topology(
            providers=providers,
            collectors=collectors,
            governors=governors,
            provider_links=provider_links,
            collector_links={c: tuple(ps) for c, ps in collector_links.items()},
        )

    @staticmethod
    def sharded(
        l: int,
        n: int,
        m: int,
        r: int,
        shards: int,
        seed: int | None = None,
        masses: dict[str, float] | None = None,
    ) -> "ShardedTopology":
        """Partition an ``(l, n, m, r)`` deployment into ``shards`` shards.

        Node counts split evenly: each shard gets ``l/shards`` providers,
        ``n/shards`` collectors and ``m/shards`` governors, with the
        global id spaces (``p*``, ``c*``, ``g*``) preserved.  Providers
        and governors are dealt round-robin by index; collectors are
        placed by :func:`balanced_groups` so each shard carries an equal
        share of total reputation ``masses`` (uniform when omitted — the
        genesis state).  Links within each shard follow the same
        ergonomics as the flat builders: the deterministic circulant of
        :meth:`regular`, or :meth:`random_regular` graphs (and a
        permuted collector placement) when ``seed`` is given.

        Raises:
            TopologyError: when any role count is not divisible by
                ``shards`` or a per-shard degree equation fails.
        """
        if shards < 1:
            raise TopologyError(f"shard count must be >= 1, got {shards}")
        if l % shards or n % shards or m % shards:
            raise TopologyError(
                f"node counts l={l} n={n} m={m} must all divide by shards={shards}"
            )
        providers = [provider_id(k) for k in range(l)]
        collectors = [collector_id(i) for i in range(n)]
        governors = [governor_id(j) for j in range(m)]
        rng = np.random.default_rng(seed) if seed is not None else None
        if rng is not None:
            collectors = [collectors[int(i)] for i in rng.permutation(n)]
        groups = balanced_groups(collectors, masses or {}, shards)
        shard_topos = []
        provider_shard: dict[str, int] = {}
        collector_shard: dict[str, int] = {}
        governor_shard: dict[str, int] = {}
        for k in range(shards):
            shard_providers = providers[k::shards]
            shard_governors = governors[k::shards]
            shard_collectors = sorted(groups[k], key=collectors.index)
            if rng is None:
                base = Topology.regular(l // shards, n // shards, m // shards, r)
            else:
                base = Topology.random_regular(
                    l // shards, n // shards, m // shards, r, seed=seed + k + 1
                )
            shard_topos.append(
                _relabel(base, shard_providers, shard_collectors, shard_governors)
            )
            for pid in shard_providers:
                provider_shard[pid] = k
            for cid in shard_collectors:
                collector_shard[cid] = k
            for gid in shard_governors:
                governor_shard[gid] = k
        return ShardedTopology(
            shards=tuple(shard_topos),
            provider_shard=provider_shard,
            collector_shard=collector_shard,
            governor_shard=governor_shard,
        )

    # -- derived quantities ----------------------------------------------

    @property
    def l(self) -> int:
        """Number of providers."""
        return len(self.providers)

    @property
    def n(self) -> int:
        """Number of collectors."""
        return len(self.collectors)

    @property
    def m(self) -> int:
        """Number of governors."""
        return len(self.governors)

    @property
    def r(self) -> int:
        """Collectors per provider."""
        return len(next(iter(self.provider_links.values())))

    @property
    def s(self) -> int:
        """Providers per collector."""
        return len(next(iter(self.collector_links.values())))

    def collectors_of(self, provider: str) -> tuple[str, ...]:
        """The ``r`` collectors a provider broadcasts to."""
        try:
            return self.provider_links[provider]
        except KeyError:
            raise TopologyError(f"unknown provider {provider!r}") from None

    def providers_of(self, collector: str) -> tuple[str, ...]:
        """The ``s`` providers a collector oversees."""
        try:
            return self.collector_links[collector]
        except KeyError:
            raise TopologyError(f"unknown collector {collector!r}") from None

    def edges(self) -> Iterator[tuple[str, str]]:
        """Iterate (provider, collector) link pairs."""
        for p, cs in self.provider_links.items():
            for c in cs:
                yield (p, c)

    def validate(self) -> None:
        """Check the degree equation r*l == s*n and link consistency.

        Raises:
            TopologyError: on any inconsistency.
        """
        if not self.providers or not self.collectors or not self.governors:
            raise TopologyError("topology must have at least one node of each role")
        # Node ids must be unique within a role *and* across roles:
        # every id is a network endpoint, a signing identity, and a
        # reputation-book key, so a duplicate (e.g. a governor reusing a
        # collector id) silently merges two nodes downstream.
        for role, ids in (
            ("provider", self.providers),
            ("collector", self.collectors),
            ("governor", self.governors),
        ):
            if len(set(ids)) != len(ids):
                dupes = sorted({i for i in ids if ids.count(i) > 1})
                raise TopologyError(f"duplicate {role} ids: {dupes}")
        all_ids = (*self.providers, *self.collectors, *self.governors)
        if len(set(all_ids)) != len(all_ids):
            dupes = sorted({i for i in all_ids if all_ids.count(i) > 1})
            raise TopologyError(f"node ids reused across roles: {dupes}")
        degrees_r = {len(cs) for cs in self.provider_links.values()}
        degrees_s = {len(ps) for ps in self.collector_links.values()}
        if len(degrees_r) != 1:
            raise TopologyError(f"provider degrees are not uniform: {sorted(degrees_r)}")
        if len(degrees_s) != 1:
            raise TopologyError(f"collector degrees are not uniform: {sorted(degrees_s)}")
        r, s = degrees_r.pop(), degrees_s.pop()
        if r * len(self.providers) != s * len(self.collectors):
            raise TopologyError(
                f"degree equation violated: r*l = {r * len(self.providers)} "
                f"!= s*n = {s * len(self.collectors)}"
            )
        for p, cs in self.provider_links.items():
            if len(set(cs)) != len(cs):
                raise TopologyError(f"provider {p!r} linked twice to a collector")
            for c in cs:
                if p not in self.collector_links.get(c, ()):
                    raise TopologyError(f"asymmetric link: {p!r} -> {c!r} not mirrored")
        for c, ps in self.collector_links.items():
            for p in ps:
                if c not in self.provider_links.get(p, ()):
                    raise TopologyError(f"asymmetric link: {c!r} -> {p!r} not mirrored")


def _relabel(
    base: Topology,
    providers: list[str],
    collectors: list[str],
    governors: list[str],
) -> Topology:
    """Rename ``base``'s canonical ids onto the given member lists."""
    pmap = dict(zip(base.providers, providers))
    cmap = dict(zip(base.collectors, collectors))
    return Topology(
        providers=tuple(providers),
        collectors=tuple(collectors),
        governors=tuple(governors),
        provider_links={
            pmap[p]: tuple(cmap[c] for c in cs) for p, cs in base.provider_links.items()
        },
        collector_links={
            cmap[c]: tuple(pmap[p] for p in ps) for c, ps in base.collector_links.items()
        },
    )


def balanced_groups(
    ids: list[str], masses: dict[str, float], groups: int
) -> list[list[str]]:
    """Partition ``ids`` into ``groups`` equal-size bins balancing mass.

    Greedy LPT: rank ids by descending ``masses`` (missing entries count
    as 1.0 — genesis weight), then place each into the lightest bin that
    still has capacity, breaking ties by bin index.  Deterministic: the
    ranking sort is stable in the input order, so callers vary placement
    by permuting ``ids`` with their own seeded RNG.  This is the
    RepChain-style reputation-balanced shard assignment.

    Raises:
        TopologyError: when ``len(ids)`` is not divisible by ``groups``.
    """
    if groups < 1:
        raise TopologyError(f"group count must be >= 1, got {groups}")
    if len(ids) % groups:
        raise TopologyError(
            f"{len(ids)} ids cannot split evenly into {groups} groups"
        )
    capacity = len(ids) // groups
    ranked = sorted(ids, key=lambda i: -masses.get(i, 1.0))
    bins: list[list[str]] = [[] for _ in range(groups)]
    totals = [0.0] * groups
    for node in ranked:
        open_bins = [g for g in range(groups) if len(bins[g]) < capacity]
        target = min(open_bins, key=lambda g: (totals[g], g))
        bins[target].append(node)
        totals[target] += masses.get(node, 1.0)
    return bins


@dataclass(frozen=True)
class ShardedTopology:
    """A disjoint family of per-shard :class:`Topology` structures.

    Produced by :meth:`Topology.sharded`; consumed by
    :class:`repro.sharding.ShardCoordinator`, which runs one protocol
    engine per entry of :attr:`shards` over a shared simulator clock.
    The ``*_shard`` maps give each node's home shard index.
    """

    shards: tuple[Topology, ...]
    provider_shard: dict[str, int] = field(hash=False)
    collector_shard: dict[str, int] = field(hash=False)
    governor_shard: dict[str, int] = field(hash=False)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for topo in self.shards:
            ids = {*topo.providers, *topo.collectors, *topo.governors}
            overlap = seen & ids
            if overlap:
                raise TopologyError(f"node ids appear on multiple shards: {sorted(overlap)}")
            seen |= ids

    @property
    def num_shards(self) -> int:
        """How many shards the deployment is split into."""
        return len(self.shards)

    def shard_of(self, node_id: str) -> int:
        """The home shard index of any node id."""
        for mapping in (self.provider_shard, self.collector_shard, self.governor_shard):
            if node_id in mapping:
                return mapping[node_id]
        raise TopologyError(f"unknown node {node_id!r}")
