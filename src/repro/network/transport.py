"""The narrow transport protocol both network backends satisfy.

:class:`Transport` is a thin :class:`~typing.Protocol` over the much
richer network engines — the ``ExecutionEngineProtocol`` idiom: the
protocol names only the surface the *callers* (engine, broadcast,
reliable channel, shard drivers) actually touch, so a backend is free
to be a discrete-event simulator, a socket stack, or anything else that
can move a payload from one node id to another.

Two implementations ship:

* :class:`~repro.network.simnet.SyncNetwork` — seeded discrete-event
  delivery on a :class:`~repro.network.simnet.Simulator` (tests,
  audits, bit-identical reruns);
* :class:`~repro.network.realnet.RealNetwork` — the same seeded
  delivery schedule, with every admitted message additionally conveyed
  over a real asyncio TCP socket to a custodian peer process before its
  logical delivery may execute (wall-clock benchmarks, cluster
  deployment, socket-level chaos).

Both also expose ``run_until(t)`` — the driver-side clock advance —
which is deliberately *not* part of the narrow protocol: protocol
layers send and receive, only drivers advance time.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

__all__ = ["Transport"]


@runtime_checkable
class Transport(Protocol):
    """What the protocol layers require of a network backend.

    ``send`` admits one payload for delivery to ``receiver``; ``recv``
    registers a node's delivery handler (called with a
    :class:`~repro.network.simnet.Message`); ``peers`` lists the node
    ids currently registered; ``close`` releases any real resources the
    backend holds (sockets, threads — a no-op for pure simulation).
    """

    def send(
        self,
        sender: str,
        receiver: str,
        payload: Any,
        size_hint: int = 1,
        fixed_delay: float | None = None,
    ) -> None: ...

    def recv(self, node_id: str, handler: Callable[[Any], None]) -> None: ...

    def peers(self) -> tuple[str, ...]: ...

    def close(self) -> None: ...
